//! `fastft` binary entry point; logic lives in the library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match fastft_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", fastft_cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = fastft_cli::execute(cmd) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
