//! Implementation of the `fastft` command-line tool.
//!
//! Subcommands:
//!
//! - `run`      — search for a feature set on a CSV dataset, print a report
//!   and save the traceable expressions.
//! - `apply`    — apply a saved feature set to a CSV, writing the
//!   transformed CSV.
//! - `generate` — emit a synthetic benchmark analog as CSV.
//! - `datasets` — list the built-in benchmark analogs.
//!
//! All argument parsing is dependency-free (`--flag value` pairs only).

use fastft_core::report::{apply_feature_set, load_feature_set, save_feature_set, summary};
use fastft_core::{FastFt, FastFtConfig, FastFtError, FastFtResult};
use fastft_ml::Evaluator;
use fastft_tabular::{csvio, datagen, impute, TaskType};
use std::path::{Path, PathBuf};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fastft run --data x.csv --task classification [--classes N]
    /// [--episodes N] [--steps N] [--seed N] [--out features.txt]
    /// [--max-seconds S] [--max-evals N] [--checkpoint ckpt.bin]
    /// [--checkpoint-every N] [--resume ckpt.bin] [--threads N]`
    Run {
        /// Input CSV (last column = target).
        data: PathBuf,
        /// Task type.
        task: TaskType,
        /// Class count for discrete tasks.
        classes: usize,
        /// Episode budget.
        episodes: usize,
        /// Steps per episode.
        steps: usize,
        /// Seed.
        seed: u64,
        /// Where to save the feature set (optional).
        out: Option<PathBuf>,
        /// Wall-clock budget in seconds (0 = unlimited).
        max_seconds: f64,
        /// Downstream-evaluation budget (0 = unlimited).
        max_evals: usize,
        /// Checkpoint file, written every `checkpoint_every` episodes.
        checkpoint: Option<PathBuf>,
        /// Episode cadence for checkpoint writes.
        checkpoint_every: usize,
        /// Resume from this checkpoint instead of starting fresh
        /// (`--episodes`/`--steps`/`--seed` come from the checkpoint).
        resume: Option<PathBuf>,
        /// Worker threads for the runtime pool (0 = auto-detect).
        threads: usize,
    },
    /// `fastft apply --data x.csv --features features.txt --task t
    /// [--classes N] --out transformed.csv`
    Apply {
        /// Input CSV.
        data: PathBuf,
        /// Saved feature-set file.
        features: PathBuf,
        /// Task type.
        task: TaskType,
        /// Class count for discrete tasks.
        classes: usize,
        /// Output CSV path.
        out: PathBuf,
    },
    /// `fastft generate --name pima_indian [--rows N] [--seed N] --out x.csv`
    Generate {
        /// Catalog dataset name.
        name: String,
        /// Row cap.
        rows: usize,
        /// Seed.
        seed: u64,
        /// Output CSV path.
        out: PathBuf,
    },
    /// `fastft datasets`
    Datasets,
    /// `fastft help`
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
fastft — reinforced feature transformation (FASTFT, ICDE 2025)

USAGE:
  fastft run      --data <csv> --task <classification|regression|detection>
                  [--classes N] [--episodes N] [--steps N] [--seed N]
                  [--out features.txt]
                  [--max-seconds S] [--max-evals N]        run budgets (0 = off)
                  [--checkpoint <file>] [--checkpoint-every N]
                  [--resume <file>]     continue a checkpointed run (episode/
                                        step/seed settings come from the file)
                  [--threads N]         worker threads (0 = auto-detect)
  fastft apply    --data <csv> --features <file> --task <t> [--classes N]
                  --out <csv>
  fastft generate --name <dataset> [--rows N] [--seed N] --out <csv>
  fastft datasets
  fastft help

CSV format: numeric columns with a header row; the last column is the target.
";

fn parse_task(s: &str) -> Result<TaskType, String> {
    match s {
        "classification" | "c" | "C" => Ok(TaskType::Classification),
        "regression" | "r" | "R" => Ok(TaskType::Regression),
        "detection" | "d" | "D" => Ok(TaskType::Detection),
        other => Err(format!("unknown task `{other}` (classification|regression|detection)")),
    }
}

/// Parse `argv[1..]` into a [`Command`].
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let mut flags = std::collections::HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    let get = |k: &str| -> Result<String, String> {
        flags.get(k).cloned().ok_or_else(|| format!("missing required --{k}"))
    };
    let get_or = |k: &str, default: &str| flags.get(k).cloned().unwrap_or_else(|| default.into());
    let parse_usize = |k: &str, default: usize| -> Result<usize, String> {
        match flags.get(k) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{k}: {e}")),
        }
    };
    let parse_f64 = |k: &str, default: f64| -> Result<f64, String> {
        match flags.get(k) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{k}: {e}")),
        }
    };
    match cmd.as_str() {
        "run" => Ok(Command::Run {
            data: PathBuf::from(get("data")?),
            task: parse_task(&get("task")?)?,
            classes: parse_usize("classes", 2)?,
            episodes: parse_usize("episodes", 12)?,
            steps: parse_usize("steps", 8)?,
            seed: parse_usize("seed", 0)? as u64,
            out: flags.get("out").map(PathBuf::from),
            max_seconds: parse_f64("max-seconds", 0.0)?,
            max_evals: parse_usize("max-evals", 0)?,
            checkpoint: flags.get("checkpoint").map(PathBuf::from),
            checkpoint_every: parse_usize("checkpoint-every", 1)?,
            resume: flags.get("resume").map(PathBuf::from),
            threads: parse_usize("threads", 0)?,
        }),
        "apply" => Ok(Command::Apply {
            data: PathBuf::from(get("data")?),
            features: PathBuf::from(get("features")?),
            task: parse_task(&get("task")?)?,
            classes: parse_usize("classes", 2)?,
            out: PathBuf::from(get("out")?),
        }),
        "generate" => Ok(Command::Generate {
            name: get("name")?,
            rows: parse_usize("rows", usize::MAX)?,
            seed: parse_usize("seed", 0)? as u64,
            out: PathBuf::from(get_or("out", "dataset.csv")),
        }),
        "datasets" => Ok(Command::Datasets),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command `{other}`; see `fastft help`")),
    }
}

/// Execute a command, writing human output to stdout. Returns a typed
/// [`FastFtError`] on failure (the binary prints it and exits with code 1).
pub fn execute(cmd: Command) -> FastFtResult<()> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Datasets => {
            for s in &datagen::PAPER_CATALOG {
                println!(
                    "{:<20} {:<9} {:>7} rows x {:>3} cols  ({})",
                    s.name,
                    s.task.to_string(),
                    s.rows,
                    s.cols,
                    s.source
                );
            }
            Ok(())
        }
        Command::Generate { name, rows, seed, out } => {
            let spec = datagen::by_name(&name)
                .ok_or_else(|| FastFtError::InvalidConfig(format!("unknown dataset `{name}`")))?;
            let data = datagen::generate_capped(spec, rows, seed);
            csvio::write_csv(&data, &out)?;
            println!(
                "wrote {} rows x {} cols to {}",
                data.n_rows(),
                data.n_features(),
                out.display()
            );
            Ok(())
        }
        Command::Run {
            data,
            task,
            classes,
            episodes,
            steps,
            seed,
            out,
            max_seconds,
            max_evals,
            checkpoint,
            checkpoint_every,
            resume,
            threads,
        } => {
            let mut d = load_csv(&data, task, classes)?;
            impute::impute(&mut d, impute::ImputeStrategy::Median);
            d.sanitize();
            println!(
                "loaded {}: {} rows x {} cols ({task})",
                data.display(),
                d.n_rows(),
                d.n_features()
            );
            let result = if let Some(ckpt) = resume {
                println!("resuming from {}", ckpt.display());
                // The checkpoint carries the run's configuration; the CLI
                // only overrides budgets, checkpointing and the thread
                // count, all of which are safe to change without breaking
                // resume parity (results are thread-count invariant).
                FastFt::resume_with(&ckpt, &d, |cfg| {
                    cfg.max_wall_secs = max_seconds;
                    cfg.max_downstream_evals = max_evals;
                    cfg.threads = threads;
                    if let Some(path) = checkpoint {
                        cfg.checkpoint_path = Some(path);
                        cfg.checkpoint_every = checkpoint_every.max(1);
                    }
                })?
            } else {
                let cfg = FastFtConfig {
                    episodes,
                    steps_per_episode: steps,
                    cold_start_episodes: (episodes / 4).max(1),
                    seed,
                    evaluator: Evaluator::default(),
                    max_wall_secs: max_seconds,
                    max_downstream_evals: max_evals,
                    checkpoint_every: if checkpoint.is_some() {
                        checkpoint_every.max(1)
                    } else {
                        0
                    },
                    checkpoint_path: checkpoint,
                    threads,
                    ..FastFtConfig::quick()
                };
                FastFt::new(cfg).fit(&d)?
            };
            print!("{}", summary(&result));
            if let Some(out) = out {
                std::fs::write(&out, save_feature_set(&result.best_exprs))
                    .map_err(|e| FastFtError::io(&out, &e))?;
                println!("feature set saved to {}", out.display());
            }
            Ok(())
        }
        Command::Apply { data, features, task, classes, out } => {
            let mut d = load_csv(&data, task, classes)?;
            impute::impute(&mut d, impute::ImputeStrategy::Median);
            d.sanitize();
            let text =
                std::fs::read_to_string(&features).map_err(|e| FastFtError::io(&features, &e))?;
            let exprs = load_feature_set(&text)?;
            let transformed = apply_feature_set(&d, &exprs)?;
            csvio::write_csv(&transformed, &out)?;
            println!(
                "applied {} features to {} rows; wrote {}",
                exprs.len(),
                transformed.n_rows(),
                out.display()
            );
            Ok(())
        }
    }
}

fn load_csv(path: &Path, task: TaskType, classes: usize) -> FastFtResult<fastft_tabular::Dataset> {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    let classes = if task == TaskType::Regression { 0 } else { classes.max(2) };
    csvio::read_csv(path, &name, task, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_command() {
        let cmd = parse_args(&argv(
            "run --data x.csv --task classification --episodes 5 --seed 3 --out f.txt \
             --threads 4",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                data: PathBuf::from("x.csv"),
                task: TaskType::Classification,
                classes: 2,
                episodes: 5,
                steps: 8,
                seed: 3,
                out: Some(PathBuf::from("f.txt")),
                max_seconds: 0.0,
                max_evals: 0,
                checkpoint: None,
                checkpoint_every: 1,
                resume: None,
                threads: 4,
            }
        );
    }

    #[test]
    fn parses_budget_and_checkpoint_flags() {
        let cmd = parse_args(&argv(
            "run --data x.csv --task c --max-seconds 1.5 --max-evals 40 \
             --checkpoint c.bin --checkpoint-every 2 --resume old.bin",
        ))
        .unwrap();
        let Command::Run { max_seconds, max_evals, checkpoint, checkpoint_every, resume, .. } = cmd
        else {
            panic!("expected run command");
        };
        assert_eq!(max_seconds, 1.5);
        assert_eq!(max_evals, 40);
        assert_eq!(checkpoint, Some(PathBuf::from("c.bin")));
        assert_eq!(checkpoint_every, 2);
        assert_eq!(resume, Some(PathBuf::from("old.bin")));
        let err = parse_args(&argv("run --data x.csv --task c --max-seconds lots")).unwrap_err();
        assert!(err.contains("--max-seconds"), "{err}");
    }

    #[test]
    fn parses_task_aliases() {
        assert_eq!(parse_task("r").unwrap(), TaskType::Regression);
        assert_eq!(parse_task("D").unwrap(), TaskType::Detection);
        assert!(parse_task("x").is_err());
    }

    #[test]
    fn missing_required_flag_is_error() {
        let err = parse_args(&argv("run --task classification")).unwrap_err();
        assert!(err.contains("--data"), "{err}");
    }

    #[test]
    fn unknown_command_is_error() {
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn generate_then_run_then_apply_end_to_end() {
        let dir = std::env::temp_dir().join("fastft_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("pima.csv");
        let feats = dir.join("features.txt");
        let out = dir.join("transformed.csv");

        execute(Command::Generate {
            name: "pima_indian".into(),
            rows: 120,
            seed: 0,
            out: csv.clone(),
        })
        .unwrap();
        assert!(csv.exists());

        execute(Command::Run {
            data: csv.clone(),
            task: TaskType::Classification,
            classes: 2,
            episodes: 2,
            steps: 2,
            seed: 0,
            out: Some(feats.clone()),
            max_seconds: 0.0,
            max_evals: 0,
            checkpoint: None,
            checkpoint_every: 1,
            resume: None,
            threads: 0,
        })
        .unwrap();
        let text = std::fs::read_to_string(&feats).unwrap();
        assert!(!text.trim().is_empty());

        execute(Command::Apply {
            data: csv.clone(),
            features: feats.clone(),
            task: TaskType::Classification,
            classes: 2,
            out: out.clone(),
        })
        .unwrap();
        let transformed = csvio::read_csv(&out, "t", TaskType::Classification, 2).unwrap();
        assert_eq!(transformed.n_rows(), 120);
        for p in [csv, feats, out] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn datasets_and_help_execute() {
        execute(Command::Datasets).unwrap();
        execute(Command::Help).unwrap();
    }

    #[test]
    fn threads_flag_runs_end_to_end_and_is_result_invariant() {
        let dir = std::env::temp_dir().join("fastft_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("pima.csv");
        execute(Command::Generate {
            name: "pima_indian".into(),
            rows: 100,
            seed: 0,
            out: csv.clone(),
        })
        .unwrap();

        // Same run twice, differing only in --threads: the pool size must
        // change how work is scheduled, never what features come out.
        let mut outs = Vec::new();
        for threads in [1usize, 2] {
            let feats = dir.join(format!("features_{threads}.txt"));
            let cmd = parse_args(&argv(&format!(
                "run --data {} --task c --episodes 2 --steps 2 --seed 7 --out {} --threads {threads}",
                csv.display(),
                feats.display(),
            )))
            .unwrap();
            let Command::Run { threads: parsed, .. } = &cmd else { panic!("expected run") };
            assert_eq!(*parsed, threads);
            execute(cmd).unwrap();
            outs.push(std::fs::read_to_string(&feats).unwrap());
            std::fs::remove_file(&feats).ok();
        }
        assert!(!outs[0].trim().is_empty());
        assert_eq!(outs[0], outs[1], "feature set must not depend on thread count");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn run_checkpoints_and_resumes_via_cli() {
        let dir = std::env::temp_dir().join("fastft_cli_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("pima.csv");
        let ckpt = dir.join("run.ckpt");
        let feats = dir.join("features.txt");
        execute(Command::Generate {
            name: "pima_indian".into(),
            rows: 100,
            seed: 0,
            out: csv.clone(),
        })
        .unwrap();

        // First run: eval budget stops it early, leaving a checkpoint.
        let budgeted = Command::Run {
            data: csv.clone(),
            task: TaskType::Classification,
            classes: 2,
            episodes: 3,
            steps: 2,
            seed: 0,
            out: None,
            max_seconds: 0.0,
            max_evals: 4,
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: 1,
            resume: None,
            threads: 0,
        };
        execute(budgeted).unwrap();
        assert!(ckpt.exists(), "budget-stopped run should leave a checkpoint");

        // Second run: resume with the budget lifted and finish.
        execute(Command::Run {
            data: csv.clone(),
            task: TaskType::Classification,
            classes: 2,
            episodes: 0, // ignored on resume; the checkpoint's config wins
            steps: 0,
            seed: 99,
            out: Some(feats.clone()),
            max_seconds: 0.0,
            max_evals: 0,
            checkpoint: None,
            checkpoint_every: 1,
            resume: Some(ckpt.clone()),
            threads: 0,
        })
        .unwrap();
        assert!(!std::fs::read_to_string(&feats).unwrap().trim().is_empty());
        for p in [csv, ckpt, feats] {
            std::fs::remove_file(p).ok();
        }
    }
}
