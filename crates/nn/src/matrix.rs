//! Row-major `f64` matrices and gradient-carrying parameter tensors.

use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`. Activations and intermediate values
/// use this type; trainable parameters use [`Tensor`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let cols = data.len();
        Matrix { rows: 1, cols, data }
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — standard matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // The zero-skip below drops `0 · b` terms, which is only sound while
        // `b` is finite (`0 · ∞` and `0 · NaN` are NaN and must propagate).
        // Scanned lazily so all-nonzero inputs never pay for it.
        let mut b_finite: Option<bool> = None;
        // ikj loop order: the inner loop walks both `other` and `out` rows
        // contiguously (perf-book cache-friendly traversal).
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0
                    && *b_finite.get_or_insert_with(|| other.data.iter().all(|v| v.is_finite()))
                {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                out.data[i * other.rows + j] = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    /// `selfᵀ @ other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape");
        let mut out = Matrix::zeros(self.cols, other.cols);
        // Same lazily-checked finiteness gate as [`Matrix::matmul`]: the
        // zero-skip must not swallow `0 · ∞ = NaN` terms from `other`.
        let mut b_finite: Option<bool> = None;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0
                    && *b_finite.get_or_insert_with(|| other.data.iter().all(|v| v.is_finite()))
                {
                    continue;
                }
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `out += selfᵀ @ other` — dense accumulate (no zero-skip), used by the
    /// fused recurrent backward passes to hoist `dW += Xᵀ dZ` out of the
    /// time loop. Row order ascends, so every caller shares one
    /// deterministic summation order.
    pub fn add_matmul_tn(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "add_matmul_tn shape");
        assert_eq!((out.rows, out.cols), (self.cols, other.cols), "add_matmul_tn out shape");
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `out += a @ self` over a flat row-major slice pair: `a` is
    /// `rows × self.rows`, `out` is `rows × self.cols`. Dense accumulate
    /// (no zero-skip) with a k-ascending inner order, so the fused recurrent
    /// kernels and the batched/prefix-resumed paths built on them all share
    /// one bitwise-deterministic summation order.
    pub fn addmm_into(&self, a: &[f64], rows: usize, out: &mut [f64]) {
        assert_eq!(a.len(), rows * self.rows, "addmm_into lhs shape");
        assert_eq!(out.len(), rows * self.cols, "addmm_into out shape");
        for i in 0..rows {
            let a_row = &a[i * self.rows..(i + 1) * self.rows];
            let o_row = &mut out[i * self.cols..(i + 1) * self.cols];
            for (k, &av) in a_row.iter().enumerate() {
                let b_row = &self.data[k * self.cols..(k + 1) * self.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += av * b;
                }
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise addition in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale all entries in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Add a 1×cols row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// A trainable parameter: value plus accumulated gradient of the same shape.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Parameter values.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by [`crate::optim`] helpers).
    pub grad: Matrix,
}

impl Tensor {
    /// Zero-initialised parameter.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { value: Matrix::zeros(rows, cols), grad: Matrix::zeros(rows, cols) }
    }

    /// Wrap an existing value matrix.
    pub fn from_matrix(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows, value.cols);
        Tensor { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.data.is_empty()
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad.data {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(f64::from).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(f64::from).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_broadcast() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.data, vec![1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn indexing() {
        let mut a = Matrix::zeros(2, 2);
        a[(1, 0)] = 5.0;
        assert_eq!(a[(1, 0)], 5.0);
        assert_eq!(a.row(1), &[5.0, 0.0]);
    }

    #[test]
    fn tensor_zero_grad() {
        let mut t = Tensor::zeros(2, 2);
        t.grad.data[0] = 3.0;
        t.zero_grad();
        assert!(t.grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn matmul_propagates_nan_through_zero_rows() {
        // Regression: the zero-skip fast path used to drop `0 · NaN` and
        // `0 · ∞` terms, silently producing finite output from poisoned B.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![f64::NAN, f64::INFINITY, 2.0, 3.0]);
        let c = a.matmul(&b);
        assert!(c.data[0].is_nan(), "0·NaN must propagate, got {}", c.data[0]);
        assert!(c.data[1].is_nan(), "0·∞ + finite must stay NaN, got {}", c.data[1]);
    }

    #[test]
    fn matmul_tn_propagates_nan_through_zero_rows() {
        let a = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![f64::NAN, f64::INFINITY, 2.0, 3.0]);
        let c = a.matmul_tn(&b);
        assert!(c.data[0].is_nan() && c.data[1].is_nan());
    }

    #[test]
    fn matmul_zero_skip_still_exact_on_finite_inputs() {
        let a = Matrix::from_vec(2, 3, vec![0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let dense = {
            let mut out = Matrix::zeros(2, 2);
            b.addmm_into(&a.data, 2, &mut out.data);
            out
        };
        assert_eq!(a.matmul(&b), dense);
    }

    #[test]
    fn addmm_into_accumulates() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut out = vec![1.0; 4];
        b.addmm_into(&a.data, 2, &mut out);
        assert_eq!(out, vec![59., 65., 140., 155.]);
    }

    #[test]
    fn add_matmul_tn_accumulates() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(f64::from).collect());
        let mut out = Matrix::zeros(2, 4);
        a.add_matmul_tn(&b, &mut out);
        let mut expect = a.matmul_tn(&b);
        a.add_matmul_tn(&b, &mut out);
        expect.add_assign(&a.matmul_tn(&b));
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
