//! Pooled scratch buffers for the neural hot path.
//!
//! [`NnWorkspace`] mirrors the `HistWorkspace` pattern from the tree stack:
//! every transient buffer the fused recurrent kernels need (input-projection
//! matrices, recurrent states, per-timestep gradient rows) is taken from the
//! pool and given back when the call returns, so steady-state predict/train
//! reuses the same handful of allocations instead of allocating per timestep.

use crate::matrix::Matrix;

/// A free-list of `Vec<f64>` buffers shared by forward, backward, and
/// inference kernels. Buffers are zero-filled on [`NnWorkspace::take`] so
/// callers can treat them as fresh.
#[derive(Debug, Clone, Default)]
pub struct NnWorkspace {
    pool: Vec<Vec<f64>>,
}

impl NnWorkspace {
    /// Empty workspace; buffers are created lazily on first use.
    pub fn new() -> Self {
        NnWorkspace::default()
    }

    /// Take a zeroed buffer of length `len`, reusing pooled capacity.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Take a zeroed `rows × cols` matrix backed by a pooled buffer.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: self.take(rows * cols) }
    }

    /// Take a pooled copy of `src` (same shape and contents). Used by the
    /// training kernels to snapshot inputs/outputs into their caches without
    /// allocating fresh buffers every step.
    pub fn take_copy(&mut self, src: &Matrix) -> Matrix {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.extend_from_slice(&src.data);
        Matrix { rows: src.rows, cols: src.cols, data: v }
    }

    /// Return a buffer to the pool for reuse.
    pub fn give(&mut self, v: Vec<f64>) {
        if v.capacity() > 0 {
            self.pool.push(v);
        }
    }

    /// Return a matrix's backing buffer to the pool.
    pub fn give_matrix(&mut self, m: Matrix) {
        self.give(m.data);
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Per-layer recurrent state (`h`, plus `c` for LSTM cells; `c` stays empty
/// for GRU/RNN layers). Snapshotting these after a forward pass lets a later
/// call resume mid-sequence, which is what the prefix-state cache in
/// `fastft-core` stores per token prefix.
#[derive(Debug, Clone, Default)]
pub struct LayerState {
    /// Hidden state, `hidden` long.
    pub h: Vec<f64>,
    /// Cell state (LSTM only), `hidden` long or empty.
    pub c: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_and_reuses_capacity() {
        let mut ws = NnWorkspace::new();
        let mut v = ws.take(8);
        v.iter().for_each(|&x| assert_eq!(x, 0.0));
        v[3] = 7.0;
        let ptr = v.as_ptr();
        ws.give(v);
        assert_eq!(ws.pooled(), 1);
        let v2 = ws.take(8);
        assert_eq!(v2.as_ptr(), ptr, "pooled buffer should be reused");
        assert!(v2.iter().all(|&x| x == 0.0), "reused buffer must be re-zeroed");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_matrix_roundtrip() {
        let mut ws = NnWorkspace::new();
        let m = ws.take_matrix(3, 4);
        assert_eq!((m.rows, m.cols), (3, 4));
        assert!(m.data.iter().all(|&x| x == 0.0));
        ws.give_matrix(m);
        assert_eq!(ws.pooled(), 1);
    }
}
