//! A Transformer encoder block with hand-written backprop — the FASTFTᵀ
//! ablation encoder of Fig. 8.
//!
//! Post-norm architecture over batch-of-one sequences (`T × dim`):
//! `y1 = LN1(x + MHA(x))`, `y2 = LN2(y1 + FFN(y1))`.

use crate::activation::{softmax_backward_row, softmax_inplace, Activation};
use crate::dense::Dense;
use crate::init;
use crate::matrix::{Matrix, Tensor};
use fastft_tabular::rngx::StdRng;

/// Per-row layer normalisation with learned scale/shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale (`1 × dim`).
    pub gamma: Tensor,
    /// Shift (`1 × dim`).
    pub beta: Tensor,
    eps: f64,
    cache: Option<(Matrix, Vec<f64>)>, // (normalised x̂, per-row inv std)
}

impl LayerNorm {
    /// Identity-initialised layer norm.
    pub fn new(dim: usize) -> Self {
        let mut gamma = Tensor::zeros(1, dim);
        gamma.value.data.iter_mut().for_each(|v| *v = 1.0);
        LayerNorm { gamma, beta: Tensor::zeros(1, dim), eps: 1e-5, cache: None }
    }

    /// Normalise each row; caches for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (y, xhat, inv_std) = self.run(x);
        self.cache = Some((xhat, inv_std));
        y
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.run(x).0
    }

    fn run(&self, x: &Matrix) -> (Matrix, Matrix, Vec<f64>) {
        let d = x.cols;
        let mut y = Matrix::zeros(x.rows, d);
        let mut xhat = Matrix::zeros(x.rows, d);
        let mut inv_stds = Vec::with_capacity(x.rows);
        for r in 0..x.rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f64>() / d as f64;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for j in 0..d {
                let h = (row[j] - mean) * inv_std;
                xhat[(r, j)] = h;
                y[(r, j)] = h * self.gamma.value.data[j] + self.beta.value.data[j];
            }
        }
        (y, xhat, inv_stds)
    }

    /// Backward; accumulates `dγ`, `dβ`, returns `dX`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (xhat, inv_stds) = self.cache.take().expect("forward before backward");
        let d = dy.cols as f64;
        let dim = dy.cols;
        let mut dx = Matrix::zeros(dy.rows, dim);
        for r in 0..dy.rows {
            let mut sum_dyg = 0.0;
            let mut sum_dyg_xhat = 0.0;
            for j in 0..dim {
                let dyg = dy[(r, j)] * self.gamma.value.data[j];
                sum_dyg += dyg;
                sum_dyg_xhat += dyg * xhat[(r, j)];
                self.gamma.grad.data[j] += dy[(r, j)] * xhat[(r, j)];
                self.beta.grad.data[j] += dy[(r, j)];
            }
            for j in 0..dim {
                let dyg = dy[(r, j)] * self.gamma.value.data[j];
                dx[(r, j)] = inv_stds[r] * (dyg - sum_dyg / d - xhat[(r, j)] * sum_dyg_xhat / d);
            }
        }
        dx
    }

    /// Trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }
}

#[derive(Debug, Clone)]
struct Head {
    wq: Tensor, // dim × dk
    wk: Tensor,
    wv: Tensor,
    cache: Option<HeadCache>,
}

#[derive(Debug, Clone)]
struct HeadCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix, // T × T softmax rows
}

impl Head {
    fn new(dim: usize, dk: usize, rng: &mut StdRng) -> Self {
        Head {
            wq: Tensor::from_matrix(init::xavier(rng, dim, dk)),
            wk: Tensor::from_matrix(init::xavier(rng, dim, dk)),
            wv: Tensor::from_matrix(init::xavier(rng, dim, dk)),
            cache: None,
        }
    }

    fn run(&self, x: &Matrix, keep: bool) -> (Matrix, Option<HeadCache>) {
        let dk = self.wq.value.cols;
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let mut scores = q.matmul_nt(&k);
        scores.scale(1.0 / (dk as f64).sqrt());
        for r in 0..scores.rows {
            softmax_inplace(scores.row_mut(r));
        }
        let out = scores.matmul(&v);
        let cache = keep.then(|| HeadCache {
            q: q.clone(),
            k: k.clone(),
            v: v.clone(),
            attn: scores.clone(),
        });
        (out, cache)
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let (out, cache) = self.run(x, true);
        self.cache = cache;
        out
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        self.run(x, false).0
    }

    /// Backward for one head. `x` is the block input (needed for the weight
    /// gradients); returns `dX` contribution from this head.
    fn backward(&mut self, x: &Matrix, d_out: &Matrix) -> Matrix {
        let HeadCache { q, k, v, attn } = self.cache.take().expect("forward before backward");
        let dk = self.wq.value.cols;
        let scale = 1.0 / (dk as f64).sqrt();
        // out = attn @ v
        let d_attn = d_out.matmul_nt(&v);
        let d_v = attn.matmul_tn(d_out);
        // softmax backward per row, then score scale.
        let mut d_scores = Matrix::zeros(attn.rows, attn.cols);
        for r in 0..attn.rows {
            let ds = softmax_backward_row(attn.row(r), d_attn.row(r));
            for (j, val) in ds.into_iter().enumerate() {
                d_scores[(r, j)] = val * scale;
            }
        }
        // scores = q @ kᵀ
        let d_q = d_scores.matmul(&k);
        let d_k = d_scores.matmul_tn(&q).transpose(); // (dᵀscores q)ᵀ = scoresᵀ q ... see below
                                                      // d_k: scores = q kᵀ ⇒ dK = d_scoresᵀ @ q
        let d_k = {
            let _ = d_k;
            d_scores.transpose().matmul(&q)
        };
        // Weight grads and input grad.
        self.wq.grad.add_assign(&x.matmul_tn(&d_q));
        self.wk.grad.add_assign(&x.matmul_tn(&d_k));
        self.wv.grad.add_assign(&x.matmul_tn(&d_v));
        let mut dx = d_q.matmul_nt(&self.wq.value);
        dx.add_assign(&d_k.matmul_nt(&self.wk.value));
        dx.add_assign(&d_v.matmul_nt(&self.wv.value));
        dx
    }

    fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv]
    }

    fn n_params(&self) -> usize {
        self.wq.len() + self.wk.len() + self.wv.len()
    }
}

/// One post-norm Transformer encoder block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    heads: Vec<Head>,
    wo: Tensor, // dim × dim
    ln1: LayerNorm,
    ff1: Dense,
    ff2: Dense,
    ln2: LayerNorm,
    cache: Option<BlockCache>,
}

#[derive(Debug, Clone)]
struct BlockCache {
    x: Matrix,
    concat: Matrix, // concatenated head outputs, T × dim
}

impl TransformerBlock {
    /// Build a block with `n_heads` heads over model width `dim`
    /// (`dim % n_heads == 0`) and a `4·dim` FFN.
    pub fn new(dim: usize, n_heads: usize, rng: &mut StdRng) -> Self {
        assert!(
            n_heads >= 1 && dim.is_multiple_of(n_heads),
            "dim {dim} not divisible by {n_heads} heads"
        );
        let dk = dim / n_heads;
        TransformerBlock {
            heads: (0..n_heads).map(|_| Head::new(dim, dk, rng)).collect(),
            wo: Tensor::from_matrix(init::xavier(rng, dim, dim)),
            ln1: LayerNorm::new(dim),
            ff1: Dense::new(dim, 4 * dim, Activation::Relu, rng),
            ff2: Dense::new(4 * dim, dim, Activation::Linear, rng),
            ln2: LayerNorm::new(dim),
            cache: None,
        }
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.wo.value.rows
    }

    /// Forward over a `T × dim` sequence.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let dim = self.dim();
        let dk = dim / self.heads.len();
        let mut concat = Matrix::zeros(x.rows, dim);
        for (h, head) in self.heads.iter_mut().enumerate() {
            let out = head.forward(x);
            for r in 0..x.rows {
                concat.row_mut(r)[h * dk..(h + 1) * dk].copy_from_slice(out.row(r));
            }
        }
        let mut attn_out = concat.matmul(&self.wo.value);
        attn_out.add_assign(x);
        let y1 = self.ln1.forward(&attn_out);
        let f = self.ff1.forward(&y1);
        let mut f2 = self.ff2.forward(&f);
        f2.add_assign(&y1);
        let y2 = self.ln2.forward(&f2);
        self.cache = Some(BlockCache { x: x.clone(), concat });
        y2
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let dim = self.dim();
        let dk = dim / self.heads.len();
        let mut concat = Matrix::zeros(x.rows, dim);
        for (h, head) in self.heads.iter().enumerate() {
            let out = head.infer(x);
            for r in 0..x.rows {
                concat.row_mut(r)[h * dk..(h + 1) * dk].copy_from_slice(out.row(r));
            }
        }
        let mut attn_out = concat.matmul(&self.wo.value);
        attn_out.add_assign(x);
        let y1 = self.ln1.infer(&attn_out);
        let f = self.ff1.infer(&y1);
        let mut f2 = self.ff2.infer(&f);
        f2.add_assign(&y1);
        self.ln2.infer(&f2)
    }

    /// Backward; accumulates all parameter grads, returns `dX`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let BlockCache { x, concat } = self.cache.take().expect("forward before backward");
        let dim = self.dim();
        let dk = dim / self.heads.len();
        // y2 = LN2(y1 + FF(y1))
        let du = self.ln2.backward(dy);
        let df = self.ff2.backward(&du);
        let mut dy1 = self.ff1.backward(&df);
        dy1.add_assign(&du);
        // y1 = LN1(x + concat @ Wo)
        let dv = self.ln1.backward(&dy1);
        // attn_out = concat @ Wo + x
        self.wo.grad.add_assign(&concat.matmul_tn(&dv));
        let d_concat = dv.matmul_nt(&self.wo.value);
        let mut dx = dv; // residual path
        for (h, head) in self.heads.iter_mut().enumerate() {
            let mut d_head = Matrix::zeros(x.rows, dk);
            for r in 0..x.rows {
                d_head.row_mut(r).copy_from_slice(&d_concat.row(r)[h * dk..(h + 1) * dk]);
            }
            dx.add_assign(&head.backward(&x, &d_head));
        }
        dx
    }

    /// Trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        let mut p: Vec<&mut Tensor> = Vec::new();
        for h in &mut self.heads {
            p.extend(h.parameters());
        }
        p.push(&mut self.wo);
        p.extend(self.ln1.parameters());
        p.extend(self.ff1.parameters());
        p.extend(self.ff2.parameters());
        p.extend(self.ln2.parameters());
        p
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.heads.iter().map(Head::n_params).sum::<usize>()
            + self.wo.len()
            + self.ln1.n_params()
            + self.ff1.n_params()
            + self.ff2.n_params()
            + self.ln2.n_params()
    }
}

/// Sinusoidal positional encoding added to a `T × dim` embedding matrix.
pub fn add_positional_encoding(x: &mut Matrix) {
    let dim = x.cols;
    for t in 0..x.rows {
        for j in 0..dim {
            let angle = t as f64 / 10_000f64.powf((2 * (j / 2)) as f64 / dim as f64);
            x[(t, j)] += if j % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn layernorm_rows_standardised() {
        let mut ln = LayerNorm::new(4);
        let x = seq(3, 4, 1);
        let y = ln.forward(&x);
        for r in 0..3 {
            let row = y.row(r);
            let mean: f64 = row.iter().sum::<f64>() / 4.0;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut ln = LayerNorm::new(5);
        // Non-trivial gamma/beta.
        for (i, g) in ln.gamma.value.data.iter_mut().enumerate() {
            *g = 1.0 + 0.1 * i as f64;
        }
        let x = seq(2, 5, 2);
        let c = seq(2, 5, 3);
        ln.forward(&x);
        let dx = ln.backward(&c);
        let eps = 1e-6;
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&ln.infer(&xp), &c) - loss(&ln.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]: {num} vs {}", dx.data[idx]);
        }
        // gamma gradient.
        let g_analytic = ln.gamma.grad.clone();
        for idx in 0..5 {
            let orig = ln.gamma.value.data[idx];
            ln.gamma.value.data[idx] = orig + eps;
            let plus = loss(&ln.infer(&x), &c);
            ln.gamma.value.data[idx] = orig - eps;
            let minus = loss(&ln.infer(&x), &c);
            ln.gamma.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - g_analytic.data[idx]).abs() < 1e-6, "gamma[{idx}]");
        }
    }

    #[test]
    fn block_shapes_and_infer_parity() {
        let mut b = TransformerBlock::new(8, 2, &mut init::rng(4));
        let x = seq(6, 8, 5);
        let y = b.forward(&x);
        assert_eq!((y.rows, y.cols), (6, 8));
        let z = b.infer(&x);
        for (u, v) in y.data.iter().zip(&z.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn block_input_gradcheck() {
        let mut b = TransformerBlock::new(4, 2, &mut init::rng(6));
        let x = seq(3, 4, 7);
        let c = seq(3, 4, 8);
        b.forward(&x);
        let dx = b.backward(&c);
        let eps = 1e-6;
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&b.infer(&xp), &c) - loss(&b.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 2e-5, "x[{idx}]: {num} vs {}", dx.data[idx]);
        }
    }

    #[test]
    fn block_param_gradcheck_spot() {
        let mut b = TransformerBlock::new(4, 2, &mut init::rng(9));
        let x = seq(3, 4, 10);
        let c = seq(3, 4, 11);
        b.forward(&x);
        b.backward(&c);
        let analytic: Vec<Vec<f64>> = b.parameters().iter().map(|p| p.grad.data.clone()).collect();
        let eps = 1e-6;
        let n_params = analytic.len();
        for pi in 0..n_params {
            // Check up to the first three entries of each tensor.
            for idx in 0..analytic[pi].len().min(3) {
                let perturb = |e: f64| {
                    let mut b2 = b.clone();
                    b2.parameters()[pi].value.data[idx] += e;
                    loss(&b2.infer(&x), &c)
                };
                let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                assert!(
                    (num - analytic[pi][idx]).abs() < 2e-5,
                    "param {pi} idx {idx}: {num} vs {}",
                    analytic[pi][idx]
                );
            }
        }
    }

    #[test]
    fn positional_encoding_distinguishes_positions() {
        let mut a = Matrix::zeros(4, 6);
        add_positional_encoding(&mut a);
        assert_ne!(a.row(0), a.row(1));
        assert_ne!(a.row(1), a.row(3));
        // First row: sin(0)=0, cos(0)=1 alternating.
        assert_eq!(a.row(0)[0], 0.0);
        assert_eq!(a.row(0)[1], 1.0);
    }
}
