//! Minimal neural-network stack with hand-written forward/backward passes.
//!
//! The paper's evaluation components are small sequence models — a 2-layer
//! LSTM with dim-32 embeddings feeding a feed-forward head (Performance
//! Predictor), the same encoder inside a random-network-distillation pair
//! (Novelty Estimator), plus RNN and Transformer variants for the Fig. 8
//! ablation — and the RL agents are small MLPs. Everything here is sized for
//! that regime: `f64` precision, batch-of-one sequences, explicit caches,
//! finite-difference-checked gradients.
//!
//! Layers expose `forward` / `backward` pairs and a `parameters()` view that
//! optimizers consume; see [`optim::Adam`].

pub mod activation;
pub mod dense;
pub mod embedding;
pub mod gradcheck;
pub mod gru;
pub mod init;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod reference;
pub mod rnn;
pub mod seq;
pub mod snapshot;
pub mod transformer;
pub mod workspace;

pub use dense::Dense;
pub use matrix::{Matrix, Tensor};
pub use mlp::Mlp;
pub use optim::{Adam, Sgd};
pub use seq::{EncoderKind, EncoderState, SequenceRegressor};
pub use snapshot::NetState;
pub use workspace::{LayerState, NnWorkspace};
