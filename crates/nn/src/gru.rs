//! Gated recurrent unit (Cho et al., 2014) — an additional sequence encoder
//! beyond the paper's LSTM/RNN/Transformer trio, exposed through
//! [`crate::seq::EncoderKind::Gru`] for extended encoder ablations.
//!
//! Gate layout inside the fused weights is `[r | z | n]` (reset, update,
//! candidate), with the PyTorch-style candidate
//! `n = tanh(x Wxn + r ⊙ (h Whn) + bn)`. Like the LSTM, the input projection
//! `Zx = b ⊕ X Wx` is hoisted out of the time loop as one GEMM, each step
//! adds a single recurrent GEMM (`Zh = h_prev Wh`), and scratch comes from a
//! pooled [`NnWorkspace`]. Batched lanes and [`LayerState`] resume are
//! supported for the prefix-cached scoring path.

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::{Matrix, Tensor};
use crate::workspace::{LayerState, NnWorkspace};
use fastft_tabular::rngx::StdRng;

/// One GRU layer.
#[derive(Debug, Clone)]
pub struct GruLayer {
    /// Input-to-gates weights (`in_dim × 3·hidden`).
    pub wx: Tensor,
    /// Hidden-to-gates weights (`hidden × 3·hidden`).
    pub wh: Tensor,
    /// Gate bias (`1 × 3·hidden`).
    pub b: Tensor,
    hidden: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Matrix,
    /// T × 3H: `[r | z | n]` activated gates.
    gates: Matrix,
    /// T × H: `h Whn` pre-reset recurrent candidate contribution.
    hn_lin: Matrix,
    hiddens: Matrix,
}

impl GruLayer {
    /// Xavier-initialised layer.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruLayer {
            wx: Tensor::from_matrix(init::xavier(rng, in_dim, 3 * hidden)),
            wh: Tensor::from_matrix(init::xavier(rng, hidden, 3 * hidden)),
            b: Tensor::zeros(1, 3 * hidden),
            hidden,
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Fused forward; see [`crate::lstm::LstmLayer`] for the time-major lane
    /// packing and resume conventions.
    fn run(
        &self,
        x: &Matrix,
        batch: usize,
        init: Option<&[&LayerState]>,
        keep: bool,
        states_out: Option<&mut Vec<LayerState>>,
        ws: &mut NnWorkspace,
    ) -> (Matrix, Option<Cache>) {
        let h = self.hidden;
        let g = 3 * h;
        let rows = x.rows;
        assert!(
            batch >= 1 && rows.is_multiple_of(batch),
            "rows {rows} not a multiple of batch {batch}"
        );
        let t_len = rows / batch;
        if keep {
            assert!(batch == 1 && init.is_none(), "training path is batch-of-one from t = 0");
        }
        // Input projection hoisted over the whole sequence: Zx = b ⊕ X Wx.
        let mut zx = ws.take_matrix(rows, g);
        for r in 0..rows {
            zx.row_mut(r).copy_from_slice(&self.b.value.data);
        }
        self.wx.value.addmm_into(&x.data, rows, &mut zx.data);
        let mut h_prev = ws.take(batch * h);
        if let Some(states) = init {
            assert_eq!(states.len(), batch, "one init state per lane");
            for (bi, st) in states.iter().enumerate() {
                h_prev[bi * h..(bi + 1) * h].copy_from_slice(&st.h);
            }
        }
        let mut zh = ws.take(batch * g);
        let mut out = ws.take_matrix(rows, h);
        let mut hn_all = if keep { Some(ws.take_matrix(t_len, h)) } else { None };
        for t in 0..t_len {
            // Recurrent GEMM for this step's lanes: Zh = h_prev Wh.
            zh.iter_mut().for_each(|v| *v = 0.0);
            self.wh.value.addmm_into(&h_prev, batch, &mut zh);
            let zx_rows = &mut zx.data[t * batch * g..(t + 1) * batch * g];
            for bi in 0..batch {
                let zxr = &mut zx_rows[bi * g..(bi + 1) * g];
                let zhr = &zh[bi * g..(bi + 1) * g];
                let hp = &mut h_prev[bi * h..(bi + 1) * h];
                for j in 0..h {
                    let r = sigmoid(zxr[j] + zhr[j]);
                    let z = sigmoid(zxr[h + j] + zhr[h + j]);
                    let hn_lin = zhr[2 * h + j];
                    let n = (zxr[2 * h + j] + r * hn_lin).tanh();
                    zxr[j] = r;
                    zxr[h + j] = z;
                    zxr[2 * h + j] = n;
                    hp[j] = (1.0 - z) * n + z * hp[j];
                }
                out.row_mut(t * batch + bi).copy_from_slice(&h_prev[bi * h..(bi + 1) * h]);
                if let Some(hn_all) = hn_all.as_mut() {
                    // keep ⇒ batch == 1, so row t belongs to this lane.
                    hn_all.row_mut(t).copy_from_slice(&zhr[2 * h..]);
                }
            }
        }
        if let Some(states) = states_out {
            for bi in 0..batch {
                states.push(LayerState { h: h_prev[bi * h..(bi + 1) * h].to_vec(), c: Vec::new() });
            }
        }
        ws.give(h_prev);
        ws.give(zh);
        let cache = if keep {
            // Pool-backed snapshots keep repeated train steps allocation-free.
            let xc = ws.take_copy(x);
            let hc = ws.take_copy(&out);
            Some(Cache { x: xc, gates: zx, hn_lin: hn_all.unwrap(), hiddens: hc })
        } else {
            ws.give_matrix(zx);
            None
        };
        (out, cache)
    }

    /// Forward with caches.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.forward_ws(x, &mut ws)
    }

    /// [`GruLayer::forward`] drawing scratch from a shared workspace.
    pub fn forward_ws(&mut self, x: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let (out, cache) = self.run(x, 1, None, true, None, ws);
        self.cache = cache;
        out
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.run(x, 1, None, false, None, &mut ws).0
    }

    /// BPTT; accumulates parameter gradients, returns `dX`.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.backward_ws(d_out, &mut ws)
    }

    /// [`GruLayer::backward`] drawing scratch from a shared workspace. The
    /// per-step loop fills `dzx_t`/`dzh_t` rows and propagates `dh`; the
    /// parameter gradients are hoisted into whole-sequence GEMMs afterwards
    /// (`dWx += Xᵀ dZx`, `dWh += H[..T-1]ᵀ dZh[1..]`, `db += Σ_t dzx_t`,
    /// `dX = dZx Wxᵀ`).
    pub fn backward_ws(&mut self, d_out: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let t_len = cache.x.rows;
        assert_eq!(d_out.rows, t_len);
        let h = self.hidden;
        let g = 3 * h;
        // dzx over [r z n], dzh over [r z n] where the n-slot of zh is
        // multiplied by r inside the candidate.
        let mut dzx_all = ws.take_matrix(t_len, g);
        let mut dzh_all = ws.take_matrix(t_len, g);
        let mut dh_next = ws.take(h);
        for t in (0..t_len).rev() {
            let gates = cache.gates.row(t);
            let hn_lin = cache.hn_lin.row(t);
            let dzx = &mut dzx_all.data[t * g..(t + 1) * g];
            let dzh = &mut dzh_all.data[t * g..(t + 1) * g];
            for j in 0..h {
                let dh = d_out[(t, j)] + dh_next[j];
                let r = gates[j];
                let z = gates[h + j];
                let n = gates[2 * h + j];
                let h_prev = if t == 0 { 0.0 } else { cache.hiddens[(t - 1, j)] };
                // h = (1-z) n + z h_prev
                let dz = dh * (h_prev - n);
                let dn = dh * (1.0 - z);
                // n = tanh(a), a = zx_n + r * hn_lin
                let da = dn * (1.0 - n * n);
                dzx[2 * h + j] = da;
                let dr = da * hn_lin[j];
                dzh[2 * h + j] = da * r;
                // r = σ(zx_r + zh_r), z = σ(zx_z + zh_z)
                let dzr = dr * r * (1.0 - r);
                let dzz = dz * z * (1.0 - z);
                dzx[j] = dzr;
                dzh[j] = dzr;
                dzx[h + j] = dzz;
                dzh[h + j] = dzz;
                // Direct h_prev pathway through the update gate; the Whᵀ
                // pathway is added below once dzh_t is complete.
                dh_next[j] = dh * z;
            }
            let dzh = &dzh_all.data[t * g..(t + 1) * g];
            for (k, dhv) in dh_next.iter_mut().enumerate() {
                *dhv += self.wh.value.row(k).iter().zip(dzh).map(|(a, b)| a * b).sum::<f64>();
            }
        }
        cache.x.add_matmul_tn(&dzx_all, &mut self.wx.grad);
        for t in 1..t_len {
            let h_row = cache.hiddens.row(t - 1);
            let dzh = dzh_all.row(t);
            for (k, &hv) in h_row.iter().enumerate() {
                let g_row = &mut self.wh.grad.data[k * g..(k + 1) * g];
                for (gv, &dv) in g_row.iter_mut().zip(dzh) {
                    *gv += hv * dv;
                }
            }
        }
        for t in 0..t_len {
            for (gv, &dv) in self.b.grad.data.iter_mut().zip(dzx_all.row(t)) {
                *gv += dv;
            }
        }
        let in_dim = cache.x.cols;
        let mut dx = ws.take_matrix(t_len, in_dim);
        for t in 0..t_len {
            let dzx = dzx_all.row(t);
            let dx_row = &mut dx.data[t * in_dim..(t + 1) * in_dim];
            for (k, dxv) in dx_row.iter_mut().enumerate() {
                *dxv = self.wx.value.row(k).iter().zip(dzx).map(|(a, b)| a * b).sum();
            }
        }
        ws.give(dh_next);
        ws.give_matrix(dzx_all);
        ws.give_matrix(dzh_all);
        ws.give_matrix(cache.x);
        ws.give_matrix(cache.gates);
        ws.give_matrix(cache.hn_lin);
        ws.give_matrix(cache.hiddens);
        dx
    }

    /// Trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }
}

/// A stack of GRU layers.
#[derive(Debug, Clone)]
pub struct Gru {
    layers: Vec<GruLayer>,
}

impl Gru {
    /// Stack `n_layers` GRU layers.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, rng: &mut StdRng) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(GruLayer::new(in_dim, hidden, rng));
        for _ in 1..n_layers {
            layers.push(GruLayer::new(hidden, hidden, rng));
        }
        Gru { layers }
    }

    /// Hidden size of the final layer.
    pub fn hidden(&self) -> usize {
        self.layers.last().unwrap().hidden()
    }

    /// Borrow the layer stack (read-only), e.g. for the unfused reference
    /// implementation in [`crate::reference`].
    pub fn layers(&self) -> &[GruLayer] {
        &self.layers
    }

    /// Forward through the stack.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.forward_ws(x, &mut ws)
    }

    /// [`Gru::forward`] drawing scratch from a shared workspace.
    pub fn forward_ws(&mut self, x: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let mut h: Option<Matrix> = None;
        for layer in &mut self.layers {
            let out = {
                let input = h.as_ref().unwrap_or(x);
                layer.forward_ws(input, ws)
            };
            if let Some(prev) = h.take() {
                ws.give_matrix(prev);
            }
            h = Some(out);
        }
        h.expect("at least one layer")
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.infer_batch(x, 1, None, None, &mut ws)
    }

    /// Batched inference over time-major packed lanes with optional state
    /// resume; same conventions as [`crate::lstm::Lstm::infer_batch`].
    pub fn infer_batch(
        &self,
        x: &Matrix,
        batch: usize,
        init: Option<&[&[LayerState]]>,
        mut states_out: Option<&mut Vec<Vec<LayerState>>>,
        ws: &mut NnWorkspace,
    ) -> Matrix {
        let n_layers = self.layers.len();
        if let Some(init) = init {
            assert_eq!(init.len(), batch, "one init lane per batch row");
            for lane in init {
                assert_eq!(lane.len(), n_layers, "one init state per layer");
            }
        }
        if let Some(states) = states_out.as_deref_mut() {
            states.clear();
            states.resize_with(batch, || Vec::with_capacity(n_layers));
        }
        let mut h: Option<Matrix> = None;
        for (li, layer) in self.layers.iter().enumerate() {
            let init_states: Option<Vec<&LayerState>> =
                init.map(|lanes| lanes.iter().map(|lane| &lane[li]).collect());
            let mut layer_states: Option<Vec<LayerState>> =
                if states_out.is_some() { Some(Vec::with_capacity(batch)) } else { None };
            let out = {
                let input = h.as_ref().unwrap_or(x);
                layer.run(input, batch, init_states.as_deref(), false, layer_states.as_mut(), ws).0
            };
            if let Some(prev) = h.take() {
                ws.give_matrix(prev);
            }
            h = Some(out);
            if let (Some(acc), Some(ls)) = (states_out.as_deref_mut(), layer_states) {
                for (lane, st) in acc.iter_mut().zip(ls) {
                    lane.push(st);
                }
            }
        }
        h.expect("at least one layer")
    }

    /// Backward through the stack.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.backward_ws(d_out, &mut ws)
    }

    /// [`Gru::backward`] drawing scratch from a shared workspace.
    pub fn backward_ws(&mut self, d_out: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let mut d: Option<Matrix> = None;
        for layer in self.layers.iter_mut().rev() {
            let grad = {
                let upstream = d.as_ref().unwrap_or(d_out);
                layer.backward_ws(upstream, ws)
            };
            if let Some(prev) = d.take() {
                ws.give_matrix(prev);
            }
            d = Some(grad);
        }
        d.expect("at least one layer")
    }

    /// Trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(GruLayer::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(GruLayer::n_params).sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn shapes_and_infer_parity() {
        let mut g = Gru::new(3, 5, 2, &mut init::rng(1));
        let x = seq(6, 3, 2);
        let a = g.forward(&x);
        assert_eq!((a.rows, a.cols), (6, 5));
        let b = g.infer(&x);
        for (u, v) in a.data.iter().zip(&b.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn resumed_inference_matches_full_sequence() {
        let g = Gru::new(3, 4, 2, &mut init::rng(13));
        let x = seq(6, 3, 14);
        let mut ws = NnWorkspace::new();
        let full = g.infer_batch(&x, 1, None, None, &mut ws);
        let prefix = Matrix::from_vec(4, 3, x.data[..12].to_vec());
        let mut states = Vec::new();
        let _ = g.infer_batch(&prefix, 1, None, Some(&mut states), &mut ws);
        let tail = Matrix::from_vec(2, 3, x.data[12..].to_vec());
        let init: Vec<&[LayerState]> = vec![&states[0]];
        let resumed = g.infer_batch(&tail, 1, Some(&init), None, &mut ws);
        assert_eq!(resumed.row(0), full.row(4));
        assert_eq!(resumed.row(1), full.row(5));
    }

    #[test]
    fn gradcheck_single_layer_full() {
        let mut g = GruLayer::new(2, 3, &mut init::rng(3));
        let x = seq(4, 2, 4);
        let c = seq(4, 3, 5);
        g.forward(&x);
        let dx = g.backward(&c);
        let eps = 1e-6;
        let analytic: Vec<Vec<f64>> = g.parameters().iter().map(|p| p.grad.data.clone()).collect();
        for (pi, grads) in analytic.iter().enumerate() {
            for idx in 0..grads.len() {
                let perturb = |e: f64| {
                    let mut g2 = g.clone();
                    g2.parameters()[pi].value.data[idx] += e;
                    loss(&g2.infer(&x), &c)
                };
                let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                assert!(
                    (num - grads[idx]).abs() < 1e-6,
                    "param {pi} idx {idx}: {num} vs {}",
                    grads[idx]
                );
            }
        }
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&g.infer(&xp), &c) - loss(&g.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn gradcheck_stacked_spot() {
        let mut g = Gru::new(2, 3, 2, &mut init::rng(6));
        let x = seq(3, 2, 7);
        let c = seq(3, 3, 8);
        g.forward(&x);
        let dx = g.backward(&c);
        let eps = 1e-6;
        for (li, pi, idx) in [(0usize, 0usize, 0usize), (0, 1, 2), (1, 0, 4), (1, 2, 1)] {
            let analytic = g.layers[li].parameters()[pi].grad.data[idx];
            let perturb = |e: f64| {
                let mut g2 = g.clone();
                g2.layers[li].parameters()[pi].value.data[idx] += e;
                loss(&g2.infer(&x), &c)
            };
            let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
            assert!((num - analytic).abs() < 1e-6, "layer {li} param {pi} idx {idx}");
        }
        for idx in [0, 3, 5] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&g.infer(&xp), &c) - loss(&g.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }
}
