//! Gated recurrent unit (Cho et al., 2014) — an additional sequence encoder
//! beyond the paper's LSTM/RNN/Transformer trio, exposed through
//! [`crate::seq::EncoderKind::Gru`] for extended encoder ablations.
//!
//! Gate layout inside the fused weights is `[r | z | n]` (reset, update,
//! candidate), with the PyTorch-style candidate
//! `n = tanh(x Wxn + r ⊙ (h Whn) + bn)`.

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::{Matrix, Tensor};
use fastft_tabular::rngx::StdRng;

/// One GRU layer.
#[derive(Debug, Clone)]
pub struct GruLayer {
    /// Input-to-gates weights (`in_dim × 3·hidden`).
    pub wx: Tensor,
    /// Hidden-to-gates weights (`hidden × 3·hidden`).
    pub wh: Tensor,
    /// Gate bias (`1 × 3·hidden`).
    pub b: Tensor,
    hidden: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Matrix,
    /// Per step: `[r | z | n]` activated gates (3H).
    gates: Vec<Vec<f64>>,
    /// Per step: `h Whn` pre-reset recurrent candidate contribution (H).
    hn_lin: Vec<Vec<f64>>,
    hiddens: Vec<Vec<f64>>,
}

impl GruLayer {
    /// Xavier-initialised layer.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruLayer {
            wx: Tensor::from_matrix(init::xavier(rng, in_dim, 3 * hidden)),
            wh: Tensor::from_matrix(init::xavier(rng, hidden, 3 * hidden)),
            b: Tensor::zeros(1, 3 * hidden),
            hidden,
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn run(&self, x: &Matrix, keep: bool) -> (Matrix, Option<Cache>) {
        let t_len = x.rows;
        let h = self.hidden;
        let mut out = Matrix::zeros(t_len, h);
        let mut gates_v = Vec::with_capacity(t_len);
        let mut hn_v = Vec::with_capacity(t_len);
        let mut hs = Vec::with_capacity(t_len);
        let mut h_prev = vec![0.0; h];
        for t in 0..t_len {
            // zx = x Wx + b ; zh = h_prev Wh
            let mut zx = self.b.value.data.clone();
            for (k, &xv) in x.row(t).iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for (zv, &wv) in zx.iter_mut().zip(self.wx.value.row(k)) {
                    *zv += xv * wv;
                }
            }
            let mut zh = vec![0.0; 3 * h];
            for (k, &hv) in h_prev.iter().enumerate() {
                if hv == 0.0 {
                    continue;
                }
                for (zv, &wv) in zh.iter_mut().zip(self.wh.value.row(k)) {
                    *zv += hv * wv;
                }
            }
            let mut gates = vec![0.0; 3 * h];
            let mut hn_lin = vec![0.0; h];
            let mut h_t = vec![0.0; h];
            for j in 0..h {
                let r = sigmoid(zx[j] + zh[j]);
                let z = sigmoid(zx[h + j] + zh[h + j]);
                hn_lin[j] = zh[2 * h + j];
                let n = (zx[2 * h + j] + r * hn_lin[j]).tanh();
                gates[j] = r;
                gates[h + j] = z;
                gates[2 * h + j] = n;
                h_t[j] = (1.0 - z) * n + z * h_prev[j];
            }
            out.row_mut(t).copy_from_slice(&h_t);
            if keep {
                gates_v.push(gates);
                hn_v.push(hn_lin);
                hs.push(h_t.clone());
            }
            h_prev = h_t;
        }
        let cache = keep.then(|| Cache { x: x.clone(), gates: gates_v, hn_lin: hn_v, hiddens: hs });
        (out, cache)
    }

    /// Forward with caches.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (out, cache) = self.run(x, true);
        self.cache = cache;
        out
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.run(x, false).0
    }

    /// BPTT; accumulates parameter gradients, returns `dX`.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let t_len = cache.x.rows;
        let h = self.hidden;
        let mut dx = Matrix::zeros(t_len, cache.x.cols);
        let mut dh_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let hn_lin = &cache.hn_lin[t];
            let h_prev: Vec<f64> = if t == 0 { vec![0.0; h] } else { cache.hiddens[t - 1].clone() };
            // dzx over [r z n], dzh over [r z n] where the n-slot of zh is
            // multiplied by r inside the candidate.
            let mut dzx = vec![0.0; 3 * h];
            let mut dzh = vec![0.0; 3 * h];
            let mut dh_prev_direct = vec![0.0; h];
            for j in 0..h {
                let dh = d_out[(t, j)] + dh_next[j];
                let r = gates[j];
                let z = gates[h + j];
                let n = gates[2 * h + j];
                // h = (1-z) n + z h_prev
                let dz = dh * (h_prev[j] - n);
                let dn = dh * (1.0 - z);
                dh_prev_direct[j] += dh * z;
                // n = tanh(a), a = zx_n + r * hn_lin
                let da = dn * (1.0 - n * n);
                dzx[2 * h + j] = da;
                let dr = da * hn_lin[j];
                dzh[2 * h + j] = da * r;
                // r = σ(zx_r + zh_r), z = σ(zx_z + zh_z)
                let dzr = dr * r * (1.0 - r);
                let dzz = dz * z * (1.0 - z);
                dzx[j] = dzr;
                dzh[j] = dzr;
                dzx[h + j] = dzz;
                dzh[h + j] = dzz;
            }
            // Parameter grads.
            for (k, &xv) in cache.x.row(t).iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let g_row = &mut self.wx.grad.data[k * 3 * h..(k + 1) * 3 * h];
                for (gv, &dv) in g_row.iter_mut().zip(&dzx) {
                    *gv += xv * dv;
                }
            }
            for (k, &hv) in h_prev.iter().enumerate() {
                if hv == 0.0 {
                    continue;
                }
                let g_row = &mut self.wh.grad.data[k * 3 * h..(k + 1) * 3 * h];
                for (gv, &dv) in g_row.iter_mut().zip(&dzh) {
                    *gv += hv * dv;
                }
            }
            for (gv, &dv) in self.b.grad.data.iter_mut().zip(&dzx) {
                *gv += dv;
            }
            // Input and previous-hidden grads.
            for (k, dxv) in dx.row_mut(t).iter_mut().enumerate() {
                *dxv = self.wx.value.row(k).iter().zip(&dzx).map(|(a, b)| a * b).sum();
            }
            let mut dh_prev = dh_prev_direct;
            for (k, dhv) in dh_prev.iter_mut().enumerate() {
                *dhv += self.wh.value.row(k).iter().zip(&dzh).map(|(a, b)| a * b).sum::<f64>();
            }
            dh_next = dh_prev;
        }
        dx
    }

    /// Trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }
}

/// A stack of GRU layers.
#[derive(Debug, Clone)]
pub struct Gru {
    layers: Vec<GruLayer>,
}

impl Gru {
    /// Stack `n_layers` GRU layers.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, rng: &mut StdRng) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(GruLayer::new(in_dim, hidden, rng));
        for _ in 1..n_layers {
            layers.push(GruLayer::new(hidden, hidden, rng));
        }
        Gru { layers }
    }

    /// Hidden size of the final layer.
    pub fn hidden(&self) -> usize {
        self.layers.last().unwrap().hidden()
    }

    /// Forward through the stack.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// Backward through the stack.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut d = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(GruLayer::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(GruLayer::n_params).sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn shapes_and_infer_parity() {
        let mut g = Gru::new(3, 5, 2, &mut init::rng(1));
        let x = seq(6, 3, 2);
        let a = g.forward(&x);
        assert_eq!((a.rows, a.cols), (6, 5));
        let b = g.infer(&x);
        for (u, v) in a.data.iter().zip(&b.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn gradcheck_single_layer_full() {
        let mut g = GruLayer::new(2, 3, &mut init::rng(3));
        let x = seq(4, 2, 4);
        let c = seq(4, 3, 5);
        g.forward(&x);
        let dx = g.backward(&c);
        let eps = 1e-6;
        let analytic: Vec<Vec<f64>> = g.parameters().iter().map(|p| p.grad.data.clone()).collect();
        for (pi, grads) in analytic.iter().enumerate() {
            for idx in 0..grads.len() {
                let perturb = |e: f64| {
                    let mut g2 = g.clone();
                    g2.parameters()[pi].value.data[idx] += e;
                    loss(&g2.infer(&x), &c)
                };
                let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                assert!(
                    (num - grads[idx]).abs() < 1e-6,
                    "param {pi} idx {idx}: {num} vs {}",
                    grads[idx]
                );
            }
        }
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&g.infer(&xp), &c) - loss(&g.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn gradcheck_stacked_spot() {
        let mut g = Gru::new(2, 3, 2, &mut init::rng(6));
        let x = seq(3, 2, 7);
        let c = seq(3, 3, 8);
        g.forward(&x);
        let dx = g.backward(&c);
        let eps = 1e-6;
        for (li, pi, idx) in [(0usize, 0usize, 0usize), (0, 1, 2), (1, 0, 4), (1, 2, 1)] {
            let analytic = g.layers[li].parameters()[pi].grad.data[idx];
            let perturb = |e: f64| {
                let mut g2 = g.clone();
                g2.layers[li].parameters()[pi].value.data[idx] += e;
                loss(&g2.infer(&x), &c)
            };
            let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
            assert!((num - analytic).abs() < 1e-6, "layer {li} param {pi} idx {idx}");
        }
        for idx in [0, 3, 5] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&g.infer(&xp), &c) - loss(&g.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }
}
