//! Vanilla tanh RNN (the FASTFTᴿ ablation encoder of Fig. 8).

use crate::init;
use crate::matrix::{Matrix, Tensor};
use fastft_tabular::rngx::StdRng;

/// `h_t = tanh(x_t Wx + h_{t-1} Wh + b)`, stacked `n_layers` deep.
#[derive(Debug, Clone)]
pub struct Rnn {
    layers: Vec<RnnLayer>,
}

/// Forward cache: `(input, per-step hidden states)`.
type RnnCache = (Matrix, Vec<Vec<f64>>);

#[derive(Debug, Clone)]
struct RnnLayer {
    wx: Tensor, // in × H
    wh: Tensor, // H × H
    b: Tensor,  // 1 × H
    hidden: usize,
    cache: Option<RnnCache>,
}

impl RnnLayer {
    fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        RnnLayer {
            wx: Tensor::from_matrix(init::xavier(rng, in_dim, hidden)),
            // Orthogonal recurrent weights keep vanilla RNNs stable.
            wh: Tensor::from_matrix(init::orthogonal(rng, hidden, hidden, 1.0)),
            b: Tensor::zeros(1, hidden),
            hidden,
            cache: None,
        }
    }

    fn run(&self, x: &Matrix, keep: bool) -> (Matrix, Option<RnnCache>) {
        let t_len = x.rows;
        let h = self.hidden;
        let mut out = Matrix::zeros(t_len, h);
        let mut states = Vec::with_capacity(t_len);
        let mut h_prev = vec![0.0; h];
        for t in 0..t_len {
            let mut z = self.b.value.data.clone();
            for (k, &xv) in x.row(t).iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for (zv, &wv) in z.iter_mut().zip(self.wx.value.row(k)) {
                    *zv += xv * wv;
                }
            }
            for (k, &hv) in h_prev.iter().enumerate() {
                if hv == 0.0 {
                    continue;
                }
                for (zv, &wv) in z.iter_mut().zip(self.wh.value.row(k)) {
                    *zv += hv * wv;
                }
            }
            for zv in &mut z {
                *zv = zv.tanh();
            }
            out.row_mut(t).copy_from_slice(&z);
            if keep {
                states.push(z.clone());
            }
            h_prev = z;
        }
        (out, keep.then(|| (x.clone(), states)))
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let (out, cache) = self.run(x, true);
        self.cache = cache;
        out
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        self.run(x, false).0
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let (x, states) = self.cache.take().expect("forward before backward");
        let t_len = x.rows;
        let h = self.hidden;
        let mut dx = Matrix::zeros(t_len, x.cols);
        let mut dh_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let h_t = &states[t];
            let h_prev: &[f64] = if t == 0 { &[] } else { &states[t - 1] };
            let dz: Vec<f64> =
                (0..h).map(|j| (d_out[(t, j)] + dh_next[j]) * (1.0 - h_t[j] * h_t[j])).collect();
            for (k, &xv) in x.row(t).iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let g_row = &mut self.wx.grad.data[k * h..(k + 1) * h];
                for (gv, &dv) in g_row.iter_mut().zip(&dz) {
                    *gv += xv * dv;
                }
            }
            if t > 0 {
                for (k, &hv) in h_prev.iter().enumerate() {
                    if hv == 0.0 {
                        continue;
                    }
                    let g_row = &mut self.wh.grad.data[k * h..(k + 1) * h];
                    for (gv, &dv) in g_row.iter_mut().zip(&dz) {
                        *gv += hv * dv;
                    }
                }
            }
            for (gv, &dv) in self.b.grad.data.iter_mut().zip(&dz) {
                *gv += dv;
            }
            for (k, dxv) in dx.row_mut(t).iter_mut().enumerate() {
                *dxv = self.wx.value.row(k).iter().zip(&dz).map(|(a, b)| a * b).sum();
            }
            let mut dh_prev = vec![0.0; h];
            for (k, dhv) in dh_prev.iter_mut().enumerate() {
                *dhv = self.wh.value.row(k).iter().zip(&dz).map(|(a, b)| a * b).sum();
            }
            dh_next = dh_prev;
        }
        dx
    }

    fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    fn n_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }
}

impl Rnn {
    /// Stack of tanh RNN layers.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, rng: &mut StdRng) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(RnnLayer::new(in_dim, hidden, rng));
        for _ in 1..n_layers {
            layers.push(RnnLayer::new(hidden, hidden, rng));
        }
        Rnn { layers }
    }

    /// Hidden size of the final layer.
    pub fn hidden(&self) -> usize {
        self.layers.last().unwrap().hidden
    }

    /// Forward through the stack.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// Backward through the stack.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut d = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(RnnLayer::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(RnnLayer::n_params).sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn shapes_and_infer_parity() {
        let mut r = Rnn::new(3, 6, 2, &mut init::rng(1));
        let x = seq(5, 3, 2);
        let a = r.forward(&x);
        assert_eq!((a.rows, a.cols), (5, 6));
        let b = r.infer(&x);
        for (u, v) in a.data.iter().zip(&b.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn gradcheck_rnn() {
        let mut r = Rnn::new(2, 3, 1, &mut init::rng(3));
        let x = seq(4, 2, 4);
        let c = seq(4, 3, 5);
        r.forward(&x);
        let dx = r.backward(&c);
        let eps = 1e-6;
        // Full check of all parameters of the single layer, using the
        // gradients accumulated by the backward call above.
        let analytic: Vec<Vec<f64>> = r.parameters().iter().map(|p| p.grad.data.clone()).collect();
        for (pi, grads) in analytic.iter().enumerate() {
            for idx in 0..grads.len() {
                let perturb = |e: f64| {
                    let mut r2 = r.clone();
                    r2.parameters()[pi].value.data[idx] += e;
                    loss(&r2.infer(&x), &c)
                };
                let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                assert!((num - grads[idx]).abs() < 1e-6, "param {pi} idx {idx}");
            }
        }
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&r.infer(&xp), &c) - loss(&r.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }
}
