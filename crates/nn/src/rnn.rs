//! Vanilla tanh RNN (the FASTFTᴿ ablation encoder of Fig. 8).
//!
//! Fused like the LSTM/GRU: `Z = b ⊕ X Wx` is hoisted out of the time loop
//! as one GEMM, each step adds a single recurrent GEMM plus the tanh, and
//! scratch comes from a pooled [`NnWorkspace`]. Batched time-major lanes and
//! [`LayerState`] resume are supported for the prefix-cached scoring path.

use crate::init;
use crate::matrix::{Matrix, Tensor};
use crate::workspace::{LayerState, NnWorkspace};
use fastft_tabular::rngx::StdRng;

/// `h_t = tanh(x_t Wx + h_{t-1} Wh + b)`, stacked `n_layers` deep.
#[derive(Debug, Clone)]
pub struct Rnn {
    layers: Vec<RnnLayer>,
}

/// One tanh RNN layer.
#[derive(Debug, Clone)]
pub struct RnnLayer {
    /// Input-to-hidden weights (`in_dim × hidden`).
    pub wx: Tensor,
    /// Hidden-to-hidden weights (`hidden × hidden`).
    pub wh: Tensor,
    /// Bias (`1 × hidden`).
    pub b: Tensor,
    hidden: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Matrix,
    hiddens: Matrix, // T × H
}

impl RnnLayer {
    fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        RnnLayer {
            wx: Tensor::from_matrix(init::xavier(rng, in_dim, hidden)),
            // Orthogonal recurrent weights keep vanilla RNNs stable.
            wh: Tensor::from_matrix(init::orthogonal(rng, hidden, hidden, 1.0)),
            b: Tensor::zeros(1, hidden),
            hidden,
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn run(
        &self,
        x: &Matrix,
        batch: usize,
        init: Option<&[&LayerState]>,
        keep: bool,
        states_out: Option<&mut Vec<LayerState>>,
        ws: &mut NnWorkspace,
    ) -> (Matrix, Option<Cache>) {
        let h = self.hidden;
        let rows = x.rows;
        assert!(
            batch >= 1 && rows.is_multiple_of(batch),
            "rows {rows} not a multiple of batch {batch}"
        );
        let t_len = rows / batch;
        if keep {
            assert!(batch == 1 && init.is_none(), "training path is batch-of-one from t = 0");
        }
        // Input projection hoisted over the whole sequence: Z = b ⊕ X Wx.
        let mut out = ws.take_matrix(rows, h);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&self.b.value.data);
        }
        self.wx.value.addmm_into(&x.data, rows, &mut out.data);
        let mut h_prev = ws.take(batch * h);
        if let Some(states) = init {
            assert_eq!(states.len(), batch, "one init state per lane");
            for (bi, st) in states.iter().enumerate() {
                h_prev[bi * h..(bi + 1) * h].copy_from_slice(&st.h);
            }
        }
        for t in 0..t_len {
            let z_rows = &mut out.data[t * batch * h..(t + 1) * batch * h];
            self.wh.value.addmm_into(&h_prev, batch, z_rows);
            for zv in z_rows.iter_mut() {
                *zv = zv.tanh();
            }
            h_prev.copy_from_slice(z_rows);
        }
        if let Some(states) = states_out {
            for bi in 0..batch {
                states.push(LayerState { h: h_prev[bi * h..(bi + 1) * h].to_vec(), c: Vec::new() });
            }
        }
        ws.give(h_prev);
        // Pool-backed snapshots keep repeated train steps allocation-free.
        let cache = keep.then(|| Cache { x: ws.take_copy(x), hiddens: ws.take_copy(&out) });
        (out, cache)
    }

    fn forward(&mut self, x: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let (out, cache) = self.run(x, 1, None, true, None, ws);
        self.cache = cache;
        out
    }

    fn backward(&mut self, d_out: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let Cache { x, hiddens } = self.cache.take().expect("forward before backward");
        let t_len = x.rows;
        let h = self.hidden;
        let mut dz_all = ws.take_matrix(t_len, h);
        let mut dh_next = ws.take(h);
        for t in (0..t_len).rev() {
            let h_t = hiddens.row(t);
            let dz = &mut dz_all.data[t * h..(t + 1) * h];
            for j in 0..h {
                dz[j] = (d_out[(t, j)] + dh_next[j]) * (1.0 - h_t[j] * h_t[j]);
            }
            let dz = &dz_all.data[t * h..(t + 1) * h];
            for (k, dhv) in dh_next.iter_mut().enumerate() {
                *dhv = self.wh.value.row(k).iter().zip(dz).map(|(a, b)| a * b).sum();
            }
        }
        // Hoisted parameter gradients: dWx += Xᵀ dZ ; dWh += H[..T-1]ᵀ dZ[1..] ;
        // db += Σ_t dz_t ; dX = dZ Wxᵀ.
        x.add_matmul_tn(&dz_all, &mut self.wx.grad);
        for t in 1..t_len {
            let h_row = hiddens.row(t - 1);
            let dz = dz_all.row(t);
            for (k, &hv) in h_row.iter().enumerate() {
                let g_row = &mut self.wh.grad.data[k * h..(k + 1) * h];
                for (gv, &dv) in g_row.iter_mut().zip(dz) {
                    *gv += hv * dv;
                }
            }
        }
        for t in 0..t_len {
            for (gv, &dv) in self.b.grad.data.iter_mut().zip(dz_all.row(t)) {
                *gv += dv;
            }
        }
        let in_dim = x.cols;
        let mut dx = ws.take_matrix(t_len, in_dim);
        for t in 0..t_len {
            let dz = dz_all.row(t);
            let dx_row = &mut dx.data[t * in_dim..(t + 1) * in_dim];
            for (k, dxv) in dx_row.iter_mut().enumerate() {
                *dxv = self.wx.value.row(k).iter().zip(dz).map(|(a, b)| a * b).sum();
            }
        }
        ws.give(dh_next);
        ws.give_matrix(dz_all);
        ws.give_matrix(x);
        ws.give_matrix(hiddens);
        dx
    }

    fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    fn n_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }
}

impl Rnn {
    /// Stack of tanh RNN layers.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, rng: &mut StdRng) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(RnnLayer::new(in_dim, hidden, rng));
        for _ in 1..n_layers {
            layers.push(RnnLayer::new(hidden, hidden, rng));
        }
        Rnn { layers }
    }

    /// Hidden size of the final layer.
    pub fn hidden(&self) -> usize {
        self.layers.last().unwrap().hidden
    }

    /// Borrow the layer stack (read-only), e.g. for the unfused reference
    /// implementation in [`crate::reference`].
    pub fn layers(&self) -> &[RnnLayer] {
        &self.layers
    }

    /// Forward through the stack.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.forward_ws(x, &mut ws)
    }

    /// [`Rnn::forward`] drawing scratch from a shared workspace.
    pub fn forward_ws(&mut self, x: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let mut h: Option<Matrix> = None;
        for layer in &mut self.layers {
            let out = {
                let input = h.as_ref().unwrap_or(x);
                layer.forward(input, ws)
            };
            if let Some(prev) = h.take() {
                ws.give_matrix(prev);
            }
            h = Some(out);
        }
        h.expect("at least one layer")
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.infer_batch(x, 1, None, None, &mut ws)
    }

    /// Batched inference over time-major packed lanes with optional state
    /// resume; same conventions as [`crate::lstm::Lstm::infer_batch`].
    pub fn infer_batch(
        &self,
        x: &Matrix,
        batch: usize,
        init: Option<&[&[LayerState]]>,
        mut states_out: Option<&mut Vec<Vec<LayerState>>>,
        ws: &mut NnWorkspace,
    ) -> Matrix {
        let n_layers = self.layers.len();
        if let Some(init) = init {
            assert_eq!(init.len(), batch, "one init lane per batch row");
            for lane in init {
                assert_eq!(lane.len(), n_layers, "one init state per layer");
            }
        }
        if let Some(states) = states_out.as_deref_mut() {
            states.clear();
            states.resize_with(batch, || Vec::with_capacity(n_layers));
        }
        let mut h: Option<Matrix> = None;
        for (li, layer) in self.layers.iter().enumerate() {
            let init_states: Option<Vec<&LayerState>> =
                init.map(|lanes| lanes.iter().map(|lane| &lane[li]).collect());
            let mut layer_states: Option<Vec<LayerState>> =
                if states_out.is_some() { Some(Vec::with_capacity(batch)) } else { None };
            let out = {
                let input = h.as_ref().unwrap_or(x);
                layer.run(input, batch, init_states.as_deref(), false, layer_states.as_mut(), ws).0
            };
            if let Some(prev) = h.take() {
                ws.give_matrix(prev);
            }
            h = Some(out);
            if let (Some(acc), Some(ls)) = (states_out.as_deref_mut(), layer_states) {
                for (lane, st) in acc.iter_mut().zip(ls) {
                    lane.push(st);
                }
            }
        }
        h.expect("at least one layer")
    }

    /// Backward through the stack.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.backward_ws(d_out, &mut ws)
    }

    /// [`Rnn::backward`] drawing scratch from a shared workspace.
    pub fn backward_ws(&mut self, d_out: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let mut d: Option<Matrix> = None;
        for layer in self.layers.iter_mut().rev() {
            let grad = {
                let upstream = d.as_ref().unwrap_or(d_out);
                layer.backward(upstream, ws)
            };
            if let Some(prev) = d.take() {
                ws.give_matrix(prev);
            }
            d = Some(grad);
        }
        d.expect("at least one layer")
    }

    /// Trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(RnnLayer::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(RnnLayer::n_params).sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn shapes_and_infer_parity() {
        let mut r = Rnn::new(3, 6, 2, &mut init::rng(1));
        let x = seq(5, 3, 2);
        let a = r.forward(&x);
        assert_eq!((a.rows, a.cols), (5, 6));
        let b = r.infer(&x);
        for (u, v) in a.data.iter().zip(&b.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn resumed_inference_matches_full_sequence() {
        let r = Rnn::new(3, 4, 2, &mut init::rng(13));
        let x = seq(6, 3, 14);
        let mut ws = NnWorkspace::new();
        let full = r.infer_batch(&x, 1, None, None, &mut ws);
        let prefix = Matrix::from_vec(5, 3, x.data[..15].to_vec());
        let mut states = Vec::new();
        let _ = r.infer_batch(&prefix, 1, None, Some(&mut states), &mut ws);
        let last = Matrix::from_vec(1, 3, x.data[15..].to_vec());
        let init: Vec<&[LayerState]> = vec![&states[0]];
        let resumed = r.infer_batch(&last, 1, Some(&init), None, &mut ws);
        assert_eq!(resumed.row(0), full.row(5));
    }

    #[test]
    fn gradcheck_rnn() {
        let mut r = Rnn::new(2, 3, 1, &mut init::rng(3));
        let x = seq(4, 2, 4);
        let c = seq(4, 3, 5);
        r.forward(&x);
        let dx = r.backward(&c);
        let eps = 1e-6;
        // Full check of all parameters of the single layer, using the
        // gradients accumulated by the backward call above.
        let analytic: Vec<Vec<f64>> = r.parameters().iter().map(|p| p.grad.data.clone()).collect();
        for (pi, grads) in analytic.iter().enumerate() {
            for idx in 0..grads.len() {
                let perturb = |e: f64| {
                    let mut r2 = r.clone();
                    r2.parameters()[pi].value.data[idx] += e;
                    loss(&r2.infer(&x), &c)
                };
                let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                assert!((num - grads[idx]).abs() < 1e-6, "param {pi} idx {idx}");
            }
        }
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&r.infer(&xp), &c) - loss(&r.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }
}
