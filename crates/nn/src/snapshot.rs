//! Weight + optimizer snapshots for checkpointing and rollback.
//!
//! Every network in the workspace exposes `parameters() -> Vec<&mut Tensor>`
//! with a stable ordering (see [`crate::optim`]). [`NetState`] captures the
//! parameter values in that order together with the paired [`Adam`] state,
//! which is enough to (a) persist a network to a checkpoint and (b) roll a
//! network back to its last good weights after a diverged training step.
//! Values are copied verbatim (`f64` by `f64`), so a capture/restore
//! round-trip is bitwise exact.

use crate::matrix::Tensor;
use crate::optim::Adam;
use fastft_tabular::persist::{Persist, PersistResult, Reader, Writer};

/// A flat, order-preserving snapshot of one network's mutable state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetState {
    /// Parameter tensor values, in the network's stable `parameters()` order.
    pub params: Vec<Vec<f64>>,
    /// Adam step count.
    pub opt_t: u64,
    /// Adam first moments per parameter (empty if the optimizer never
    /// stepped).
    pub opt_m: Vec<Vec<f64>>,
    /// Adam second moments per parameter (same shape as `opt_m`).
    pub opt_v: Vec<Vec<f64>>,
}

impl NetState {
    /// Whether every captured parameter value is finite.
    pub fn is_finite(&self) -> bool {
        self.params.iter().all(|p| p.iter().all(|v| v.is_finite()))
    }
}

/// Capture `params` (a network's stable-order parameter view) and `opt`.
pub fn capture(params: &[&mut Tensor], opt: &Adam) -> NetState {
    let (opt_t, moments) = opt.snapshot();
    let (opt_m, opt_v) = moments.into_iter().unzip();
    NetState { params: params.iter().map(|p| p.value.data.clone()).collect(), opt_t, opt_m, opt_v }
}

/// Restore a snapshot into `params`/`opt`. Fails (without partial writes)
/// if the snapshot's parameter count or any tensor length disagrees with
/// the live network.
pub fn restore(params: Vec<&mut Tensor>, opt: &mut Adam, state: &NetState) -> Result<(), String> {
    if params.len() != state.params.len() {
        return Err(format!(
            "snapshot has {} parameter tensors, network has {}",
            state.params.len(),
            params.len()
        ));
    }
    for (i, (p, s)) in params.iter().zip(&state.params).enumerate() {
        if p.len() != s.len() {
            return Err(format!(
                "parameter {i}: snapshot len {} != network len {}",
                s.len(),
                p.len()
            ));
        }
    }
    if !state.opt_m.is_empty()
        && (state.opt_m.len() != params.len() || state.opt_v.len() != params.len())
    {
        return Err("optimizer moment count disagrees with parameter count".into());
    }
    for (p, s) in params.into_iter().zip(&state.params) {
        p.value.data.copy_from_slice(s);
        p.zero_grad();
    }
    let moments = state.opt_m.iter().cloned().zip(state.opt_v.iter().cloned()).collect();
    opt.restore(state.opt_t, moments);
    Ok(())
}

/// Whether every live parameter value in `params` is finite. Used as the
/// post-training guard: a non-finite weight means the last update diverged
/// and the caller should roll back to its pre-training [`NetState`].
pub fn params_finite(params: &[&mut Tensor]) -> bool {
    params.iter().all(|p| p.value.data.iter().all(|v| v.is_finite()))
}

impl Persist for NetState {
    fn persist(&self, w: &mut Writer) {
        self.params.persist(w);
        self.opt_t.persist(w);
        self.opt_m.persist(w);
        self.opt_v.persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(NetState {
            params: Persist::restore(r)?,
            opt_t: Persist::restore(r)?,
            opt_m: Persist::restore(r)?,
            opt_v: Persist::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::mlp::Mlp;

    #[test]
    fn capture_restore_round_trips_bitwise() {
        let mut net = Mlp::new(&[3, 4, 1], 7);
        let mut opt = Adam::new(0.05);
        // Step once so the optimizer has moments.
        let y = net.forward(&Matrix::row_vector(vec![1.0, -2.0, 0.5]));
        net.backward(&Matrix::row_vector(vec![2.0 * (y.data[0] - 1.0)]));
        opt.step(net.parameters());
        let snap = capture(&net.parameters(), &opt);
        assert!(snap.is_finite());
        let before: Vec<Vec<f64>> = net.parameters().iter().map(|p| p.value.data.clone()).collect();

        // Diverge the network, then restore.
        for _ in 0..5 {
            let y = net.forward(&Matrix::row_vector(vec![1.0, -2.0, 0.5]));
            net.backward(&Matrix::row_vector(vec![2.0 * (y.data[0] - 1.0)]));
            opt.step(net.parameters());
        }
        restore(net.parameters(), &mut opt, &snap).unwrap();
        let after: Vec<Vec<f64>> = net.parameters().iter().map(|p| p.value.data.clone()).collect();
        assert_eq!(before, after);
        let again = capture(&net.parameters(), &opt);
        assert_eq!(snap, again);
    }

    #[test]
    fn restore_before_first_step_keeps_lazy_optimizer() {
        let mut net = Mlp::new(&[2, 3, 1], 1);
        let mut opt = Adam::new(0.01);
        let snap = capture(&net.parameters(), &opt);
        assert_eq!(snap.opt_t, 0);
        assert!(snap.opt_m.is_empty());
        restore(net.parameters(), &mut opt, &snap).unwrap();
        // The optimizer must still lazily initialise and step fine.
        let y = net.forward(&Matrix::row_vector(vec![1.0, 0.0]));
        net.backward(&Matrix::row_vector(vec![y.data[0]]));
        opt.step(net.parameters());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let mut a = Mlp::new(&[2, 3, 1], 1);
        let mut b = Mlp::new(&[2, 4, 1], 1);
        let opt_a = Adam::new(0.01);
        let mut opt_b = Adam::new(0.01);
        let snap = capture(&a.parameters(), &opt_a);
        assert!(restore(b.parameters(), &mut opt_b, &snap).is_err());
    }

    #[test]
    fn params_finite_detects_nan() {
        let mut net = Mlp::new(&[2, 3, 1], 1);
        assert!(params_finite(&net.parameters()));
        net.parameters()[0].value.data[0] = f64::NAN;
        assert!(!params_finite(&net.parameters()));
    }
}
