//! Multi-layer perceptron built from [`Dense`] layers — the policy, value
//! and Q networks of the RL stack.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::init;
use crate::matrix::{Matrix, Tensor};

/// A feed-forward stack: hidden layers with ReLU, linear output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build from a dims chain `[in, h1, ..., out]` (at least 2 entries).
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = init::rng(seed);
        let n = dims.len() - 1;
        let layers = (0..n)
            .map(|i| {
                let act = if i + 1 == n { Activation::Linear } else { Activation::Relu };
                Dense::new(dims[i], dims[i + 1], act, &mut rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// Forward with caches (training path).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference on a single flat input vector.
    pub fn infer_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut h = Matrix::row_vector(x.to_vec());
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h.data
    }

    /// Batched inference on a `B × in_dim` matrix. Each output row is
    /// bitwise-identical to [`Mlp::infer_vec`] on the corresponding input
    /// row, so callers can batch candidate scoring without changing results.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].infer(x);
        for layer in &self.layers[1..] {
            h = layer.infer(&h);
        }
        h
    }

    /// Backward; returns `dX`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut d = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(Dense::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Dense::n_params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn shapes() {
        let mut m = Mlp::new(&[4, 8, 3], 1);
        let x = Matrix::zeros(2, 4);
        let y = m.forward(&x);
        assert_eq!((y.rows, y.cols), (2, 3));
        assert_eq!(m.in_dim(), 4);
        assert_eq!(m.out_dim(), 3);
    }

    #[test]
    fn learns_xor() {
        let data = [([0.0, 0.0], 0.0), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
        let mut m = Mlp::new(&[2, 16, 1], 7);
        let mut opt = Adam::new(0.02);
        for _ in 0..800 {
            for (x, t) in &data {
                let y = m.forward(&Matrix::row_vector(x.to_vec()));
                let err = y.data[0] - t;
                m.backward(&Matrix::row_vector(vec![2.0 * err]));
                opt.step(m.parameters());
            }
        }
        for (x, t) in &data {
            let y = m.infer_vec(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut m = Mlp::new(&[3, 5, 2], 9);
        let mut rng = init::rng(10);
        let x: Vec<f64> = (0..3).map(|_| rng.gen::<f64>()).collect();
        let a = m.forward(&Matrix::row_vector(x.clone()));
        let b = m.infer_vec(&x);
        for (u, v) in a.data.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_infer_matches_per_row_infer_vec() {
        let m = Mlp::new(&[3, 5, 2], 11);
        let mut rng = init::rng(12);
        let rows = 4;
        let data: Vec<f64> = (0..rows * 3).map(|_| rng.gen::<f64>() - 0.5).collect();
        let batch = Matrix::from_vec(rows, 3, data.clone());
        let y = m.infer(&batch);
        for r in 0..rows {
            let single = m.infer_vec(&data[r * 3..(r + 1) * 3]);
            assert_eq!(y.row(r), &single[..], "row {r}");
        }
    }

    #[test]
    #[should_panic]
    fn single_dim_rejected() {
        let _ = Mlp::new(&[4], 0);
    }
}
