//! Optimizers operating on ordered parameter lists.
//!
//! Every network exposes `parameters() -> Vec<&mut Tensor>` with a stable
//! ordering; optimizers keep per-parameter state indexed by that order.

use crate::matrix::Tensor;

/// Plain SGD with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Global-norm clip threshold (`None` = no clipping).
    pub clip: Option<f64>,
}

impl Sgd {
    /// Create with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        Sgd { lr, clip: None }
    }

    /// Apply one update and zero the gradients.
    pub fn step(&mut self, mut params: Vec<&mut Tensor>) {
        let scale = clip_scale(&params, self.clip);
        for p in &mut params {
            for (v, g) in p.value.data.iter_mut().zip(&p.grad.data) {
                *v -= self.lr * g * scale;
            }
            p.zero_grad();
        }
    }
}

/// Per-parameter Adam moment vectors `(m, v)`, in parameter-list order
/// (empty before the first step).
pub type AdamMoments = Vec<(Vec<f64>, Vec<f64>)>;

/// Adam (Kingma & Ba) with bias correction and optional global-norm clip.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Global-norm clip threshold (`None` = no clipping).
    pub clip: Option<f64>,
    t: u64,
    state: AdamMoments, // (m, v) per parameter tensor
}

impl Adam {
    /// Create with learning rate `lr` and standard betas.
    pub fn new(lr: f64) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip: Some(5.0), t: 0, state: Vec::new() }
    }

    /// Apply one update and zero the gradients.
    ///
    /// # Panics
    /// Panics if the parameter list shape changes between calls.
    pub fn step(&mut self, mut params: Vec<&mut Tensor>) {
        if self.state.is_empty() {
            self.state = params.iter().map(|p| (vec![0.0; p.len()], vec![0.0; p.len()])).collect();
        }
        assert_eq!(self.state.len(), params.len(), "parameter list changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let scale = clip_scale(&params, self.clip);
        for (p, (m, v)) in params.iter_mut().zip(&mut self.state) {
            assert_eq!(p.len(), m.len(), "parameter shape changed");
            for i in 0..p.len() {
                let g = p.grad.data[i] * scale;
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                p.value.data[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    /// Snapshot the optimizer's mutable state: the step count and the
    /// per-parameter `(m, v)` moment vectors (empty before the first step).
    pub fn snapshot(&self) -> (u64, AdamMoments) {
        (self.t, self.state.clone())
    }

    /// Restore a state captured with [`Adam::snapshot`]. The moment list may
    /// be empty (optimizer never stepped); otherwise its shape must match
    /// the parameter list passed to future [`Adam::step`] calls.
    pub fn restore(&mut self, t: u64, state: AdamMoments) {
        self.t = t;
        self.state = state;
    }
}

fn clip_scale(params: &[&mut Tensor], clip: Option<f64>) -> f64 {
    match clip {
        None => 1.0,
        Some(limit) => {
            let norm: f64 = params
                .iter()
                .map(|p| p.grad.data.iter().map(|g| g * g).sum::<f64>())
                .sum::<f64>()
                .sqrt();
            if norm > limit {
                limit / norm
            } else {
                1.0
            }
        }
    }
}

/// Zero the gradients of a parameter list without updating.
pub fn zero_grads(params: Vec<&mut Tensor>) {
    for p in params {
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn quadratic_grad(t: &mut Tensor) {
        // L = Σ x², dL/dx = 2x
        for (g, v) in t.grad.data.iter_mut().zip(&t.value.data) {
            *g = 2.0 * v;
        }
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut t = Tensor::from_matrix(Matrix::row_vector(vec![5.0, -3.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_grad(&mut t);
            opt.step(vec![&mut t]);
        }
        assert!(t.value.data.iter().all(|v| v.abs() < 1e-4), "{:?}", t.value.data);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut t = Tensor::from_matrix(Matrix::row_vector(vec![5.0, -3.0]));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            quadratic_grad(&mut t);
            opt.step(vec![&mut t]);
        }
        assert!(t.value.data.iter().all(|v| v.abs() < 1e-2), "{:?}", t.value.data);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut t = Tensor::from_matrix(Matrix::row_vector(vec![1.0]));
        t.grad.data[0] = 2.0;
        Sgd::new(0.1).step(vec![&mut t]);
        assert_eq!(t.grad.data[0], 0.0);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut t = Tensor::from_matrix(Matrix::row_vector(vec![0.0]));
        t.grad.data[0] = 1e9;
        let mut opt = Sgd::new(1.0);
        opt.clip = Some(1.0);
        opt.step(vec![&mut t]);
        assert!((t.value.data[0].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn adam_rejects_changed_param_count() {
        let mut a = Tensor::zeros(1, 1);
        let mut b = Tensor::zeros(1, 1);
        let mut opt = Adam::new(0.1);
        opt.step(vec![&mut a]);
        opt.step(vec![&mut a, &mut b]);
    }
}
