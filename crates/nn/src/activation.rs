//! Elementwise activations with cached-output backward passes.

use crate::matrix::Matrix;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no-op).
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply elementwise, returning a new matrix.
    pub fn forward(self, x: &Matrix) -> Matrix {
        let data = x.data.iter().map(|&v| self.apply(v)).collect();
        Matrix { rows: x.rows, cols: x.cols, data }
    }

    /// Scalar application.
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Linear => v,
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
            Activation::Sigmoid => sigmoid(v),
        }
    }

    /// Gradient through the activation given the **forward output** `y` and
    /// upstream gradient `dy`. (All four functions have output-expressible
    /// derivatives, avoiding an input cache.)
    pub fn backward(self, y: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!((y.rows, y.cols), (dy.rows, dy.cols));
        let data = y
            .data
            .iter()
            .zip(&dy.data)
            .map(|(&yv, &dv)| dv * self.derivative_from_output(yv))
            .collect();
        Matrix { rows: y.rows, cols: y.cols, data }
    }

    /// `f'(x)` expressed through `y = f(x)`.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(v: f64) -> f64 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// In-place softmax over a slice.
pub fn softmax_inplace(xs: &mut [f64]) {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Backward through a softmax row: given softmax output `p` and upstream
/// gradient `dp`, returns the gradient w.r.t. the logits.
pub fn softmax_backward_row(p: &[f64], dp: &[f64]) -> Vec<f64> {
    let dot: f64 = p.iter().zip(dp).map(|(a, b)| a * b).sum();
    p.iter().zip(dp).map(|(&pi, &di)| pi * (di - dot)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_extremes_stable() {
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relu_forward_backward() {
        let x = Matrix::row_vector(vec![-1.0, 0.0, 2.0]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0]);
        let dy = Matrix::row_vector(vec![1.0, 1.0, 1.0]);
        let dx = Activation::Relu.backward(&y, &dy);
        assert_eq!(dx.data, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_derivative_via_finite_difference() {
        let x: f64 = 0.37;
        let eps = 1e-6;
        let numeric = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
        let analytic = Activation::Tanh.derivative_from_output(x.tanh());
        assert!((numeric - analytic).abs() < 1e-8);
    }

    #[test]
    fn sigmoid_derivative_via_finite_difference() {
        let x = -0.8;
        let eps = 1e-6;
        let numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
        let analytic = Activation::Sigmoid.derivative_from_output(sigmoid(x));
        assert!((numeric - analytic).abs() < 1e-8);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = [0.2, -0.5, 1.3, 0.0];
        let dp = [0.7, -0.3, 0.1, 0.5];
        let mut p = logits.to_vec();
        softmax_inplace(&mut p);
        let analytic = softmax_backward_row(&p, &dp);
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut plus = logits.to_vec();
            plus[i] += eps;
            softmax_inplace(&mut plus);
            let mut minus = logits.to_vec();
            minus[i] -= eps;
            softmax_inplace(&mut minus);
            let f_plus: f64 = plus.iter().zip(&dp).map(|(a, b)| a * b).sum();
            let f_minus: f64 = minus.iter().zip(&dp).map(|(a, b)| a * b).sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!((numeric - analytic[i]).abs() < 1e-6, "i={i}: {numeric} vs {}", analytic[i]);
        }
    }
}
