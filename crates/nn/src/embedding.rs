//! Token embedding table for transformation-sequence encoders.

use crate::init;
use crate::matrix::{Matrix, Tensor};
use fastft_tabular::rngx::StdRng;

/// Lookup table mapping token ids to dense rows (`vocab × dim`).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table itself.
    pub table: Tensor,
    cache_tokens: Vec<usize>,
}

impl Embedding {
    /// Xavier-initialised table.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            table: Tensor::from_matrix(init::xavier(rng, vocab, dim)),
            cache_tokens: Vec::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols
    }

    /// Embed a token sequence into a `T × dim` matrix; caches the tokens for
    /// the backward pass.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary ids.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        let out = self.infer(tokens);
        self.cache_tokens = tokens.to_vec();
        out
    }

    /// Embed without caching.
    pub fn infer(&self, tokens: &[usize]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(tokens.len(), dim);
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab(), "token {tok} out of vocab {}", self.vocab());
            out.row_mut(t).copy_from_slice(self.table.value.row(tok));
        }
        out
    }

    /// Embed into a caller-provided `T × dim` matrix (no allocation).
    ///
    /// # Panics
    /// Panics on out-of-vocabulary ids or a shape mismatch.
    pub fn infer_into(&self, tokens: &[usize], out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (tokens.len(), self.dim()), "infer_into shape");
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab(), "token {tok} out of vocab {}", self.vocab());
            out.row_mut(t).copy_from_slice(self.table.value.row(tok));
        }
    }

    /// Embed equally-long sequences time-major into a `(T·lanes) × dim`
    /// matrix: row `t·lanes + lane` holds timestep `t` of `lane`. This is the
    /// packing the batched recurrent kernels consume.
    pub fn infer_batch_into(&self, seqs: &[&[usize]], out: &mut Matrix) {
        let lanes = seqs.len();
        assert!(lanes > 0, "empty batch");
        let t_len = seqs[0].len();
        for s in seqs {
            assert_eq!(s.len(), t_len, "lanes must share one length per bucket");
        }
        assert_eq!((out.rows, out.cols), (t_len * lanes, self.dim()), "infer_batch_into shape");
        for (lane, seq) in seqs.iter().enumerate() {
            for (t, &tok) in seq.iter().enumerate() {
                assert!(tok < self.vocab(), "token {tok} out of vocab {}", self.vocab());
                out.row_mut(t * lanes + lane).copy_from_slice(self.table.value.row(tok));
            }
        }
    }

    /// Scatter-add the upstream gradient onto the used table rows.
    pub fn backward(&mut self, d_out: &Matrix) {
        assert_eq!(d_out.rows, self.cache_tokens.len(), "backward before forward");
        let dim = self.dim();
        for (t, &tok) in self.cache_tokens.iter().enumerate() {
            let g_row = &mut self.table.grad.data[tok * dim..(tok + 1) * dim];
            for (g, d) in g_row.iter_mut().zip(d_out.row(t)) {
                *g += d;
            }
        }
    }

    /// Trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_rows() {
        let mut e = Embedding::new(5, 3, &mut init::rng(1));
        let x = e.forward(&[2, 0, 2]);
        assert_eq!(x.rows, 3);
        assert_eq!(x.row(0), e.table.value.row(2));
        assert_eq!(x.row(0), x.row(2));
    }

    #[test]
    fn backward_scatters_and_accumulates() {
        let mut e = Embedding::new(4, 2, &mut init::rng(2));
        e.forward(&[1, 1, 3]);
        let d = Matrix::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 5.0, 6.0]);
        e.backward(&d);
        assert_eq!(e.table.grad.row(1), &[11.0, 22.0]); // two uses of token 1
        assert_eq!(e.table.grad.row(3), &[5.0, 6.0]);
        assert_eq!(e.table.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn infer_into_matches_infer() {
        let e = Embedding::new(5, 3, &mut init::rng(4));
        let tokens = [4, 1, 0, 1];
        let mut out = Matrix::zeros(4, 3);
        e.infer_into(&tokens, &mut out);
        assert_eq!(out, e.infer(&tokens));
    }

    #[test]
    fn infer_batch_into_packs_time_major() {
        let e = Embedding::new(5, 3, &mut init::rng(5));
        let a = [1usize, 2, 3];
        let b = [4usize, 0, 1];
        let mut out = Matrix::zeros(6, 3);
        e.infer_batch_into(&[&a, &b], &mut out);
        for t in 0..3 {
            assert_eq!(out.row(t * 2), e.table.value.row(a[t]));
            assert_eq!(out.row(t * 2 + 1), e.table.value.row(b[t]));
        }
    }

    #[test]
    #[should_panic]
    fn oov_panics() {
        let mut e = Embedding::new(3, 2, &mut init::rng(3));
        e.forward(&[7]);
    }
}
