//! Single- and stacked-layer LSTM with full backpropagation through time.
//!
//! The kernels are *fused*: the per-gate weights live in single concatenated
//! tensors (`in_dim × 4·hidden`, gate layout `[i | f | g | o]`), the input
//! projection `Z = b ⊕ X Wx` is hoisted out of the time loop as one GEMM for
//! the whole sequence, and each timestep then costs a single recurrent GEMM
//! (`h_prev Wh`) plus the scalar gate math. Forward supports time-major
//! batched lanes and resuming from a saved [`LayerState`], which is what the
//! batched/prefix-cached scoring paths in `fastft-core` build on. All scratch
//! comes from a pooled [`NnWorkspace`], so steady-state calls don't allocate.

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::{Matrix, Tensor};
use crate::workspace::{LayerState, NnWorkspace};
use fastft_tabular::rngx::StdRng;

/// One LSTM layer.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    /// Input-to-gates weights (`in_dim × 4·hidden`).
    pub wx: Tensor,
    /// Hidden-to-gates weights (`hidden × 4·hidden`).
    pub wh: Tensor,
    /// Gate bias (`1 × 4·hidden`).
    pub b: Tensor,
    hidden: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Matrix,       // T × in_dim
    gates: Matrix,   // T × 4H, activated [i f g o]
    cells: Matrix,   // T × H
    hiddens: Matrix, // T × H
}

impl LstmLayer {
    /// Xavier-initialised layer with forget-gate bias 1 (standard trick for
    /// gradient flow on short sequences).
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Tensor::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b.value.data[j] = 1.0;
        }
        LstmLayer {
            wx: Tensor::from_matrix(init::xavier(rng, in_dim, 4 * hidden)),
            wh: Tensor::from_matrix(init::xavier(rng, hidden, 4 * hidden)),
            b,
            hidden,
            cache: None,
        }
    }

    /// Orthogonally-initialised variant (RND target networks).
    pub fn new_orthogonal(in_dim: usize, hidden: usize, gain: f64, rng: &mut StdRng) -> Self {
        LstmLayer {
            wx: Tensor::from_matrix(init::orthogonal(rng, in_dim, 4 * hidden, gain)),
            wh: Tensor::from_matrix(init::orthogonal(rng, hidden, 4 * hidden, gain)),
            b: Tensor::zeros(1, 4 * hidden),
            hidden,
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Run the layer over a `T × in_dim` sequence, returning the `T × hidden`
    /// hidden-state sequence and caching everything needed for
    /// [`LstmLayer::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.forward_ws(x, &mut ws)
    }

    /// [`LstmLayer::forward`] drawing scratch from a shared workspace.
    pub fn forward_ws(&mut self, x: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let (out, cache) = self.run(x, 1, None, true, None, ws);
        self.cache = cache;
        out
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.run(x, 1, None, false, None, &mut ws).0
    }

    /// Fused forward over a time-major `(T·batch) × in_dim` input (row
    /// `t·batch + lane` is timestep `t` of `lane`). `init` resumes each lane
    /// from a saved state; `states_out` receives each lane's final state.
    /// The training path (`keep`) is batch-of-one from t = 0.
    fn run(
        &self,
        x: &Matrix,
        batch: usize,
        init: Option<&[&LayerState]>,
        keep: bool,
        states_out: Option<&mut Vec<LayerState>>,
        ws: &mut NnWorkspace,
    ) -> (Matrix, Option<Cache>) {
        let h = self.hidden;
        let g = 4 * h;
        let rows = x.rows;
        assert!(
            batch >= 1 && rows.is_multiple_of(batch),
            "rows {rows} not a multiple of batch {batch}"
        );
        let t_len = rows / batch;
        if keep {
            assert!(batch == 1 && init.is_none(), "training path is batch-of-one from t = 0");
        }
        // Input projection hoisted over the whole sequence: Z = b ⊕ X Wx.
        let mut z = ws.take_matrix(rows, g);
        for r in 0..rows {
            z.row_mut(r).copy_from_slice(&self.b.value.data);
        }
        self.wx.value.addmm_into(&x.data, rows, &mut z.data);
        let mut h_prev = ws.take(batch * h);
        let mut c_prev = ws.take(batch * h);
        if let Some(states) = init {
            assert_eq!(states.len(), batch, "one init state per lane");
            for (bi, st) in states.iter().enumerate() {
                h_prev[bi * h..(bi + 1) * h].copy_from_slice(&st.h);
                c_prev[bi * h..(bi + 1) * h].copy_from_slice(&st.c);
            }
        }
        let mut out = ws.take_matrix(rows, h);
        let mut cells = if keep { Some(ws.take_matrix(t_len, h)) } else { None };
        for t in 0..t_len {
            // Recurrent GEMM for this step's `batch` rows, then gate math.
            let z_rows = &mut z.data[t * batch * g..(t + 1) * batch * g];
            self.wh.value.addmm_into(&h_prev, batch, z_rows);
            for bi in 0..batch {
                let zr = &mut z_rows[bi * g..(bi + 1) * g];
                let hp = &mut h_prev[bi * h..(bi + 1) * h];
                let cp = &mut c_prev[bi * h..(bi + 1) * h];
                for j in 0..h {
                    let i = sigmoid(zr[j]);
                    let f = sigmoid(zr[h + j]);
                    let gg = zr[2 * h + j].tanh();
                    let o = sigmoid(zr[3 * h + j]);
                    zr[j] = i;
                    zr[h + j] = f;
                    zr[2 * h + j] = gg;
                    zr[3 * h + j] = o;
                    let c = f * cp[j] + i * gg;
                    cp[j] = c;
                    hp[j] = o * c.tanh();
                }
                out.row_mut(t * batch + bi).copy_from_slice(&h_prev[bi * h..(bi + 1) * h]);
            }
            if let Some(cells) = cells.as_mut() {
                cells.row_mut(t).copy_from_slice(&c_prev[..h]);
            }
        }
        if let Some(states) = states_out {
            for bi in 0..batch {
                states.push(LayerState {
                    h: h_prev[bi * h..(bi + 1) * h].to_vec(),
                    c: c_prev[bi * h..(bi + 1) * h].to_vec(),
                });
            }
        }
        ws.give(h_prev);
        ws.give(c_prev);
        let cache = if keep {
            // Cache snapshots come from the pool too, so repeated train steps
            // recycle the same buffers instead of growing the pool.
            let xc = ws.take_copy(x);
            let hc = ws.take_copy(&out);
            Some(Cache { x: xc, gates: z, cells: cells.unwrap(), hiddens: hc })
        } else {
            ws.give_matrix(z);
            None
        };
        (out, cache)
    }

    /// BPTT given the gradient w.r.t. the full hidden sequence (`T × hidden`).
    /// Accumulates parameter gradients and returns `dX` (`T × in_dim`).
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.backward_ws(d_out, &mut ws)
    }

    /// [`LstmLayer::backward`] drawing scratch from a shared workspace. The
    /// per-step loop only fills `dz_t` rows and propagates `dh/dc`; the
    /// parameter gradients are hoisted into whole-sequence GEMMs afterwards
    /// (`dWx += Xᵀ dZ`, `dWh += H[..T-1]ᵀ dZ[1..]`, `db += Σ_t dz_t`,
    /// `dX = dZ Wxᵀ`).
    pub fn backward_ws(&mut self, d_out: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let t_len = cache.x.rows;
        assert_eq!(d_out.rows, t_len);
        let h = self.hidden;
        let g = 4 * h;
        let mut dz_all = ws.take_matrix(t_len, g);
        let mut dh_next = ws.take(h);
        let mut dc_next = ws.take(h);
        for t in (0..t_len).rev() {
            let gates = cache.gates.row(t);
            let c_t = cache.cells.row(t);
            let dz = &mut dz_all.data[t * g..(t + 1) * g];
            for j in 0..h {
                let dh = d_out[(t, j)] + dh_next[j];
                let i = gates[j];
                let f = gates[h + j];
                let gg = gates[2 * h + j];
                let o = gates[3 * h + j];
                let tc = c_t[j].tanh();
                let d_o = dh * tc;
                let dc = dh * o * (1.0 - tc * tc) + dc_next[j];
                let d_i = dc * gg;
                let d_g = dc * i;
                let d_f = dc * if t == 0 { 0.0 } else { cache.cells[(t - 1, j)] };
                dc_next[j] = dc * f;
                dz[j] = d_i * i * (1.0 - i);
                dz[h + j] = d_f * f * (1.0 - f);
                dz[2 * h + j] = d_g * (1.0 - gg * gg);
                dz[3 * h + j] = d_o * o * (1.0 - o);
            }
            // dh_prev = dz Whᵀ (must stay in the loop — feeds step t-1).
            let dz = &dz_all.data[t * g..(t + 1) * g];
            for (k, dhv) in dh_next.iter_mut().enumerate() {
                *dhv = self.wh.value.row(k).iter().zip(dz).map(|(a, b)| a * b).sum();
            }
        }
        cache.x.add_matmul_tn(&dz_all, &mut self.wx.grad);
        for t in 1..t_len {
            let h_row = cache.hiddens.row(t - 1);
            let dz = dz_all.row(t);
            for (k, &hv) in h_row.iter().enumerate() {
                let g_row = &mut self.wh.grad.data[k * g..(k + 1) * g];
                for (gv, &dv) in g_row.iter_mut().zip(dz) {
                    *gv += hv * dv;
                }
            }
        }
        for t in 0..t_len {
            for (gv, &dv) in self.b.grad.data.iter_mut().zip(dz_all.row(t)) {
                *gv += dv;
            }
        }
        let in_dim = cache.x.cols;
        let mut dx = ws.take_matrix(t_len, in_dim);
        for t in 0..t_len {
            let dz = dz_all.row(t);
            let dx_row = &mut dx.data[t * in_dim..(t + 1) * in_dim];
            for (k, dxv) in dx_row.iter_mut().enumerate() {
                *dxv = self.wx.value.row(k).iter().zip(dz).map(|(a, b)| a * b).sum();
            }
        }
        ws.give(dh_next);
        ws.give(dc_next);
        ws.give_matrix(dz_all);
        ws.give_matrix(cache.x);
        ws.give_matrix(cache.gates);
        ws.give_matrix(cache.cells);
        ws.give_matrix(cache.hiddens);
        dx
    }

    /// Trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }
}

/// A stack of LSTM layers (the paper uses 2).
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
}

impl Lstm {
    /// Stack `n_layers` LSTM layers; the first maps `in_dim → hidden`, the
    /// rest `hidden → hidden`.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, rng: &mut StdRng) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(LstmLayer::new(in_dim, hidden, rng));
        for _ in 1..n_layers {
            layers.push(LstmLayer::new(hidden, hidden, rng));
        }
        Lstm { layers }
    }

    /// Orthogonally-initialised stack (RND target network).
    pub fn new_orthogonal(
        in_dim: usize,
        hidden: usize,
        n_layers: usize,
        gain: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(LstmLayer::new_orthogonal(in_dim, hidden, gain, rng));
        for _ in 1..n_layers {
            layers.push(LstmLayer::new_orthogonal(hidden, hidden, gain, rng));
        }
        Lstm { layers }
    }

    /// Hidden size of the final layer.
    pub fn hidden(&self) -> usize {
        self.layers.last().unwrap().hidden()
    }

    /// Borrow the layer stack (read-only), e.g. for the unfused reference
    /// implementation in [`crate::reference`].
    pub fn layers(&self) -> &[LstmLayer] {
        &self.layers
    }

    /// Forward through the stack (`T × in_dim` → `T × hidden`).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.forward_ws(x, &mut ws)
    }

    /// [`Lstm::forward`] drawing scratch from a shared workspace.
    pub fn forward_ws(&mut self, x: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let mut h: Option<Matrix> = None;
        for layer in &mut self.layers {
            let out = {
                let input = h.as_ref().unwrap_or(x);
                layer.forward_ws(input, ws)
            };
            if let Some(prev) = h.take() {
                ws.give_matrix(prev);
            }
            h = Some(out);
        }
        h.expect("at least one layer")
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.infer_batch(x, 1, None, None, &mut ws)
    }

    /// Batched inference over a time-major `(T·batch) × in_dim` packed input
    /// (row `t·batch + lane` is timestep `t` of `lane`). `init` optionally
    /// resumes each lane from per-layer [`LayerState`]s (outer index = lane,
    /// inner = layer); `states_out`, when present, is filled with each lane's
    /// final per-layer states so callers can snapshot and later resume.
    pub fn infer_batch(
        &self,
        x: &Matrix,
        batch: usize,
        init: Option<&[&[LayerState]]>,
        mut states_out: Option<&mut Vec<Vec<LayerState>>>,
        ws: &mut NnWorkspace,
    ) -> Matrix {
        let n_layers = self.layers.len();
        if let Some(init) = init {
            assert_eq!(init.len(), batch, "one init lane per batch row");
            for lane in init {
                assert_eq!(lane.len(), n_layers, "one init state per layer");
            }
        }
        if let Some(states) = states_out.as_deref_mut() {
            states.clear();
            states.resize_with(batch, || Vec::with_capacity(n_layers));
        }
        let mut h: Option<Matrix> = None;
        for (li, layer) in self.layers.iter().enumerate() {
            let init_states: Option<Vec<&LayerState>> =
                init.map(|lanes| lanes.iter().map(|lane| &lane[li]).collect());
            let mut layer_states: Option<Vec<LayerState>> =
                if states_out.is_some() { Some(Vec::with_capacity(batch)) } else { None };
            let out = {
                let input = h.as_ref().unwrap_or(x);
                layer.run(input, batch, init_states.as_deref(), false, layer_states.as_mut(), ws).0
            };
            if let Some(prev) = h.take() {
                ws.give_matrix(prev);
            }
            h = Some(out);
            if let (Some(acc), Some(ls)) = (states_out.as_deref_mut(), layer_states) {
                for (lane, st) in acc.iter_mut().zip(ls) {
                    lane.push(st);
                }
            }
        }
        h.expect("at least one layer")
    }

    /// Backward through the stack.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut ws = NnWorkspace::new();
        self.backward_ws(d_out, &mut ws)
    }

    /// [`Lstm::backward`] drawing scratch from a shared workspace.
    pub fn backward_ws(&mut self, d_out: &Matrix, ws: &mut NnWorkspace) -> Matrix {
        let mut d: Option<Matrix> = None;
        for layer in self.layers.iter_mut().rev() {
            let grad = {
                let upstream = d.as_ref().unwrap_or(d_out);
                layer.backward_ws(upstream, ws)
            };
            if let Some(prev) = d.take() {
                ws.give_matrix(prev);
            }
            d = Some(grad);
        }
        d.expect("at least one layer")
    }

    /// All trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(LstmLayer::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(LstmLayer::n_params).sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn forward_shapes() {
        let mut l = Lstm::new(3, 5, 2, &mut init::rng(1));
        let x = seq(7, 3, 2);
        let y = l.forward(&x);
        assert_eq!((y.rows, y.cols), (7, 5));
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = Lstm::new(3, 4, 2, &mut init::rng(3));
        let x = seq(5, 3, 4);
        let a = l.forward(&x);
        let b = l.infer(&x);
        for (u, v) in a.data.iter().zip(&b.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn resumed_inference_matches_full_sequence() {
        // Running the first T-1 steps, snapshotting the state, then feeding
        // only the last step must reproduce the full-sequence hidden exactly.
        let l = Lstm::new(3, 4, 2, &mut init::rng(13));
        let x = seq(6, 3, 14);
        let mut ws = NnWorkspace::new();
        let full = l.infer_batch(&x, 1, None, None, &mut ws);
        let prefix = Matrix::from_vec(5, 3, x.data[..15].to_vec());
        let mut states = Vec::new();
        let _ = l.infer_batch(&prefix, 1, None, Some(&mut states), &mut ws);
        let last = Matrix::from_vec(1, 3, x.data[15..].to_vec());
        let init: Vec<&[LayerState]> = vec![&states[0]];
        let resumed = l.infer_batch(&last, 1, Some(&init), None, &mut ws);
        assert_eq!(resumed.row(0), full.row(5));
    }

    #[test]
    fn batched_lanes_match_independent_runs() {
        let l = Lstm::new(3, 4, 2, &mut init::rng(15));
        let a = seq(4, 3, 16);
        let b = seq(4, 3, 17);
        let mut ws = NnWorkspace::new();
        // Pack time-major: row t*2 + lane.
        let mut packed = Matrix::zeros(8, 3);
        for t in 0..4 {
            packed.row_mut(t * 2).copy_from_slice(a.row(t));
            packed.row_mut(t * 2 + 1).copy_from_slice(b.row(t));
        }
        let y = l.infer_batch(&packed, 2, None, None, &mut ws);
        let ya = l.infer(&a);
        let yb = l.infer(&b);
        for t in 0..4 {
            assert_eq!(y.row(t * 2), ya.row(t), "lane 0 t={t}");
            assert_eq!(y.row(t * 2 + 1), yb.row(t), "lane 1 t={t}");
        }
    }

    #[test]
    fn gradcheck_single_layer() {
        let mut layer = LstmLayer::new(2, 3, &mut init::rng(5));
        let x = seq(4, 2, 6);
        let c = seq(4, 3, 7); // random upstream gradient
        let y = layer.forward(&x);
        let _ = y;
        let dx = layer.backward(&c);
        let eps = 1e-6;
        // Check every Wx, Wh, b entry.
        let analytic_wx = layer.wx.grad.clone();
        let analytic_wh = layer.wh.grad.clone();
        let analytic_b = layer.b.grad.clone();
        for idx in 0..layer.wx.value.data.len() {
            let orig = layer.wx.value.data[idx];
            layer.wx.value.data[idx] = orig + eps;
            let plus = loss(&layer.infer(&x), &c);
            layer.wx.value.data[idx] = orig - eps;
            let minus = loss(&layer.infer(&x), &c);
            layer.wx.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - analytic_wx.data[idx]).abs() < 1e-6, "wx[{idx}]");
        }
        for idx in 0..layer.wh.value.data.len() {
            let orig = layer.wh.value.data[idx];
            layer.wh.value.data[idx] = orig + eps;
            let plus = loss(&layer.infer(&x), &c);
            layer.wh.value.data[idx] = orig - eps;
            let minus = loss(&layer.infer(&x), &c);
            layer.wh.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - analytic_wh.data[idx]).abs() < 1e-6, "wh[{idx}]");
        }
        for idx in 0..layer.b.value.data.len() {
            let orig = layer.b.value.data[idx];
            layer.b.value.data[idx] = orig + eps;
            let plus = loss(&layer.infer(&x), &c);
            layer.b.value.data[idx] = orig - eps;
            let minus = loss(&layer.infer(&x), &c);
            layer.b.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - analytic_b.data[idx]).abs() < 1e-6, "b[{idx}]");
        }
        // Check input gradient.
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let plus = loss(&layer.infer(&xp), &c);
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let minus = loss(&layer.infer(&xm), &c);
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn gradcheck_stacked() {
        let mut l = Lstm::new(2, 3, 2, &mut init::rng(8));
        let x = seq(3, 2, 9);
        let c = seq(3, 3, 10);
        l.forward(&x);
        let dx = l.backward(&c);
        let eps = 1e-6;
        // Spot-check a handful of parameters across both layers, reading the
        // analytic gradients accumulated by the single backward call above.
        for (li, pi, idx) in [(0usize, 0usize, 0usize), (0, 1, 3), (1, 0, 5), (1, 2, 1)] {
            let analytic = l.layers[li].parameters()[pi].grad.data[idx];
            let perturb = |e: f64| {
                let mut l2 = l.clone();
                l2.layers[li].parameters()[pi].value.data[idx] += e;
                loss(&l2.infer(&x), &c)
            };
            let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
            assert!((num - analytic).abs() < 1e-6, "layer {li} param {pi} idx {idx}");
        }
        // Input gradient spot checks.
        for idx in [0, 2, 5] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&l.infer(&xp), &c) - loss(&l.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn lstm_learns_sequence_sum_sign() {
        // Train a 1-layer LSTM + linear readout (implicit via last hidden
        // weighting) to track whether the running input sum is positive.
        use crate::optim::Adam;
        let mut rng = init::rng(11);
        let mut l = Lstm::new(1, 8, 1, &mut init::rng(12));
        let mut w_out = Tensor::from_matrix(init::xavier(&mut rng, 8, 1));
        let mut opt = Adam::new(0.02);
        let mut last_loss = f64::MAX;
        for epoch in 0..60 {
            let mut total = 0.0;
            for s in 0..20 {
                let t_len = 4 + (s % 3);
                let vals: Vec<f64> = (0..t_len).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
                let target = if vals.iter().sum::<f64>() > 0.0 { 1.0 } else { -1.0 };
                let x = Matrix::from_vec(t_len, 1, vals);
                let h = l.forward(&x);
                let last = Matrix::row_vector(h.row(t_len - 1).to_vec());
                let pred = last.matmul(&w_out.value).data[0];
                let err = pred - target;
                total += err * err;
                // d pred/d w_out = lastᵀ ; d pred/d last = w_outᵀ
                for (g, &hv) in w_out.grad.data.iter_mut().zip(last.data.iter()) {
                    *g += 2.0 * err * hv;
                }
                let mut dh = Matrix::zeros(t_len, 8);
                for j in 0..8 {
                    dh[(t_len - 1, j)] = 2.0 * err * w_out.value.data[j];
                }
                l.backward(&dh);
                let mut params = l.parameters();
                params.push(&mut w_out);
                opt.step(params);
            }
            if epoch == 0 {
                last_loss = total;
            }
        }
        // Loss after training should be well below the first epoch's.
        let mut final_total = 0.0;
        for _ in 0..20 {
            let t_len = 5;
            let vals: Vec<f64> = (0..t_len).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let target = if vals.iter().sum::<f64>() > 0.0 { 1.0 } else { -1.0 };
            let x = Matrix::from_vec(t_len, 1, vals);
            let h = l.infer(&x);
            let pred: f64 =
                h.row(t_len - 1).iter().zip(&w_out.value.data).map(|(a, b)| a * b).sum();
            final_total += (pred - target) * (pred - target);
        }
        assert!(final_total < 0.6 * last_loss, "final {final_total} vs first-epoch {last_loss}");
    }
}
