//! Single- and stacked-layer LSTM with full backpropagation through time.
//!
//! Sequences are processed one at a time (`T × in_dim` input), matching the
//! predictor's batch-of-one training regime. Gate layout inside the fused
//! weight matrices is `[i | f | g | o]`.

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::{Matrix, Tensor};
use fastft_tabular::rngx::StdRng;

/// One LSTM layer.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    /// Input-to-gates weights (`in_dim × 4·hidden`).
    pub wx: Tensor,
    /// Hidden-to-gates weights (`hidden × 4·hidden`).
    pub wh: Tensor,
    /// Gate bias (`1 × 4·hidden`).
    pub b: Tensor,
    hidden: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Matrix,              // T × in_dim
    gates: Vec<Vec<f64>>,   // per t: activated [i f g o], 4H
    cells: Vec<Vec<f64>>,   // per t: c_t, H
    hiddens: Vec<Vec<f64>>, // per t: h_t, H
}

impl LstmLayer {
    /// Xavier-initialised layer with forget-gate bias 1 (standard trick for
    /// gradient flow on short sequences).
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Tensor::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b.value.data[j] = 1.0;
        }
        LstmLayer {
            wx: Tensor::from_matrix(init::xavier(rng, in_dim, 4 * hidden)),
            wh: Tensor::from_matrix(init::xavier(rng, hidden, 4 * hidden)),
            b,
            hidden,
            cache: None,
        }
    }

    /// Orthogonally-initialised variant (RND target networks).
    pub fn new_orthogonal(in_dim: usize, hidden: usize, gain: f64, rng: &mut StdRng) -> Self {
        LstmLayer {
            wx: Tensor::from_matrix(init::orthogonal(rng, in_dim, 4 * hidden, gain)),
            wh: Tensor::from_matrix(init::orthogonal(rng, hidden, 4 * hidden, gain)),
            b: Tensor::zeros(1, 4 * hidden),
            hidden,
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Run the layer over a `T × in_dim` sequence, returning the `T × hidden`
    /// hidden-state sequence and caching everything needed for
    /// [`LstmLayer::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (out, cache) = self.run(x, true);
        self.cache = cache;
        out
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.run(x, false).0
    }

    fn run(&self, x: &Matrix, keep: bool) -> (Matrix, Option<Cache>) {
        let t_len = x.rows;
        let h = self.hidden;
        let mut hiddens = Vec::with_capacity(t_len);
        let mut cells = Vec::with_capacity(t_len);
        let mut gates = Vec::with_capacity(t_len);
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        let mut out = Matrix::zeros(t_len, h);
        for t in 0..t_len {
            // z = x_t Wx + h_prev Wh + b
            let mut z = self.b.value.data.clone();
            let x_row = x.row(t);
            for (k, &xv) in x_row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let w_row = self.wx.value.row(k);
                for (zv, &wv) in z.iter_mut().zip(w_row) {
                    *zv += xv * wv;
                }
            }
            for (k, &hv) in h_prev.iter().enumerate() {
                if hv == 0.0 {
                    continue;
                }
                let w_row = self.wh.value.row(k);
                for (zv, &wv) in z.iter_mut().zip(w_row) {
                    *zv += hv * wv;
                }
            }
            // Activate gates in place: [i f g o]
            let mut g_act = z;
            let mut c_t = vec![0.0; h];
            let mut h_t = vec![0.0; h];
            for j in 0..h {
                let i = sigmoid(g_act[j]);
                let f = sigmoid(g_act[h + j]);
                let g = g_act[2 * h + j].tanh();
                let o = sigmoid(g_act[3 * h + j]);
                g_act[j] = i;
                g_act[h + j] = f;
                g_act[2 * h + j] = g;
                g_act[3 * h + j] = o;
                c_t[j] = f * c_prev[j] + i * g;
                h_t[j] = o * c_t[j].tanh();
            }
            out.row_mut(t).copy_from_slice(&h_t);
            if keep {
                gates.push(g_act);
                cells.push(c_t.clone());
                hiddens.push(h_t.clone());
            }
            h_prev = h_t;
            c_prev = c_t;
        }
        let cache = keep.then(|| Cache { x: x.clone(), gates, cells, hiddens });
        (out, cache)
    }

    /// BPTT given the gradient w.r.t. the full hidden sequence (`T × hidden`).
    /// Accumulates parameter gradients and returns `dX` (`T × in_dim`).
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let t_len = cache.x.rows;
        assert_eq!(d_out.rows, t_len);
        let h = self.hidden;
        let in_dim = cache.x.cols;
        let mut dx = Matrix::zeros(t_len, in_dim);
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let c_t = &cache.cells[t];
            let c_prev: &[f64] = if t == 0 { &[] } else { &cache.cells[t - 1] };
            let h_prev: &[f64] = if t == 0 { &[] } else { &cache.hiddens[t - 1] };
            // Total dh at this step.
            let mut dz = vec![0.0; 4 * h];
            let mut dh_prev = vec![0.0; h];
            let mut dc_prev = vec![0.0; h];
            for j in 0..h {
                let dh = d_out[(t, j)] + dh_next[j];
                let i = gates[j];
                let f = gates[h + j];
                let g = gates[2 * h + j];
                let o = gates[3 * h + j];
                let tc = c_t[j].tanh();
                let d_o = dh * tc;
                let dc = dh * o * (1.0 - tc * tc) + dc_next[j];
                let d_i = dc * g;
                let d_g = dc * i;
                let d_f = dc * if t == 0 { 0.0 } else { c_prev[j] };
                dc_prev[j] = dc * f;
                dz[j] = d_i * i * (1.0 - i);
                dz[h + j] = d_f * f * (1.0 - f);
                dz[2 * h + j] = d_g * (1.0 - g * g);
                dz[3 * h + j] = d_o * o * (1.0 - o);
            }
            // Parameter gradients: dWx += x_tᵀ dz ; dWh += h_prevᵀ dz ; db += dz.
            let x_row = cache.x.row(t);
            for (k, &xv) in x_row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let g_row = &mut self.wx.grad.data[k * 4 * h..(k + 1) * 4 * h];
                for (gv, &dv) in g_row.iter_mut().zip(&dz) {
                    *gv += xv * dv;
                }
            }
            if t > 0 {
                for (k, &hv) in h_prev.iter().enumerate() {
                    if hv == 0.0 {
                        continue;
                    }
                    let g_row = &mut self.wh.grad.data[k * 4 * h..(k + 1) * 4 * h];
                    for (gv, &dv) in g_row.iter_mut().zip(&dz) {
                        *gv += hv * dv;
                    }
                }
            }
            for (gv, &dv) in self.b.grad.data.iter_mut().zip(&dz) {
                *gv += dv;
            }
            // dx_t = dz Wxᵀ ; dh_prev += dz Whᵀ.
            let dx_row = dx.row_mut(t);
            for (k, dxv) in dx_row.iter_mut().enumerate() {
                let w_row = self.wx.value.row(k);
                *dxv = w_row.iter().zip(&dz).map(|(a, b)| a * b).sum();
            }
            for (k, dhv) in dh_prev.iter_mut().enumerate() {
                let w_row = self.wh.value.row(k);
                *dhv = w_row.iter().zip(&dz).map(|(a, b)| a * b).sum();
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        dx
    }

    /// Trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }
}

/// A stack of LSTM layers (the paper uses 2).
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
}

impl Lstm {
    /// Stack `n_layers` LSTM layers; the first maps `in_dim → hidden`, the
    /// rest `hidden → hidden`.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, rng: &mut StdRng) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(LstmLayer::new(in_dim, hidden, rng));
        for _ in 1..n_layers {
            layers.push(LstmLayer::new(hidden, hidden, rng));
        }
        Lstm { layers }
    }

    /// Orthogonally-initialised stack (RND target network).
    pub fn new_orthogonal(
        in_dim: usize,
        hidden: usize,
        n_layers: usize,
        gain: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        layers.push(LstmLayer::new_orthogonal(in_dim, hidden, gain, rng));
        for _ in 1..n_layers {
            layers.push(LstmLayer::new_orthogonal(hidden, hidden, gain, rng));
        }
        Lstm { layers }
    }

    /// Hidden size of the final layer.
    pub fn hidden(&self) -> usize {
        self.layers.last().unwrap().hidden()
    }

    /// Forward through the stack (`T × in_dim` → `T × hidden`).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference-only forward.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// Backward through the stack.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut d = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// All trainable parameters (stable order).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(LstmLayer::parameters).collect()
    }

    /// Parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(LstmLayer::n_params).sum()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven perturbation loops
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    fn loss(y: &Matrix, c: &Matrix) -> f64 {
        y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn forward_shapes() {
        let mut l = Lstm::new(3, 5, 2, &mut init::rng(1));
        let x = seq(7, 3, 2);
        let y = l.forward(&x);
        assert_eq!((y.rows, y.cols), (7, 5));
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = Lstm::new(3, 4, 2, &mut init::rng(3));
        let x = seq(5, 3, 4);
        let a = l.forward(&x);
        let b = l.infer(&x);
        for (u, v) in a.data.iter().zip(&b.data) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn gradcheck_single_layer() {
        let mut layer = LstmLayer::new(2, 3, &mut init::rng(5));
        let x = seq(4, 2, 6);
        let c = seq(4, 3, 7); // random upstream gradient
        let y = layer.forward(&x);
        let _ = y;
        let dx = layer.backward(&c);
        let eps = 1e-6;
        // Check every Wx, Wh, b entry.
        let analytic_wx = layer.wx.grad.clone();
        let analytic_wh = layer.wh.grad.clone();
        let analytic_b = layer.b.grad.clone();
        for idx in 0..layer.wx.value.data.len() {
            let orig = layer.wx.value.data[idx];
            layer.wx.value.data[idx] = orig + eps;
            let plus = loss(&layer.infer(&x), &c);
            layer.wx.value.data[idx] = orig - eps;
            let minus = loss(&layer.infer(&x), &c);
            layer.wx.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - analytic_wx.data[idx]).abs() < 1e-6, "wx[{idx}]");
        }
        for idx in 0..layer.wh.value.data.len() {
            let orig = layer.wh.value.data[idx];
            layer.wh.value.data[idx] = orig + eps;
            let plus = loss(&layer.infer(&x), &c);
            layer.wh.value.data[idx] = orig - eps;
            let minus = loss(&layer.infer(&x), &c);
            layer.wh.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - analytic_wh.data[idx]).abs() < 1e-6, "wh[{idx}]");
        }
        for idx in 0..layer.b.value.data.len() {
            let orig = layer.b.value.data[idx];
            layer.b.value.data[idx] = orig + eps;
            let plus = loss(&layer.infer(&x), &c);
            layer.b.value.data[idx] = orig - eps;
            let minus = loss(&layer.infer(&x), &c);
            layer.b.value.data[idx] = orig;
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - analytic_b.data[idx]).abs() < 1e-6, "b[{idx}]");
        }
        // Check input gradient.
        for idx in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let plus = loss(&layer.infer(&xp), &c);
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let minus = loss(&layer.infer(&xm), &c);
            let num = (plus - minus) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn gradcheck_stacked() {
        let mut l = Lstm::new(2, 3, 2, &mut init::rng(8));
        let x = seq(3, 2, 9);
        let c = seq(3, 3, 10);
        l.forward(&x);
        let dx = l.backward(&c);
        let eps = 1e-6;
        // Spot-check a handful of parameters across both layers, reading the
        // analytic gradients accumulated by the single backward call above.
        for (li, pi, idx) in [(0usize, 0usize, 0usize), (0, 1, 3), (1, 0, 5), (1, 2, 1)] {
            let analytic = l.layers[li].parameters()[pi].grad.data[idx];
            let perturb = |e: f64| {
                let mut l2 = l.clone();
                l2.layers[li].parameters()[pi].value.data[idx] += e;
                loss(&l2.infer(&x), &c)
            };
            let num = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
            assert!((num - analytic).abs() < 1e-6, "layer {li} param {pi} idx {idx}");
        }
        // Input gradient spot checks.
        for idx in [0, 2, 5] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss(&l.infer(&xp), &c) - loss(&l.infer(&xm), &c)) / (2.0 * eps);
            assert!((num - dx.data[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn lstm_learns_sequence_sum_sign() {
        // Train a 1-layer LSTM + linear readout (implicit via last hidden
        // weighting) to track whether the running input sum is positive.
        use crate::optim::Adam;
        let mut rng = init::rng(11);
        let mut l = Lstm::new(1, 8, 1, &mut init::rng(12));
        let mut w_out = Tensor::from_matrix(init::xavier(&mut rng, 8, 1));
        let mut opt = Adam::new(0.02);
        let mut last_loss = f64::MAX;
        for epoch in 0..60 {
            let mut total = 0.0;
            for s in 0..20 {
                let t_len = 4 + (s % 3);
                let vals: Vec<f64> = (0..t_len).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
                let target = if vals.iter().sum::<f64>() > 0.0 { 1.0 } else { -1.0 };
                let x = Matrix::from_vec(t_len, 1, vals);
                let h = l.forward(&x);
                let last = Matrix::row_vector(h.row(t_len - 1).to_vec());
                let pred = last.matmul(&w_out.value).data[0];
                let err = pred - target;
                total += err * err;
                // d pred/d w_out = lastᵀ ; d pred/d last = w_outᵀ
                for (g, &hv) in w_out.grad.data.iter_mut().zip(last.data.iter()) {
                    *g += 2.0 * err * hv;
                }
                let mut dh = Matrix::zeros(t_len, 8);
                for j in 0..8 {
                    dh[(t_len - 1, j)] = 2.0 * err * w_out.value.data[j];
                }
                l.backward(&dh);
                let mut params = l.parameters();
                params.push(&mut w_out);
                opt.step(params);
            }
            if epoch == 0 {
                last_loss = total;
            }
        }
        // Loss after training should be well below the first epoch's.
        let mut final_total = 0.0;
        for _ in 0..20 {
            let t_len = 5;
            let vals: Vec<f64> = (0..t_len).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let target = if vals.iter().sum::<f64>() > 0.0 { 1.0 } else { -1.0 };
            let x = Matrix::from_vec(t_len, 1, vals);
            let h = l.infer(&x);
            let pred: f64 =
                h.row(t_len - 1).iter().zip(&w_out.value.data).map(|(a, b)| a * b).sum();
            final_total += (pred - target) * (pred - target);
        }
        assert!(final_total < 0.6 * last_loss, "final {final_total} vs first-epoch {last_loss}");
    }
}
