//! Weight initialisation: Xavier/Glorot uniform and the orthogonal scheme
//! the paper uses for the Novelty Estimator's random target network
//! ("coupled orthogonal initialization scaling factor is set to 16.0", §V).

use crate::matrix::Matrix;
use fastft_tabular::rngx::StdRng;

/// Workspace-standard RNG (a seeded [`rngx::StdRng`](fastft_tabular::rngx)).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Xavier/Glorot uniform init: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen::<f64>() * 2.0 * a - a).collect();
    Matrix { rows, cols, data }
}

/// Orthogonal initialisation scaled by `gain`.
///
/// Draw a Gaussian matrix and orthonormalise its rows (if `rows <= cols`) or
/// columns (otherwise) with modified Gram–Schmidt, then multiply by `gain`.
/// The resulting matrix `M` satisfies `M Mᵀ = gain² I` (or `Mᵀ M = gain² I`).
pub fn orthogonal(rng: &mut StdRng, rows: usize, cols: usize, gain: f64) -> Matrix {
    let transpose_needed = rows > cols;
    let (r, c) = if transpose_needed { (cols, rows) } else { (rows, cols) };
    // r <= c: orthonormalise the r rows of an r×c Gaussian draw.
    let mut m: Vec<Vec<f64>> = (0..r).map(|_| (0..c).map(|_| normal(rng)).collect()).collect();
    for i in 0..r {
        // Two Gram–Schmidt sweeps for numerical robustness.
        for _ in 0..2 {
            for j in 0..i {
                let dot: f64 = m[i].iter().zip(&m[j]).map(|(a, b)| a * b).sum();
                let (left, right) = m.split_at_mut(i);
                for (vi, vj) in right[0].iter_mut().zip(&left[j]) {
                    *vi -= dot * vj;
                }
            }
        }
        let norm: f64 = m[i].iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        for v in &mut m[i] {
            *v /= norm;
        }
    }
    // Scale after the whole basis is orthonormal, so the Gram–Schmidt
    // projections above operate on unit vectors.
    for row in &mut m {
        for v in row {
            *v *= gain;
        }
    }
    let flat: Vec<f64> = m.into_iter().flatten().collect();
    let mat = Matrix::from_vec(r, c, flat);
    if transpose_needed {
        mat.transpose()
    } else {
        mat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_range() {
        let mut r = rng(1);
        let m = xavier(&mut r, 10, 20);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(m.data.iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn orthogonal_rows_are_orthonormal() {
        let mut r = rng(2);
        let gain = 16.0; // paper's scaling factor
        let m = orthogonal(&mut r, 4, 8, gain);
        // M Mᵀ should be gain² I for rows <= cols.
        let gram = m.matmul_nt(&m);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { gain * gain } else { 0.0 };
                assert!((gram[(i, j)] - expect).abs() < 1e-8, "gram[{i}][{j}] = {}", gram[(i, j)]);
            }
        }
    }

    #[test]
    fn orthogonal_tall_matrix_columns_orthonormal() {
        let mut r = rng(3);
        let m = orthogonal(&mut r, 8, 3, 1.0);
        let gram = m.matmul_tn(&m); // MᵀM = I
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((gram[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn orthogonal_deterministic() {
        let a = orthogonal(&mut rng(9), 5, 5, 2.0);
        let b = orthogonal(&mut rng(9), 5, 5, 2.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = orthogonal(&mut rng(1), 5, 5, 1.0);
        let b = orthogonal(&mut rng(2), 5, 5, 1.0);
        assert_ne!(a, b);
    }
}
