//! Sequence-to-scalar regressors: the shared architecture of the paper's
//! Performance Predictor and Novelty Estimator networks.
//!
//! Paper configuration (§V): token embedding dim 32 → 2 stacked LSTM layers
//! → fully-connected head (16 → 1 for the predictor; 16 → 4 → 1 for the RND
//! estimator; a single FC for the frozen RND target, orthogonally
//! initialised with gain 16). [`EncoderKind`] swaps the encoder for the
//! Fig. 8 ablation (RNN / Transformer).

use crate::activation::Activation;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::gru::Gru;
use crate::init;
use crate::lstm::Lstm;
use crate::matrix::{Matrix, Tensor};
use crate::optim::Adam;
use crate::rnn::Rnn;
use crate::transformer::{add_positional_encoding, TransformerBlock};

/// Which sequence encoder backs the regressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Stacked LSTM (paper default: 2 layers).
    Lstm {
        /// Number of stacked layers.
        layers: usize,
    },
    /// Stacked vanilla RNN (FASTFTᴿ).
    Rnn {
        /// Number of stacked layers.
        layers: usize,
    },
    /// Stacked GRU (extended-ablation encoder; not in the paper's trio).
    Gru {
        /// Number of stacked layers.
        layers: usize,
    },
    /// Transformer encoder blocks (FASTFTᵀ).
    Transformer {
        /// Attention heads per block.
        heads: usize,
        /// Number of blocks.
        blocks: usize,
    },
}

impl EncoderKind {
    /// Label used in the Fig. 8 harness.
    pub fn label(self) -> &'static str {
        match self {
            EncoderKind::Lstm { .. } => "LSTM",
            EncoderKind::Rnn { .. } => "RNN",
            EncoderKind::Gru { .. } => "GRU",
            EncoderKind::Transformer { .. } => "Transformer",
        }
    }
}

#[derive(Debug, Clone)]
enum Encoder {
    Lstm(Lstm),
    Rnn(Rnn),
    Gru(Gru),
    Transformer(Vec<TransformerBlock>),
}

/// Embedding → encoder → pooled state → dense head → scalar(s).
#[derive(Debug, Clone)]
pub struct SequenceRegressor {
    emb: Embedding,
    enc: Encoder,
    head: Vec<Dense>,
    opt: Adam,
    kind: EncoderKind,
    cache_pool_len: usize,
}

impl SequenceRegressor {
    /// Build a trainable regressor.
    ///
    /// `head_dims` are the hidden/output widths after the encoder, e.g.
    /// `[16, 1]` for the Performance Predictor. For the Transformer encoder
    /// the model width equals `emb_dim` and `hidden` is ignored.
    pub fn new(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        kind: EncoderKind,
        head_dims: &[usize],
        lr: f64,
        seed: u64,
    ) -> Self {
        assert!(!head_dims.is_empty(), "head needs at least an output layer");
        let mut rng = init::rng(seed);
        let emb = Embedding::new(vocab, emb_dim, &mut rng);
        let (enc, enc_out) = match kind {
            EncoderKind::Lstm { layers } => {
                (Encoder::Lstm(Lstm::new(emb_dim, hidden, layers, &mut rng)), hidden)
            }
            EncoderKind::Rnn { layers } => {
                (Encoder::Rnn(Rnn::new(emb_dim, hidden, layers, &mut rng)), hidden)
            }
            EncoderKind::Gru { layers } => {
                (Encoder::Gru(Gru::new(emb_dim, hidden, layers, &mut rng)), hidden)
            }
            EncoderKind::Transformer { heads, blocks } => {
                let bs =
                    (0..blocks).map(|_| TransformerBlock::new(emb_dim, heads, &mut rng)).collect();
                (Encoder::Transformer(bs), emb_dim)
            }
        };
        let mut head = Vec::with_capacity(head_dims.len());
        let mut prev = enc_out;
        for (i, &d) in head_dims.iter().enumerate() {
            let act = if i + 1 == head_dims.len() { Activation::Linear } else { Activation::Relu };
            head.push(Dense::new(prev, d, act, &mut rng));
            prev = d;
        }
        SequenceRegressor { emb, enc, head, opt: Adam::new(lr), kind, cache_pool_len: 0 }
    }

    /// Build a **frozen random target network** for random network
    /// distillation: LSTM encoder and head are orthogonally initialised
    /// with `gain` (paper: 16.0) and never trained.
    pub fn new_orthogonal_target(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        layers: usize,
        head_dims: &[usize],
        gain: f64,
        seed: u64,
    ) -> Self {
        let mut rng = init::rng(seed);
        let emb = Embedding::new(vocab, emb_dim, &mut rng);
        let enc = Encoder::Lstm(Lstm::new_orthogonal(emb_dim, hidden, layers, gain, &mut rng));
        let mut head = Vec::with_capacity(head_dims.len());
        let mut prev = hidden;
        for (i, &d) in head_dims.iter().enumerate() {
            let act = if i + 1 == head_dims.len() { Activation::Linear } else { Activation::Tanh };
            head.push(Dense::new_orthogonal(prev, d, act, gain / (i + 1) as f64, &mut rng));
            prev = d;
        }
        SequenceRegressor {
            emb,
            enc,
            head,
            opt: Adam::new(0.0),
            kind: EncoderKind::Lstm { layers },
            cache_pool_len: 0,
        }
    }

    /// Encoder variant.
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// Output dimension of the head.
    pub fn out_dim(&self) -> usize {
        self.head.last().unwrap().out_dim()
    }

    fn encode_infer(&self, tokens: &[usize]) -> Matrix {
        assert!(!tokens.is_empty(), "empty token sequence");
        let mut x = self.emb.infer(tokens);
        match &self.enc {
            Encoder::Lstm(l) => l.infer(&x),
            Encoder::Rnn(r) => r.infer(&x),
            Encoder::Gru(g) => g.infer(&x),
            Encoder::Transformer(blocks) => {
                add_positional_encoding(&mut x);
                let mut h = x;
                for b in blocks {
                    h = b.infer(&h);
                }
                h
            }
        }
    }

    fn pool(kind: EncoderKind, h: &Matrix) -> Vec<f64> {
        match kind {
            // Recurrent encoders: last hidden state.
            EncoderKind::Lstm { .. } | EncoderKind::Rnn { .. } | EncoderKind::Gru { .. } => {
                h.row(h.rows - 1).to_vec()
            }
            // Transformer: mean over positions.
            EncoderKind::Transformer { .. } => {
                let mut v = vec![0.0; h.cols];
                for r in 0..h.rows {
                    for (a, &b) in v.iter_mut().zip(h.row(r)) {
                        *a += b;
                    }
                }
                let inv = 1.0 / h.rows as f64;
                v.iter().map(|a| a * inv).collect()
            }
        }
    }

    /// Predict head outputs for a token sequence (no caching; `&self`).
    pub fn predict(&self, tokens: &[usize]) -> Vec<f64> {
        let h = self.encode_infer(tokens);
        let pooled = Self::pool(self.kind, &h);
        let mut y = Matrix::row_vector(pooled);
        for layer in &self.head {
            y = layer.infer(&y);
        }
        y.data
    }

    /// One gradient step minimising MSE against `target`; returns the loss
    /// **before** the update.
    pub fn train_step(&mut self, tokens: &[usize], target: &[f64]) -> f64 {
        assert!(!tokens.is_empty(), "empty token sequence");
        assert_eq!(target.len(), self.out_dim(), "target dim mismatch");
        // Forward with caches.
        let mut x = self.emb.forward(tokens);
        let h = match &mut self.enc {
            Encoder::Lstm(l) => l.forward(&x),
            Encoder::Rnn(r) => r.forward(&x),
            Encoder::Gru(g) => g.forward(&x),
            Encoder::Transformer(blocks) => {
                add_positional_encoding(&mut x);
                let mut h = x.clone();
                for b in blocks.iter_mut() {
                    h = b.forward(&h);
                }
                h
            }
        };
        self.cache_pool_len = h.rows;
        let pooled = Self::pool(self.kind, &h);
        let mut y = Matrix::row_vector(pooled);
        for layer in &mut self.head {
            y = layer.forward(&y);
        }
        // MSE loss and gradient.
        let k = target.len() as f64;
        let loss = y.data.iter().zip(target).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / k;
        let mut dy =
            Matrix::row_vector(y.data.iter().zip(target).map(|(p, t)| 2.0 * (p - t) / k).collect());
        // Backward.
        for layer in self.head.iter_mut().rev() {
            dy = layer.backward(&dy);
        }
        let d_pooled = dy; // 1 × enc_out
        let t_len = self.cache_pool_len;
        let dh = match self.kind {
            EncoderKind::Lstm { .. } | EncoderKind::Rnn { .. } | EncoderKind::Gru { .. } => {
                let mut dh = Matrix::zeros(t_len, d_pooled.cols);
                dh.row_mut(t_len - 1).copy_from_slice(d_pooled.row(0));
                dh
            }
            EncoderKind::Transformer { .. } => {
                let mut dh = Matrix::zeros(t_len, d_pooled.cols);
                let inv = 1.0 / t_len as f64;
                for r in 0..t_len {
                    for (d, &g) in dh.row_mut(r).iter_mut().zip(d_pooled.row(0)) {
                        *d = g * inv;
                    }
                }
                dh
            }
        };
        let dx = match &mut self.enc {
            Encoder::Lstm(l) => l.backward(&dh),
            Encoder::Rnn(r) => r.backward(&dh),
            Encoder::Gru(g) => g.backward(&dh),
            Encoder::Transformer(blocks) => {
                let mut d = dh;
                for b in blocks.iter_mut().rev() {
                    d = b.backward(&d);
                }
                d
            }
        };
        self.emb.backward(&dx);
        // Update.
        let mut params: Vec<&mut Tensor> = self.emb.parameters();
        match &mut self.enc {
            Encoder::Lstm(l) => params.extend(l.parameters()),
            Encoder::Rnn(r) => params.extend(r.parameters()),
            Encoder::Gru(g) => params.extend(g.parameters()),
            Encoder::Transformer(blocks) => {
                for b in blocks.iter_mut() {
                    params.extend(b.parameters());
                }
            }
        }
        for layer in &mut self.head {
            params.extend(layer.parameters());
        }
        self.opt.step(params);
        loss
    }

    /// Total trainable parameter count (Fig. 11 memory accounting).
    pub fn n_params(&self) -> usize {
        let enc = match &self.enc {
            Encoder::Lstm(l) => l.n_params(),
            Encoder::Rnn(r) => r.n_params(),
            Encoder::Gru(g) => g.n_params(),
            Encoder::Transformer(blocks) => blocks.iter().map(TransformerBlock::n_params).sum(),
        };
        self.emb.n_params() + enc + self.head.iter().map(Dense::n_params).sum::<usize>()
    }

    /// Estimated forward-pass activation footprint in bytes for a sequence
    /// of `seq_len` tokens (Fig. 11a: memory as a function of sequence
    /// length). Counts `f64` buffers actually materialised by `forward`.
    pub fn activation_bytes(&self, seq_len: usize) -> usize {
        let emb_dim = self.emb.dim();
        let f = std::mem::size_of::<f64>();
        let emb_act = seq_len * emb_dim;
        let enc_act = match &self.enc {
            // Per layer per step: gates 4H + cell H + hidden H.
            Encoder::Lstm(l) => {
                let h = l.hidden();
                // layer count = params / per-layer params is awkward; derive
                // from the parameter structure instead.
                let per_layer_state = 6 * h;
                let layers = match self.kind {
                    EncoderKind::Lstm { layers } => layers,
                    _ => 1,
                };
                layers * seq_len * per_layer_state
            }
            Encoder::Rnn(r) => {
                let h = r.hidden();
                let layers = match self.kind {
                    EncoderKind::Rnn { layers } => layers,
                    _ => 1,
                };
                layers * seq_len * h
            }
            // Per layer per step: gates 3H + candidate linear H + hidden H.
            Encoder::Gru(g) => {
                let h = g.hidden();
                let layers = match self.kind {
                    EncoderKind::Gru { layers } => layers,
                    _ => 1,
                };
                layers * seq_len * 5 * h
            }
            // Attention materialises T×T per head plus Q/K/V and FFN buffers.
            Encoder::Transformer(blocks) => blocks
                .iter()
                .map(|b| {
                    let d = b.dim();
                    // q,k,v,concat + T×T attention + 4d FFN hidden
                    seq_len * (4 * d) + seq_len * seq_len + seq_len * 4 * d
                })
                .sum(),
        };
        let head_act: usize = self.head.iter().map(Dense::out_dim).sum();
        (emb_act + enc_act + head_act) * f
    }

    /// Total memory estimate: parameters + activations, in bytes.
    pub fn memory_bytes(&self, seq_len: usize) -> usize {
        self.n_params() * std::mem::size_of::<f64>() + self.activation_bytes(seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx::StdRng;

    /// Target function: fraction of even tokens in the sequence.
    fn target_of(tokens: &[usize]) -> f64 {
        tokens.iter().filter(|&&t| t % 2 == 0).count() as f64 / tokens.len() as f64
    }

    fn random_tokens(rng: &mut StdRng, vocab: usize) -> Vec<usize> {
        let len = rng.gen_range(3..10);
        (0..len).map(|_| rng.gen_range(0..vocab)).collect()
    }

    fn trains_to_low_loss(kind: EncoderKind) {
        let vocab = 12;
        let mut m = SequenceRegressor::new(vocab, 8, 8, kind, &[8, 1], 0.01, 1);
        let mut rng = init::rng(2);
        let data: Vec<Vec<usize>> = (0..40).map(|_| random_tokens(&mut rng, vocab)).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..30 {
            let mut total = 0.0;
            for toks in &data {
                total += m.train_step(toks, &[target_of(toks)]);
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < 0.5 * first, "{}: first {first}, last {last}", kind.label());
    }

    #[test]
    fn lstm_regressor_trains() {
        trains_to_low_loss(EncoderKind::Lstm { layers: 2 });
    }

    #[test]
    fn rnn_regressor_trains() {
        trains_to_low_loss(EncoderKind::Rnn { layers: 2 });
    }

    #[test]
    fn gru_regressor_trains() {
        trains_to_low_loss(EncoderKind::Gru { layers: 2 });
    }

    #[test]
    fn transformer_regressor_trains() {
        trains_to_low_loss(EncoderKind::Transformer { heads: 2, blocks: 1 });
    }

    #[test]
    fn predict_is_pure() {
        let m =
            SequenceRegressor::new(10, 8, 8, EncoderKind::Lstm { layers: 2 }, &[16, 1], 0.01, 3);
        let toks = vec![1, 2, 3];
        assert_eq!(m.predict(&toks), m.predict(&toks));
    }

    #[test]
    fn orthogonal_target_is_nontrivial_and_fixed() {
        let t = SequenceRegressor::new_orthogonal_target(10, 8, 8, 2, &[1], 16.0, 4);
        let a = t.predict(&[1, 2, 3]);
        let b = t.predict(&[3, 2, 1]);
        assert_eq!(a.len(), 1);
        assert!(a[0].is_finite());
        // Different sequences map to different outputs (w.h.p. for an
        // orthogonal random net).
        assert_ne!(a, b);
        // Same input, same output (frozen).
        assert_eq!(a, t.predict(&[1, 2, 3]));
    }

    #[test]
    fn distillation_reduces_error_on_seen_sequences() {
        // RND sanity: train the estimator to match the frozen target on a
        // small set; prediction error on those sequences must fall.
        let vocab = 10;
        let target = SequenceRegressor::new_orthogonal_target(vocab, 8, 8, 2, &[1], 4.0, 5);
        let mut est = SequenceRegressor::new(
            vocab,
            8,
            8,
            EncoderKind::Lstm { layers: 2 },
            &[8, 4, 1],
            0.01,
            6,
        );
        let mut rng = init::rng(7);
        let seen: Vec<Vec<usize>> = (0..15).map(|_| random_tokens(&mut rng, vocab)).collect();
        let err = |est: &SequenceRegressor| -> f64 {
            seen.iter()
                .map(|t| {
                    let d = est.predict(t)[0] - target.predict(t)[0];
                    d * d
                })
                .sum()
        };
        let before = err(&est);
        for _ in 0..40 {
            for toks in &seen {
                let t = target.predict(toks);
                est.train_step(toks, &t);
            }
        }
        let after = err(&est);
        assert!(after < 0.3 * before, "before {before}, after {after}");
    }

    #[test]
    fn memory_grows_slowly_with_sequence_for_lstm() {
        let m =
            SequenceRegressor::new(30, 32, 32, EncoderKind::Lstm { layers: 2 }, &[16, 1], 0.01, 8);
        let m10 = m.memory_bytes(10);
        let m100 = m.memory_bytes(100);
        // Recurrent activations are linear in T and dominated by parameters.
        assert!(m100 < 3 * m10, "m10 {m10}, m100 {m100}");
    }

    #[test]
    fn transformer_memory_grows_quadratically() {
        let m = SequenceRegressor::new(
            30,
            32,
            32,
            EncoderKind::Transformer { heads: 2, blocks: 1 },
            &[16, 1],
            0.01,
            9,
        );
        let a10 = m.activation_bytes(10);
        let a100 = m.activation_bytes(100);
        assert!(a100 > 10 * a10, "a10 {a10}, a100 {a100}");
    }

    #[test]
    #[should_panic]
    fn empty_sequence_panics() {
        let m = SequenceRegressor::new(5, 4, 4, EncoderKind::Lstm { layers: 1 }, &[1], 0.01, 10);
        let _ = m.predict(&[]);
    }
}
