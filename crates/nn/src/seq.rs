//! Sequence-to-scalar regressors: the shared architecture of the paper's
//! Performance Predictor and Novelty Estimator networks.
//!
//! Paper configuration (§V): token embedding dim 32 → 2 stacked LSTM layers
//! → fully-connected head (16 → 1 for the predictor; 16 → 4 → 1 for the RND
//! estimator; a single FC for the frozen RND target, orthogonally
//! initialised with gain 16). [`EncoderKind`] swaps the encoder for the
//! Fig. 8 ablation (RNN / Transformer).
//!
//! Scoring runs on the fused recurrent kernels: [`SequenceRegressor::predict_into`]
//! draws all scratch from an internal pooled [`NnWorkspace`],
//! [`SequenceRegressor::predict_batch`] packs equal-length sequences into
//! time-major lanes for one fused pass per length bucket, and
//! [`SequenceRegressor::encode_state`] / [`SequenceRegressor::predict_state_into`]
//! let callers resume a recurrent encoder from a saved [`EncoderState`] so an
//! extended sequence only pays for its new suffix (the prefix cache in
//! `fastft-core` builds on this). All of these produce bitwise-identical
//! results to one another because every path runs the same kernel with the
//! same summation order.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::gru::Gru;
use crate::init;
use crate::lstm::Lstm;
use crate::matrix::{Matrix, Tensor};
use crate::optim::Adam;
use crate::rnn::Rnn;
use crate::transformer::{add_positional_encoding, TransformerBlock};
use crate::workspace::{LayerState, NnWorkspace};
use fastft_runtime::Runtime;

/// Which sequence encoder backs the regressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Stacked LSTM (paper default: 2 layers).
    Lstm {
        /// Number of stacked layers.
        layers: usize,
    },
    /// Stacked vanilla RNN (FASTFTᴿ).
    Rnn {
        /// Number of stacked layers.
        layers: usize,
    },
    /// Stacked GRU (extended-ablation encoder; not in the paper's trio).
    Gru {
        /// Number of stacked layers.
        layers: usize,
    },
    /// Transformer encoder blocks (FASTFTᵀ).
    Transformer {
        /// Attention heads per block.
        heads: usize,
        /// Number of blocks.
        blocks: usize,
    },
}

impl EncoderKind {
    /// Label used in the Fig. 8 harness.
    pub fn label(self) -> &'static str {
        match self {
            EncoderKind::Lstm { .. } => "LSTM",
            EncoderKind::Rnn { .. } => "RNN",
            EncoderKind::Gru { .. } => "GRU",
            EncoderKind::Transformer { .. } => "Transformer",
        }
    }
}

impl fastft_tabular::persist::Persist for EncoderKind {
    // Fixed-width layout (tag + two operand slots) so every variant
    // occupies the same shape on disk.
    fn persist(&self, w: &mut fastft_tabular::persist::Writer) {
        let (tag, a, b) = match *self {
            EncoderKind::Lstm { layers } => (0u8, layers, 0),
            EncoderKind::Rnn { layers } => (1, layers, 0),
            EncoderKind::Gru { layers } => (2, layers, 0),
            EncoderKind::Transformer { heads, blocks } => (3, heads, blocks),
        };
        w.u8(tag);
        w.usize(a);
        w.usize(b);
    }

    fn restore(
        r: &mut fastft_tabular::persist::Reader,
    ) -> fastft_tabular::persist::PersistResult<Self> {
        let (tag, a, b) = (r.u8()?, r.usize()?, r.usize()?);
        Ok(match tag {
            0 => EncoderKind::Lstm { layers: a },
            1 => EncoderKind::Rnn { layers: a },
            2 => EncoderKind::Gru { layers: a },
            3 => EncoderKind::Transformer { heads: a, blocks: b },
            t => return Err(format!("unknown encoder tag {t}")),
        })
    }
}

#[derive(Debug, Clone)]
enum Encoder {
    Lstm(Lstm),
    Rnn(Rnn),
    Gru(Gru),
    Transformer(Vec<TransformerBlock>),
}

/// Snapshot of a recurrent encoder after consuming a token prefix: one
/// [`LayerState`] per stacked layer plus the prefix length. Feeding the
/// remaining suffix through [`SequenceRegressor::encode_state`] reproduces
/// the full-sequence encoding bitwise.
#[derive(Debug, Clone)]
pub struct EncoderState {
    layers: Vec<LayerState>,
    len: usize,
}

impl EncoderState {
    /// Number of tokens consumed to reach this state.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tokens have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Embedding → encoder → pooled state → dense head → scalar(s).
#[derive(Debug, Clone)]
pub struct SequenceRegressor {
    emb: Embedding,
    enc: Encoder,
    head: Vec<Dense>,
    opt: Adam,
    kind: EncoderKind,
    cache_pool_len: usize,
    /// Pooled scratch for the inference paths, which take `&self`.
    ws: RefCell<NnWorkspace>,
}

/// Trainable parameters in stable order (embedding → encoder → head). Free
/// function over disjoint fields so callers can still touch `opt` while the
/// borrows are live.
fn collect_params<'a>(
    emb: &'a mut Embedding,
    enc: &'a mut Encoder,
    head: &'a mut [Dense],
) -> Vec<&'a mut Tensor> {
    let mut params = emb.parameters();
    match enc {
        Encoder::Lstm(l) => params.extend(l.parameters()),
        Encoder::Rnn(r) => params.extend(r.parameters()),
        Encoder::Gru(g) => params.extend(g.parameters()),
        Encoder::Transformer(blocks) => {
            for b in blocks.iter_mut() {
                params.extend(b.parameters());
            }
        }
    }
    for layer in head.iter_mut() {
        params.extend(layer.parameters());
    }
    params
}

impl SequenceRegressor {
    /// Build a trainable regressor.
    ///
    /// `head_dims` are the hidden/output widths after the encoder, e.g.
    /// `[16, 1]` for the Performance Predictor. For the Transformer encoder
    /// the model width equals `emb_dim` and `hidden` is ignored.
    pub fn new(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        kind: EncoderKind,
        head_dims: &[usize],
        lr: f64,
        seed: u64,
    ) -> Self {
        assert!(!head_dims.is_empty(), "head needs at least an output layer");
        let mut rng = init::rng(seed);
        let emb = Embedding::new(vocab, emb_dim, &mut rng);
        let (enc, enc_out) = match kind {
            EncoderKind::Lstm { layers } => {
                (Encoder::Lstm(Lstm::new(emb_dim, hidden, layers, &mut rng)), hidden)
            }
            EncoderKind::Rnn { layers } => {
                (Encoder::Rnn(Rnn::new(emb_dim, hidden, layers, &mut rng)), hidden)
            }
            EncoderKind::Gru { layers } => {
                (Encoder::Gru(Gru::new(emb_dim, hidden, layers, &mut rng)), hidden)
            }
            EncoderKind::Transformer { heads, blocks } => {
                let bs =
                    (0..blocks).map(|_| TransformerBlock::new(emb_dim, heads, &mut rng)).collect();
                (Encoder::Transformer(bs), emb_dim)
            }
        };
        let mut head = Vec::with_capacity(head_dims.len());
        let mut prev = enc_out;
        for (i, &d) in head_dims.iter().enumerate() {
            let act = if i + 1 == head_dims.len() { Activation::Linear } else { Activation::Relu };
            head.push(Dense::new(prev, d, act, &mut rng));
            prev = d;
        }
        SequenceRegressor {
            emb,
            enc,
            head,
            opt: Adam::new(lr),
            kind,
            cache_pool_len: 0,
            ws: RefCell::new(NnWorkspace::new()),
        }
    }

    /// Build a **frozen random target network** for random network
    /// distillation: LSTM encoder and head are orthogonally initialised
    /// with `gain` (paper: 16.0) and never trained.
    pub fn new_orthogonal_target(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        layers: usize,
        head_dims: &[usize],
        gain: f64,
        seed: u64,
    ) -> Self {
        let mut rng = init::rng(seed);
        let emb = Embedding::new(vocab, emb_dim, &mut rng);
        let enc = Encoder::Lstm(Lstm::new_orthogonal(emb_dim, hidden, layers, gain, &mut rng));
        let mut head = Vec::with_capacity(head_dims.len());
        let mut prev = hidden;
        for (i, &d) in head_dims.iter().enumerate() {
            let act = if i + 1 == head_dims.len() { Activation::Linear } else { Activation::Tanh };
            head.push(Dense::new_orthogonal(prev, d, act, gain / (i + 1) as f64, &mut rng));
            prev = d;
        }
        SequenceRegressor {
            emb,
            enc,
            head,
            opt: Adam::new(0.0),
            kind: EncoderKind::Lstm { layers },
            cache_pool_len: 0,
            ws: RefCell::new(NnWorkspace::new()),
        }
    }

    /// Encoder variant.
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// Output dimension of the head.
    pub fn out_dim(&self) -> usize {
        self.head.last().unwrap().out_dim()
    }

    /// Whether the encoder supports incremental (state-resumable) encoding.
    /// Recurrent encoders do; the Transformer re-attends over the whole
    /// sequence and cannot resume from a fixed-size state.
    pub fn supports_incremental(&self) -> bool {
        !matches!(self.kind, EncoderKind::Transformer { .. })
    }

    /// Snapshot all trainable parameters (stable embedding → encoder → head
    /// order) plus the Adam state. The capture is bitwise exact.
    pub fn save_state(&mut self) -> crate::snapshot::NetState {
        let params = collect_params(&mut self.emb, &mut self.enc, &mut self.head);
        crate::snapshot::capture(&params, &self.opt)
    }

    /// Restore a [`SequenceRegressor::save_state`] snapshot. Fails if the
    /// snapshot was taken from a differently-shaped network.
    pub fn load_state(&mut self, state: &crate::snapshot::NetState) -> Result<(), String> {
        let params = collect_params(&mut self.emb, &mut self.enc, &mut self.head);
        crate::snapshot::restore(params, &mut self.opt, state)
    }

    /// Whether every live weight is finite (post-training divergence guard).
    pub fn params_finite(&mut self) -> bool {
        let params = collect_params(&mut self.emb, &mut self.enc, &mut self.head);
        crate::snapshot::params_finite(&params)
    }

    fn encode_infer(&self, tokens: &[usize]) -> Matrix {
        assert!(!tokens.is_empty(), "empty token sequence");
        let mut x = self.emb.infer(tokens);
        match &self.enc {
            Encoder::Lstm(l) => l.infer(&x),
            Encoder::Rnn(r) => r.infer(&x),
            Encoder::Gru(g) => g.infer(&x),
            Encoder::Transformer(blocks) => {
                add_positional_encoding(&mut x);
                let mut h = x;
                for b in blocks {
                    h = b.infer(&h);
                }
                h
            }
        }
    }

    fn pool(kind: EncoderKind, h: &Matrix) -> Vec<f64> {
        match kind {
            // Recurrent encoders: last hidden state.
            EncoderKind::Lstm { .. } | EncoderKind::Rnn { .. } | EncoderKind::Gru { .. } => {
                h.row(h.rows - 1).to_vec()
            }
            // Transformer: mean over positions.
            EncoderKind::Transformer { .. } => {
                let mut v = vec![0.0; h.cols];
                for r in 0..h.rows {
                    for (a, &b) in v.iter_mut().zip(h.row(r)) {
                        *a += b;
                    }
                }
                let inv = 1.0 / h.rows as f64;
                v.iter().map(|a| a * inv).collect()
            }
        }
    }

    /// Run the dense head on a pooled encoder state, writing into `out`.
    /// Plain k-ascending accumulation so every scoring path sums in the same
    /// order.
    fn head_infer_into(&self, pooled: &[f64], out: &mut [f64], ws: &mut NnWorkspace) {
        let mut cur = ws.take(pooled.len());
        cur.copy_from_slice(pooled);
        for layer in &self.head {
            let w = &layer.w.value;
            let mut next = ws.take(w.cols);
            next.copy_from_slice(&layer.b.value.data);
            w.addmm_into(&cur, 1, &mut next);
            for v in next.iter_mut() {
                *v = layer.act.apply(*v);
            }
            ws.give(cur);
            cur = next;
        }
        out.copy_from_slice(&cur);
        ws.give(cur);
    }

    /// Predict head outputs for a token sequence (no caching; `&self`).
    pub fn predict(&self, tokens: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; self.out_dim()];
        self.predict_into(tokens, &mut out);
        out
    }

    /// [`SequenceRegressor::predict`] writing into a caller-provided slice;
    /// draws all scratch from the internal workspace so steady-state scoring
    /// allocates nothing.
    pub fn predict_into(&self, tokens: &[usize], out: &mut [f64]) {
        assert!(!tokens.is_empty(), "empty token sequence");
        assert_eq!(out.len(), self.out_dim(), "output slice dim mismatch");
        if !self.supports_incremental() {
            let h = self.encode_infer(tokens);
            let pooled = Self::pool(self.kind, &h);
            let ws = &mut *self.ws.borrow_mut();
            self.head_infer_into(&pooled, out, ws);
            return;
        }
        let ws = &mut *self.ws.borrow_mut();
        let mut x = ws.take_matrix(tokens.len(), self.emb.dim());
        self.emb.infer_into(tokens, &mut x);
        let h = match &self.enc {
            Encoder::Lstm(l) => l.infer_batch(&x, 1, None, None, ws),
            Encoder::Rnn(r) => r.infer_batch(&x, 1, None, None, ws),
            Encoder::Gru(g) => g.infer_batch(&x, 1, None, None, ws),
            Encoder::Transformer(_) => unreachable!("checked supports_incremental"),
        };
        ws.give_matrix(x);
        self.head_infer_into(h.row(h.rows - 1), out, ws);
        ws.give_matrix(h);
    }

    /// Score many sequences at once. Sequences are bucketed by length and
    /// each bucket runs as one fused time-major pass, so the per-timestep
    /// GEMMs amortise over all lanes. Every output is bitwise-identical to
    /// calling [`SequenceRegressor::predict`] per sequence.
    pub fn predict_batch(&self, seqs: &[&[usize]]) -> Vec<Vec<f64>> {
        let k = self.out_dim();
        let mut out = vec![vec![0.0; k]; seqs.len()];
        if !self.supports_incremental() {
            for (seq, o) in seqs.iter().zip(out.iter_mut()) {
                self.predict_into(seq, o);
            }
            return out;
        }
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in seqs.iter().enumerate() {
            assert!(!s.is_empty(), "empty token sequence");
            buckets.entry(s.len()).or_default().push(i);
        }
        let ws = &mut *self.ws.borrow_mut();
        for (&t_len, idxs) in &buckets {
            let lanes = idxs.len();
            let bucket: Vec<&[usize]> = idxs.iter().map(|&i| seqs[i]).collect();
            let mut x = ws.take_matrix(t_len * lanes, self.emb.dim());
            self.emb.infer_batch_into(&bucket, &mut x);
            let h = match &self.enc {
                Encoder::Lstm(l) => l.infer_batch(&x, lanes, None, None, ws),
                Encoder::Rnn(r) => r.infer_batch(&x, lanes, None, None, ws),
                Encoder::Gru(g) => g.infer_batch(&x, lanes, None, None, ws),
                Encoder::Transformer(_) => unreachable!("checked supports_incremental"),
            };
            ws.give_matrix(x);
            for (bi, &i) in idxs.iter().enumerate() {
                self.head_infer_into(h.row((t_len - 1) * lanes + bi), &mut out[i], ws);
            }
            ws.give_matrix(h);
        }
        out
    }

    /// Encode `suffix` starting from `prefix` (or from scratch when `None`),
    /// returning the resulting encoder state. The state after
    /// `encode_state(None, &s[..k])` followed by `encode_state(Some(..), &s[k..])`
    /// is bitwise-identical to `encode_state(None, &s)`.
    ///
    /// # Panics
    /// Panics for Transformer encoders (see
    /// [`SequenceRegressor::supports_incremental`]) or an empty suffix.
    pub fn encode_state(&self, prefix: Option<&EncoderState>, suffix: &[usize]) -> EncoderState {
        assert!(self.supports_incremental(), "incremental encoding needs a recurrent encoder");
        assert!(!suffix.is_empty(), "empty suffix");
        let ws = &mut *self.ws.borrow_mut();
        let mut x = ws.take_matrix(suffix.len(), self.emb.dim());
        self.emb.infer_into(suffix, &mut x);
        let init: Option<Vec<&[LayerState]>> = prefix.map(|p| vec![p.layers.as_slice()]);
        let mut states: Vec<Vec<LayerState>> = Vec::new();
        let h = match &self.enc {
            Encoder::Lstm(l) => l.infer_batch(&x, 1, init.as_deref(), Some(&mut states), ws),
            Encoder::Rnn(r) => r.infer_batch(&x, 1, init.as_deref(), Some(&mut states), ws),
            Encoder::Gru(g) => g.infer_batch(&x, 1, init.as_deref(), Some(&mut states), ws),
            Encoder::Transformer(_) => unreachable!("checked supports_incremental"),
        };
        ws.give_matrix(x);
        ws.give_matrix(h);
        EncoderState {
            layers: states.pop().expect("one lane"),
            len: prefix.map_or(0, EncoderState::len) + suffix.len(),
        }
    }

    /// Run the head on a saved encoder state (last layer's hidden is the
    /// pooled representation, as in [`SequenceRegressor::predict`]).
    pub fn predict_state_into(&self, state: &EncoderState, out: &mut [f64]) {
        assert_eq!(out.len(), self.out_dim(), "output slice dim mismatch");
        let ws = &mut *self.ws.borrow_mut();
        self.head_infer_into(&state.layers.last().expect("non-empty state").h, out, ws);
    }

    /// Forward + backward for one example, accumulating parameter gradients
    /// without applying an optimizer update. Returns the example's MSE loss.
    pub fn accumulate_gradients(&mut self, tokens: &[usize], target: &[f64]) -> f64 {
        assert!(!tokens.is_empty(), "empty token sequence");
        assert_eq!(target.len(), self.out_dim(), "target dim mismatch");
        let ws = self.ws.get_mut();
        // Forward with caches.
        let mut x = self.emb.forward(tokens);
        let h = match &mut self.enc {
            Encoder::Lstm(l) => l.forward_ws(&x, ws),
            Encoder::Rnn(r) => r.forward_ws(&x, ws),
            Encoder::Gru(g) => g.forward_ws(&x, ws),
            Encoder::Transformer(blocks) => {
                add_positional_encoding(&mut x);
                let mut h = x.clone();
                for b in blocks.iter_mut() {
                    h = b.forward(&h);
                }
                h
            }
        };
        self.cache_pool_len = h.rows;
        let pooled = Self::pool(self.kind, &h);
        ws.give_matrix(h);
        let mut y = Matrix::row_vector(pooled);
        for layer in &mut self.head {
            y = layer.forward(&y);
        }
        // MSE loss and gradient.
        let k = target.len() as f64;
        let loss = y.data.iter().zip(target).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / k;
        let mut dy =
            Matrix::row_vector(y.data.iter().zip(target).map(|(p, t)| 2.0 * (p - t) / k).collect());
        // Backward.
        for layer in self.head.iter_mut().rev() {
            dy = layer.backward(&dy);
        }
        let d_pooled = dy; // 1 × enc_out
        let t_len = self.cache_pool_len;
        let dh = match self.kind {
            EncoderKind::Lstm { .. } | EncoderKind::Rnn { .. } | EncoderKind::Gru { .. } => {
                let mut dh = ws.take_matrix(t_len, d_pooled.cols);
                dh.row_mut(t_len - 1).copy_from_slice(d_pooled.row(0));
                dh
            }
            EncoderKind::Transformer { .. } => {
                let mut dh = ws.take_matrix(t_len, d_pooled.cols);
                let inv = 1.0 / t_len as f64;
                for r in 0..t_len {
                    for (d, &g) in dh.row_mut(r).iter_mut().zip(d_pooled.row(0)) {
                        *d = g * inv;
                    }
                }
                dh
            }
        };
        let dx = match &mut self.enc {
            Encoder::Lstm(l) => l.backward_ws(&dh, ws),
            Encoder::Rnn(r) => r.backward_ws(&dh, ws),
            Encoder::Gru(g) => g.backward_ws(&dh, ws),
            Encoder::Transformer(blocks) => {
                let mut d = dh.clone();
                for b in blocks.iter_mut().rev() {
                    d = b.backward(&d);
                }
                d
            }
        };
        ws.give_matrix(dh);
        self.emb.backward(&dx);
        ws.give_matrix(dx);
        loss
    }

    /// One gradient step minimising MSE against `target`; returns the loss
    /// **before** the update.
    pub fn train_step(&mut self, tokens: &[usize], target: &[f64]) -> f64 {
        let loss = self.accumulate_gradients(tokens, target);
        let params = collect_params(&mut self.emb, &mut self.enc, &mut self.head);
        self.opt.step(params);
        loss
    }

    /// One optimizer step over a minibatch: gradient accumulation fans out
    /// over `runtime` in fixed-size chunks of 8 examples, each chunk running
    /// on its own clone of the model, and the chunk gradients are reduced in
    /// chunk order and scaled by `1/n` before a single Adam step. The chunk
    /// size and reduction order are independent of the worker count, so the
    /// result is identical for any `Runtime` size. Returns the mean
    /// pre-update loss.
    pub fn train_minibatch(&mut self, items: &[(&[usize], &[f64])], runtime: &Runtime) -> f64 {
        assert!(!items.is_empty(), "empty minibatch");
        const CHUNK: usize = 8;
        type Job<'a> = (SequenceRegressor, &'a [(&'a [usize], &'a [f64])]);
        let jobs: Vec<Job> = items.chunks(CHUNK).map(|c| (self.clone(), c)).collect();
        let results: Vec<(f64, Vec<Vec<f64>>)> = runtime.par_map(jobs, |(mut model, chunk)| {
            let mut loss = 0.0;
            for (tokens, target) in chunk {
                loss += model.accumulate_gradients(tokens, target);
            }
            let grads = collect_params(&mut model.emb, &mut model.enc, &mut model.head)
                .iter()
                .map(|p| p.grad.data.clone())
                .collect();
            (loss, grads)
        });
        let inv = 1.0 / items.len() as f64;
        let mut params = collect_params(&mut self.emb, &mut self.enc, &mut self.head);
        for p in params.iter_mut() {
            p.zero_grad();
        }
        let mut total_loss = 0.0;
        for (loss, grads) in &results {
            total_loss += loss;
            for (p, g) in params.iter_mut().zip(grads) {
                for (pv, gv) in p.grad.data.iter_mut().zip(g) {
                    *pv += gv * inv;
                }
            }
        }
        self.opt.step(params);
        total_loss * inv
    }

    /// Total trainable parameter count (Fig. 11 memory accounting).
    pub fn n_params(&self) -> usize {
        let enc = match &self.enc {
            Encoder::Lstm(l) => l.n_params(),
            Encoder::Rnn(r) => r.n_params(),
            Encoder::Gru(g) => g.n_params(),
            Encoder::Transformer(blocks) => blocks.iter().map(TransformerBlock::n_params).sum(),
        };
        self.emb.n_params() + enc + self.head.iter().map(Dense::n_params).sum::<usize>()
    }

    /// Estimated forward-pass activation footprint in bytes for a sequence
    /// of `seq_len` tokens (Fig. 11a: memory as a function of sequence
    /// length). Counts `f64` buffers actually materialised by `forward`.
    pub fn activation_bytes(&self, seq_len: usize) -> usize {
        let emb_dim = self.emb.dim();
        let f = std::mem::size_of::<f64>();
        let emb_act = seq_len * emb_dim;
        let enc_act = match &self.enc {
            // Per layer per step: gates 4H + cell H + hidden H.
            Encoder::Lstm(l) => {
                let h = l.hidden();
                // layer count = params / per-layer params is awkward; derive
                // from the parameter structure instead.
                let per_layer_state = 6 * h;
                let layers = match self.kind {
                    EncoderKind::Lstm { layers } => layers,
                    _ => 1,
                };
                layers * seq_len * per_layer_state
            }
            Encoder::Rnn(r) => {
                let h = r.hidden();
                let layers = match self.kind {
                    EncoderKind::Rnn { layers } => layers,
                    _ => 1,
                };
                layers * seq_len * h
            }
            // Per layer per step: gates 3H + candidate linear H + hidden H.
            Encoder::Gru(g) => {
                let h = g.hidden();
                let layers = match self.kind {
                    EncoderKind::Gru { layers } => layers,
                    _ => 1,
                };
                layers * seq_len * 5 * h
            }
            // Attention materialises T×T per head plus Q/K/V and FFN buffers.
            Encoder::Transformer(blocks) => blocks
                .iter()
                .map(|b| {
                    let d = b.dim();
                    // q,k,v,concat + T×T attention + 4d FFN hidden
                    seq_len * (4 * d) + seq_len * seq_len + seq_len * 4 * d
                })
                .sum(),
        };
        let head_act: usize = self.head.iter().map(Dense::out_dim).sum();
        (emb_act + enc_act + head_act) * f
    }

    /// Total memory estimate: parameters + activations, in bytes.
    pub fn memory_bytes(&self, seq_len: usize) -> usize {
        self.n_params() * std::mem::size_of::<f64>() + self.activation_bytes(seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx::StdRng;

    /// Target function: fraction of even tokens in the sequence.
    fn target_of(tokens: &[usize]) -> f64 {
        tokens.iter().filter(|&&t| t % 2 == 0).count() as f64 / tokens.len() as f64
    }

    fn random_tokens(rng: &mut StdRng, vocab: usize) -> Vec<usize> {
        let len = rng.gen_range(3..10);
        (0..len).map(|_| rng.gen_range(0..vocab)).collect()
    }

    fn trains_to_low_loss(kind: EncoderKind) {
        let vocab = 12;
        let mut m = SequenceRegressor::new(vocab, 8, 8, kind, &[8, 1], 0.01, 1);
        let mut rng = init::rng(2);
        let data: Vec<Vec<usize>> = (0..40).map(|_| random_tokens(&mut rng, vocab)).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..30 {
            let mut total = 0.0;
            for toks in &data {
                total += m.train_step(toks, &[target_of(toks)]);
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < 0.5 * first, "{}: first {first}, last {last}", kind.label());
    }

    #[test]
    fn lstm_regressor_trains() {
        trains_to_low_loss(EncoderKind::Lstm { layers: 2 });
    }

    #[test]
    fn rnn_regressor_trains() {
        trains_to_low_loss(EncoderKind::Rnn { layers: 2 });
    }

    #[test]
    fn gru_regressor_trains() {
        trains_to_low_loss(EncoderKind::Gru { layers: 2 });
    }

    #[test]
    fn transformer_regressor_trains() {
        trains_to_low_loss(EncoderKind::Transformer { heads: 2, blocks: 1 });
    }

    #[test]
    fn predict_is_pure() {
        let m =
            SequenceRegressor::new(10, 8, 8, EncoderKind::Lstm { layers: 2 }, &[16, 1], 0.01, 3);
        let toks = vec![1, 2, 3];
        assert_eq!(m.predict(&toks), m.predict(&toks));
    }

    #[test]
    fn predict_into_matches_predict() {
        for kind in [
            EncoderKind::Lstm { layers: 2 },
            EncoderKind::Gru { layers: 2 },
            EncoderKind::Rnn { layers: 1 },
            EncoderKind::Transformer { heads: 2, blocks: 1 },
        ] {
            let m = SequenceRegressor::new(10, 8, 8, kind, &[8, 1], 0.01, 3);
            let toks = [1usize, 2, 3, 4, 5];
            let mut out = [0.0];
            m.predict_into(&toks, &mut out);
            assert_eq!(out.to_vec(), m.predict(&toks), "{}", kind.label());
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let m = SequenceRegressor::new(10, 8, 8, EncoderKind::Lstm { layers: 2 }, &[8, 1], 0.01, 5);
        let seqs: Vec<Vec<usize>> =
            vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8], vec![9], vec![2, 4]];
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        let batched = m.predict_batch(&refs);
        for (seq, b) in seqs.iter().zip(&batched) {
            assert_eq!(*b, m.predict(seq));
        }
    }

    #[test]
    fn encode_state_resumes_bitwise() {
        for kind in [
            EncoderKind::Lstm { layers: 2 },
            EncoderKind::Gru { layers: 2 },
            EncoderKind::Rnn { layers: 2 },
        ] {
            let m = SequenceRegressor::new(10, 8, 8, kind, &[8, 1], 0.01, 7);
            let toks = [3usize, 1, 4, 1, 5, 9];
            let cold = m.encode_state(None, &toks);
            let prefix = m.encode_state(None, &toks[..4]);
            assert_eq!(prefix.len(), 4);
            let resumed = m.encode_state(Some(&prefix), &toks[4..]);
            assert_eq!(resumed.len(), 6);
            let mut a = [0.0];
            let mut b = [0.0];
            m.predict_state_into(&cold, &mut a);
            m.predict_state_into(&resumed, &mut b);
            assert_eq!(a, b, "{}", kind.label());
            // State-based scoring equals the plain predict path.
            assert_eq!(a.to_vec(), m.predict(&toks), "{}", kind.label());
        }
    }

    #[test]
    fn minibatch_matches_across_worker_counts() {
        let items: Vec<(Vec<usize>, Vec<f64>)> = (0..20)
            .map(|i| {
                let toks: Vec<usize> = (0..3 + i % 4).map(|j| (i + j) % 10).collect();
                let t = target_of(&toks);
                (toks, vec![t])
            })
            .collect();
        let run = |threads: usize| {
            let mut m = SequenceRegressor::new(
                10,
                8,
                8,
                EncoderKind::Lstm { layers: 2 },
                &[8, 1],
                0.01,
                11,
            );
            let rt = Runtime::new(threads);
            let mut losses = Vec::new();
            for _ in 0..3 {
                let batch: Vec<(&[usize], &[f64])> =
                    items.iter().map(|(t, y)| (t.as_slice(), y.as_slice())).collect();
                losses.push(m.train_minibatch(&batch, &rt));
            }
            (losses, m.predict(&[1, 2, 3, 4]))
        };
        assert_eq!(run(1), run(4), "minibatch training must not depend on worker count");
    }

    #[test]
    fn orthogonal_target_is_nontrivial_and_fixed() {
        let t = SequenceRegressor::new_orthogonal_target(10, 8, 8, 2, &[1], 16.0, 4);
        let a = t.predict(&[1, 2, 3]);
        let b = t.predict(&[3, 2, 1]);
        assert_eq!(a.len(), 1);
        assert!(a[0].is_finite());
        // Different sequences map to different outputs (w.h.p. for an
        // orthogonal random net).
        assert_ne!(a, b);
        // Same input, same output (frozen).
        assert_eq!(a, t.predict(&[1, 2, 3]));
    }

    #[test]
    fn distillation_reduces_error_on_seen_sequences() {
        // RND sanity: train the estimator to match the frozen target on a
        // small set; prediction error on those sequences must fall.
        let vocab = 10;
        let target = SequenceRegressor::new_orthogonal_target(vocab, 8, 8, 2, &[1], 4.0, 5);
        let mut est = SequenceRegressor::new(
            vocab,
            8,
            8,
            EncoderKind::Lstm { layers: 2 },
            &[8, 4, 1],
            0.01,
            6,
        );
        let mut rng = init::rng(7);
        let seen: Vec<Vec<usize>> = (0..15).map(|_| random_tokens(&mut rng, vocab)).collect();
        let err = |est: &SequenceRegressor| -> f64 {
            seen.iter()
                .map(|t| {
                    let d = est.predict(t)[0] - target.predict(t)[0];
                    d * d
                })
                .sum()
        };
        let before = err(&est);
        for _ in 0..40 {
            for toks in &seen {
                let t = target.predict(toks);
                est.train_step(toks, &t);
            }
        }
        let after = err(&est);
        assert!(after < 0.3 * before, "before {before}, after {after}");
    }

    #[test]
    fn memory_grows_slowly_with_sequence_for_lstm() {
        let m =
            SequenceRegressor::new(30, 32, 32, EncoderKind::Lstm { layers: 2 }, &[16, 1], 0.01, 8);
        let m10 = m.memory_bytes(10);
        let m100 = m.memory_bytes(100);
        // Recurrent activations are linear in T and dominated by parameters.
        assert!(m100 < 3 * m10, "m10 {m10}, m100 {m100}");
    }

    #[test]
    fn transformer_memory_grows_quadratically() {
        let m = SequenceRegressor::new(
            30,
            32,
            32,
            EncoderKind::Transformer { heads: 2, blocks: 1 },
            &[16, 1],
            0.01,
            9,
        );
        let a10 = m.activation_bytes(10);
        let a100 = m.activation_bytes(100);
        assert!(a100 > 10 * a10, "a10 {a10}, a100 {a100}");
    }

    #[test]
    #[should_panic]
    fn empty_sequence_panics() {
        let m = SequenceRegressor::new(5, 4, 4, EncoderKind::Lstm { layers: 1 }, &[1], 0.01, 10);
        let _ = m.predict(&[]);
    }
}
