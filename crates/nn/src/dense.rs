//! Fully-connected layer with optional fused activation.

use crate::activation::Activation;
use crate::init;
use crate::matrix::{Matrix, Tensor};
use fastft_tabular::rngx::StdRng;

/// `y = act(x @ W + b)` with `W: in×out`, `b: 1×out`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix (`in_dim × out_dim`).
    pub w: Tensor,
    /// Bias row (`1 × out_dim`).
    pub b: Tensor,
    /// Fused activation.
    pub act: Activation,
    cache_x: Option<Matrix>,
    cache_y: Option<Matrix>,
}

impl Dense {
    /// Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut StdRng) -> Self {
        Dense {
            w: Tensor::from_matrix(init::xavier(rng, in_dim, out_dim)),
            b: Tensor::zeros(1, out_dim),
            act,
            cache_x: None,
            cache_y: None,
        }
    }

    /// Orthogonally-initialised layer (used by the RND target network).
    pub fn new_orthogonal(
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        gain: f64,
        rng: &mut StdRng,
    ) -> Self {
        Dense {
            w: Tensor::from_matrix(init::orthogonal(rng, in_dim, out_dim, gain)),
            b: Tensor::zeros(1, out_dim),
            act,
            cache_x: None,
            cache_y: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols
    }

    /// Forward pass; caches input and output for [`Dense::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(&self.b.value.data);
        let y = self.act.forward(&y);
        self.cache_x = Some(x.clone());
        self.cache_y = Some(y.clone());
        y
    }

    /// Forward without caching (inference-only path).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(&self.b.value.data);
        self.act.forward(&y)
    }

    /// Backward pass: accumulate `dW`, `db`, return `dX`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let y = self.cache_y.as_ref().expect("forward before backward");
        let dz = self.act.backward(y, dy);
        // dW = xᵀ dz ; db = column sums of dz ; dX = dz Wᵀ
        self.w.grad.add_assign(&x.matmul_tn(&dz));
        for r in 0..dz.rows {
            for (g, d) in self.b.grad.data.iter_mut().zip(dz.row(r)) {
                *g += d;
            }
        }
        dz.matmul_nt(&self.w.value)
    }

    /// Mutable views of the trainable tensors (optimizer input).
    pub fn parameters(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    /// Parameter count (for the Fig. 11 memory accounting).
    pub fn n_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = init::rng(1);
        let mut d = Dense::new(3, 2, Activation::Linear, &mut rng);
        d.b.value.data = vec![10.0, 20.0];
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x);
        assert_eq!((y.rows, y.cols), (4, 2));
        assert!(y.data.chunks(2).all(|r| r == [10.0, 20.0]));
    }

    #[test]
    fn gradcheck_linear() {
        let mut rng = init::rng(2);
        let layer = Dense::new(4, 3, Activation::Linear, &mut rng);
        gradcheck::check_dense(layer, 5, 1e-5, 1e-6);
    }

    #[test]
    fn gradcheck_tanh() {
        let mut rng = init::rng(3);
        let layer = Dense::new(3, 5, Activation::Tanh, &mut rng);
        gradcheck::check_dense(layer, 2, 1e-5, 1e-6);
    }

    #[test]
    fn gradcheck_sigmoid() {
        let mut rng = init::rng(4);
        let layer = Dense::new(6, 2, Activation::Sigmoid, &mut rng);
        gradcheck::check_dense(layer, 3, 1e-5, 1e-6);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = init::rng(5);
        let mut d = Dense::new(2, 2, Activation::Linear, &mut rng);
        let x = Matrix::row_vector(vec![1.0, 2.0]);
        let dy = Matrix::row_vector(vec![1.0, 1.0]);
        d.forward(&x);
        d.backward(&dy);
        let g1 = d.w.grad.clone();
        d.forward(&x);
        d.backward(&dy);
        for (a, b) in d.w.grad.data.iter().zip(&g1.data) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = init::rng(6);
        let mut d = Dense::new(3, 3, Activation::Relu, &mut rng);
        let x = Matrix::row_vector(vec![0.5, -1.0, 2.0]);
        assert_eq!(d.forward(&x).data, d.infer(&x).data);
    }
}
