//! Unfused, per-timestep reference implementations of the recurrent
//! encoders — the pre-fusion kernels kept verbatim (allocating per-step
//! buffers, scalar zero-skip loops, no hoisted GEMMs).
//!
//! They exist for two reasons: the parity suite checks the fused kernels in
//! `lstm`/`gru`/`rnn` against them, and `fastft-bench --bench nn` uses them
//! as the pre-PR baseline when reporting speedups. They must stay
//! mathematically identical to the fused forward passes.

use crate::activation::sigmoid;
use crate::gru::{Gru, GruLayer};
use crate::lstm::{Lstm, LstmLayer};
use crate::matrix::Matrix;
use crate::rnn::{Rnn, RnnLayer};

/// Unfused forward of one LSTM layer (`T × in_dim` → `T × hidden`).
pub fn lstm_layer_forward(layer: &LstmLayer, x: &Matrix) -> Matrix {
    let t_len = x.rows;
    let h = layer.hidden();
    let mut h_prev = vec![0.0; h];
    let mut c_prev = vec![0.0; h];
    let mut out = Matrix::zeros(t_len, h);
    for t in 0..t_len {
        let mut z = layer.b.value.data.clone();
        for (k, &xv) in x.row(t).iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (zv, &wv) in z.iter_mut().zip(layer.wx.value.row(k)) {
                *zv += xv * wv;
            }
        }
        for (k, &hv) in h_prev.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            for (zv, &wv) in z.iter_mut().zip(layer.wh.value.row(k)) {
                *zv += hv * wv;
            }
        }
        let mut c_t = vec![0.0; h];
        let mut h_t = vec![0.0; h];
        for j in 0..h {
            let i = sigmoid(z[j]);
            let f = sigmoid(z[h + j]);
            let g = z[2 * h + j].tanh();
            let o = sigmoid(z[3 * h + j]);
            c_t[j] = f * c_prev[j] + i * g;
            h_t[j] = o * c_t[j].tanh();
        }
        out.row_mut(t).copy_from_slice(&h_t);
        h_prev = h_t;
        c_prev = c_t;
    }
    out
}

/// Unfused forward through an LSTM stack.
pub fn lstm_forward(net: &Lstm, x: &Matrix) -> Matrix {
    let mut h = x.clone();
    for layer in net.layers() {
        h = lstm_layer_forward(layer, &h);
    }
    h
}

/// Unfused forward of one GRU layer.
pub fn gru_layer_forward(layer: &GruLayer, x: &Matrix) -> Matrix {
    let t_len = x.rows;
    let h = layer.hidden();
    let mut out = Matrix::zeros(t_len, h);
    let mut h_prev = vec![0.0; h];
    for t in 0..t_len {
        let mut zx = layer.b.value.data.clone();
        for (k, &xv) in x.row(t).iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (zv, &wv) in zx.iter_mut().zip(layer.wx.value.row(k)) {
                *zv += xv * wv;
            }
        }
        let mut zh = vec![0.0; 3 * h];
        for (k, &hv) in h_prev.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            for (zv, &wv) in zh.iter_mut().zip(layer.wh.value.row(k)) {
                *zv += hv * wv;
            }
        }
        let mut h_t = vec![0.0; h];
        for j in 0..h {
            let r = sigmoid(zx[j] + zh[j]);
            let z = sigmoid(zx[h + j] + zh[h + j]);
            let n = (zx[2 * h + j] + r * zh[2 * h + j]).tanh();
            h_t[j] = (1.0 - z) * n + z * h_prev[j];
        }
        out.row_mut(t).copy_from_slice(&h_t);
        h_prev = h_t;
    }
    out
}

/// Unfused forward through a GRU stack.
pub fn gru_forward(net: &Gru, x: &Matrix) -> Matrix {
    let mut h = x.clone();
    for layer in net.layers() {
        h = gru_layer_forward(layer, &h);
    }
    h
}

/// Unfused forward of one tanh RNN layer.
pub fn rnn_layer_forward(layer: &RnnLayer, x: &Matrix) -> Matrix {
    let t_len = x.rows;
    let h = layer.hidden();
    let mut out = Matrix::zeros(t_len, h);
    let mut h_prev = vec![0.0; h];
    for t in 0..t_len {
        let mut z = layer.b.value.data.clone();
        for (k, &xv) in x.row(t).iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (zv, &wv) in z.iter_mut().zip(layer.wx.value.row(k)) {
                *zv += xv * wv;
            }
        }
        for (k, &hv) in h_prev.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            for (zv, &wv) in z.iter_mut().zip(layer.wh.value.row(k)) {
                *zv += hv * wv;
            }
        }
        for zv in &mut z {
            *zv = zv.tanh();
        }
        out.row_mut(t).copy_from_slice(&z);
        h_prev = z;
    }
    out
}

/// Unfused forward through an RNN stack.
pub fn rnn_forward(net: &Rnn, x: &Matrix) -> Matrix {
    let mut h = x.clone();
    for layer in net.layers() {
        h = rnn_layer_forward(layer, &h);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn seq(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = init::rng(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect())
    }

    #[test]
    fn reference_matches_fused_lstm() {
        let l = Lstm::new(3, 5, 2, &mut init::rng(21));
        let x = seq(9, 3, 22);
        assert_eq!(lstm_forward(&l, &x), l.infer(&x));
    }

    #[test]
    fn reference_matches_fused_gru() {
        let g = Gru::new(3, 5, 2, &mut init::rng(23));
        let x = seq(9, 3, 24);
        assert_eq!(gru_forward(&g, &x), g.infer(&x));
    }

    #[test]
    fn reference_matches_fused_rnn() {
        let r = Rnn::new(3, 5, 2, &mut init::rng(25));
        let x = seq(9, 3, 26);
        assert_eq!(rnn_forward(&r, &x), r.infer(&x));
    }
}
