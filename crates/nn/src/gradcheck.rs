//! Finite-difference gradient checking used by the layer test suites.
//!
//! The scalar objective is `L = Σ c_ij · y_ij` with fixed random
//! coefficients `c`, whose analytic upstream gradient is exactly `c` — so
//! comparing `∂L/∂θ` computed by backprop against central differences
//! validates a layer's entire backward pass.

use crate::dense::Dense;
use crate::init;
use crate::matrix::Matrix;

/// Maximum allowed absolute difference between analytic and numeric
/// gradients given a matching `eps`; callers pass `(eps, tol)`.
pub fn assert_close(analytic: f64, numeric: f64, tol: f64, what: &str) {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    assert!(
        ((analytic - numeric) / denom).abs() < tol,
        "{what}: analytic {analytic} vs numeric {numeric}"
    );
}

/// Run a full gradient check on a dense layer: weights, bias and input.
pub fn check_dense(mut layer: Dense, batch: usize, eps: f64, tol: f64) {
    let mut rng = init::rng(1234);
    let in_dim = layer.in_dim();
    let out_dim = layer.out_dim();
    let x = Matrix::from_vec(
        batch,
        in_dim,
        (0..batch * in_dim).map(|_| rng.gen::<f64>() - 0.5).collect(),
    );
    let c = Matrix::from_vec(
        batch,
        out_dim,
        (0..batch * out_dim).map(|_| rng.gen::<f64>() - 0.5).collect(),
    );
    // Analytic gradients.
    layer.forward(&x);
    let dx = layer.backward(&c);
    // Weight grads.
    for idx in 0..layer.w.value.data.len() {
        let analytic = layer.w.grad.data[idx];
        let orig = layer.w.value.data[idx];
        layer.w.value.data[idx] = orig + eps;
        let plus = objective(&layer, &x, &c);
        layer.w.value.data[idx] = orig - eps;
        let minus = objective(&layer, &x, &c);
        layer.w.value.data[idx] = orig;
        assert_close(analytic, (plus - minus) / (2.0 * eps), tol, "dW");
    }
    // Bias grads.
    for idx in 0..layer.b.value.data.len() {
        let analytic = layer.b.grad.data[idx];
        let orig = layer.b.value.data[idx];
        layer.b.value.data[idx] = orig + eps;
        let plus = objective(&layer, &x, &c);
        layer.b.value.data[idx] = orig - eps;
        let minus = objective(&layer, &x, &c);
        layer.b.value.data[idx] = orig;
        assert_close(analytic, (plus - minus) / (2.0 * eps), tol, "db");
    }
    // Input grads.
    for idx in 0..x.data.len() {
        let mut xp = x.clone();
        xp.data[idx] += eps;
        let plus = objective(&layer, &xp, &c);
        let mut xm = x.clone();
        xm.data[idx] -= eps;
        let minus = objective(&layer, &xm, &c);
        assert_close(dx.data[idx], (plus - minus) / (2.0 * eps), tol, "dX");
    }
}

fn objective(layer: &Dense, x: &Matrix, c: &Matrix) -> f64 {
    let y = layer.infer(x);
    y.data.iter().zip(&c.data).map(|(a, b)| a * b).sum()
}

/// Generic numeric-vs-analytic comparison for sequence models: `f` maps a
/// parameter vector perturbation to the scalar loss; used by LSTM / RNN /
/// Transformer tests where the parameter lives behind `&mut` access.
pub fn central_difference(mut f: impl FnMut(f64) -> f64, eps: f64) -> f64 {
    (f(eps) - f(-eps)) / (2.0 * eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_difference_of_square() {
        // d/dx x² at x=3 with perturbation-style closure.
        let base = 3.0;
        let d = central_difference(|e| (base + e) * (base + e), 1e-6);
        assert!((d - 6.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn assert_close_rejects_mismatch() {
        assert_close(1.0, 2.0, 1e-6, "mismatch");
    }
}
