//! FASTFT itself wrapped in the baseline interface, so harnesses can sweep
//! every method — including ours — through one registry.

use crate::common::{FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::{FastFtConfig, FeatureSet, Session};
use fastft_tabular::{Dataset, FastFtResult};

/// The full FASTFT framework as a [`FeatureTransformMethod`].
#[derive(Debug, Clone)]
pub struct FastFtMethod {
    /// Engine configuration (the evaluator and seed fields are overridden
    /// per run).
    pub cfg: FastFtConfig,
}

impl Default for FastFtMethod {
    fn default() -> Self {
        FastFtMethod { cfg: FastFtConfig::quick() }
    }
}

impl FeatureTransformMethod for FastFtMethod {
    fn name(&self) -> &'static str {
        "FASTFT"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let scope = RunScope::start();
        let cfg = FastFtConfig {
            evaluator: ctx.evaluator.clone(),
            seed: ctx.seed,
            threads: ctx.runtime.threads(),
            ..self.cfg.clone()
        };
        // Compose the staged pipeline explicitly: one validated Session
        // whose worker pool matches the harness runtime.
        let result = Session::new(cfg)?.run(data)?;
        let mut fs = FeatureSet::from_original(data);
        fs.data = result.best_dataset;
        fs.exprs = result.best_exprs;
        let mut out = scope.finish(self.name(), fs, result.best_score, 0.0);
        out.downstream_evals = result.telemetry.downstream_evals;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_core::FastFtConfig;
    use fastft_tabular::datagen;

    #[test]
    fn fastft_method_runs() {
        use fastft_ml::Evaluator;
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 120, 0);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let m = FastFtMethod {
            cfg: FastFtConfig {
                episodes: 3,
                steps_per_episode: 3,
                cold_start_episodes: 1,
                ..FastFtConfig::quick()
            },
        };
        let r = m.run(&d, &RunContext::new(&ev, &rt, 0)).unwrap();
        assert_eq!(r.name, "FASTFT");
        assert!(r.score >= ev.evaluate(&d).unwrap() - 1e-9);
    }
}
