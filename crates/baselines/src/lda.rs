//! LDA baseline: dimensionality reduction by linear projection (§V
//! baseline 3).
//!
//! For discrete tasks we project onto Fisher-style discriminant directions
//! (class-mean differences whitened by total variance, orthogonalised);
//! for regression we fall back to PCA via power iteration, since LDA is
//! undefined without classes. Replaces the feature set entirely — which is
//! why it underperforms in Table I: the projection discards the non-linear
//! structure feature crossing would surface.

use crate::common::{FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::FeatureSet;
use fastft_ml::preprocess::Standardizer;
use fastft_tabular::{Column, Dataset, FastFtResult};

/// LDA / PCA projection baseline.
#[derive(Debug, Clone, Copy)]
pub struct Lda {
    /// Output dimensionality (clamped to `min(d, classes−1)` for discrete
    /// tasks).
    pub k: usize,
}

impl Default for Lda {
    fn default() -> Self {
        Lda { k: 8 }
    }
}

impl FeatureTransformMethod for Lda {
    fn name(&self) -> &'static str {
        "LDA"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        // Deterministic projection: the context seed is unused.
        let mut scope = RunScope::start();
        let d = data.n_features();
        let n = data.n_rows();
        let scaler =
            Standardizer::fit(&data.features.iter().map(|c| c.values.clone()).collect::<Vec<_>>());
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut r = data.row(i);
                scaler.transform_row(&mut r);
                r
            })
            .collect();

        let directions = if data.task.is_discrete() {
            discriminant_directions(&rows, &data.class_labels(), data.n_classes, self.k.min(d))
        } else {
            pca_directions(&rows, self.k.min(d))
        };
        let columns: Vec<Column> = directions
            .iter()
            .enumerate()
            .map(|(j, w)| {
                let values =
                    rows.iter().map(|r| r.iter().zip(w).map(|(a, b)| a * b).sum()).collect();
                Column::new(format!("lda{j}"), values)
            })
            .collect();
        let projected = data.with_features(columns)?;
        let score = scope.evaluate(ctx, &projected)?;
        // The projection has no feature-expression representation; report
        // the original base expressions of the surviving dimensionality.
        let mut fs = FeatureSet::from_original(data);
        fs.data = projected;
        fs.exprs.truncate(fs.data.n_features());
        fs.exprs = fs.exprs.into_iter().take(fs.data.n_features()).collect();
        Ok(scope.finish(self.name(), fs, score, 0.0))
    }
}

/// Class-mean discriminant directions, Gram–Schmidt orthogonalised.
fn discriminant_directions(
    rows: &[Vec<f64>],
    labels: &[usize],
    n_classes: usize,
    k: usize,
) -> Vec<Vec<f64>> {
    let d = rows[0].len();
    let mut means = vec![vec![0.0; d]; n_classes];
    let mut counts = vec![0usize; n_classes];
    for (r, &y) in rows.iter().zip(labels) {
        counts[y] += 1;
        for (m, v) in means[y].iter_mut().zip(r) {
            *m += v;
        }
    }
    for (m, &c) in means.iter_mut().zip(&counts) {
        for v in m.iter_mut() {
            *v /= c.max(1) as f64;
        }
    }
    let global: Vec<f64> = (0..d)
        .map(|j| {
            means.iter().zip(&counts).map(|(m, &c)| m[j] * c as f64).sum::<f64>()
                / rows.len() as f64
        })
        .collect();
    let mut dirs: Vec<Vec<f64>> =
        means.iter().map(|m| m.iter().zip(&global).map(|(a, b)| a - b).collect()).collect();
    orthonormalise(&mut dirs);
    dirs.truncate(k.max(1));
    if dirs.is_empty() {
        dirs.push({
            let mut v = vec![0.0; d];
            v[0] = 1.0;
            v
        });
    }
    dirs
}

/// Top-`k` principal directions via power iteration with deflation.
fn pca_directions(rows: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
    let d = rows[0].len();
    let n = rows.len() as f64;
    // Covariance (data already standardised).
    let mut cov = vec![0.0; d * d];
    for r in rows {
        for i in 0..d {
            for j in i..d {
                cov[i * d + j] += r[i] * r[j] / n;
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            cov[i * d + j] = cov[j * d + i];
        }
    }
    let mut dirs = Vec::with_capacity(k);
    let mut work = cov.clone();
    for c in 0..k.min(d) {
        let mut v: Vec<f64> = (0..d).map(|i| if i == c { 1.0 } else { 0.1 }).collect();
        let mut lambda = 0.0;
        for _ in 0..100 {
            let mut next = vec![0.0; d];
            for i in 0..d {
                next[i] = (0..d).map(|j| work[i * d + j] * v[j]).sum();
            }
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                break;
            }
            lambda = norm;
            for (a, b) in v.iter_mut().zip(&next) {
                *a = b / norm;
            }
        }
        // Deflate: work -= λ v vᵀ
        for i in 0..d {
            for j in 0..d {
                work[i * d + j] -= lambda * v[i] * v[j];
            }
        }
        dirs.push(v);
    }
    dirs
}

fn orthonormalise(vs: &mut Vec<Vec<f64>>) {
    let mut out: Vec<Vec<f64>> = Vec::new();
    for v in vs.iter() {
        let mut w = v.clone();
        for u in &out {
            let dot: f64 = w.iter().zip(u).map(|(a, b)| a * b).sum();
            for (wi, ui) in w.iter_mut().zip(u) {
                *wi -= dot * ui;
            }
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            for wi in &mut w {
                *wi /= norm;
            }
            out.push(w);
        }
    }
    *vs = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    #[test]
    fn lda_runs_on_classification() {
        use fastft_ml::Evaluator;
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 0);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let r = Lda::default().run(&d, &RunContext::new(&ev, &rt, 0)).unwrap();
        assert!((0.0..=1.0).contains(&r.score));
        assert!(r.dataset().n_features() <= 8);
    }

    #[test]
    fn lda_runs_on_regression_via_pca() {
        use fastft_ml::Evaluator;
        let spec = datagen::by_name("openml_620").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 1);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let r = Lda { k: 5 }.run(&d, &RunContext::new(&ev, &rt, 0)).unwrap();
        assert_eq!(r.dataset().n_features(), 5);
        assert!(r.score.is_finite());
    }

    #[test]
    fn pca_directions_are_orthonormal() {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![(i as f64).sin(), (i as f64).cos(), i as f64 / 50.0]).collect();
        let dirs = pca_directions(&rows, 2);
        for (i, a) in dirs.iter().enumerate() {
            let na: f64 = a.iter().map(|x| x * x).sum();
            assert!((na - 1.0).abs() < 1e-6);
            for b in &dirs[i + 1..] {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-4, "dot {dot}");
            }
        }
    }
}
