//! OpenFE baseline (§V baseline 8): feature boosting with two-stage pruning
//! (Zhang et al., ICML 2023).
//!
//! Control flow mirrors the original tool: (1) **enumerate** every
//! first-order candidate — all unary ops over all features and all binary
//! ops over all feature pairs, `|O_u|·d + |O_b|·d²` of them (capped, with
//! random subsampling beyond the cap); (2) **stage 1** — successive halving
//! where each round scores the surviving candidates on a *doubling* data
//! subsample and keeps the better half; (3) **stage 2** — the final
//! survivors are evaluated with the real downstream task in small groups,
//! keeping only group additions that improve the score.
//!
//! Because stage 1 touches every candidate on progressively larger slices
//! of the full dataset, OpenFE's runtime grows with both `d²` and `n` —
//! the scalability bottleneck the paper's Fig. 10 demonstrates.

use crate::common::{FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::{Expr, FeatureSet, Op};
use fastft_tabular::{mi, rngx, Dataset, FastFtResult};

/// Feature boosting + two-stage pruning.
#[derive(Debug, Clone, Copy)]
pub struct OpenFe {
    /// Hard cap on the enumerated candidate pool (the real tool enumerates
    /// everything; the cap keeps worst-case laptop runs bounded).
    pub pool_cap: usize,
    /// Initial stage-1 subsample size (doubles every halving round).
    pub stage1_initial_rows: usize,
    /// Survivors entering stage 2.
    pub stage2_survivors: usize,
    /// Survivors evaluated per stage-2 group.
    pub group_size: usize,
    /// Feature cap.
    pub max_features_factor: f64,
}

impl Default for OpenFe {
    fn default() -> Self {
        OpenFe {
            pool_cap: 4096,
            stage1_initial_rows: 128,
            stage2_survivors: 16,
            group_size: 2,
            max_features_factor: 2.0,
        }
    }
}

impl FeatureTransformMethod for OpenFe {
    fn name(&self) -> &'static str {
        "OpenFE"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let d = data.n_features();
        let n = data.n_rows();
        let cap = (((d as f64) * self.max_features_factor) as usize).max(4);
        let fs = FeatureSet::from_original(data);
        let base_cols = fs.base_columns().to_vec();

        // --- full first-order enumeration -------------------------------
        let mut candidates: Vec<Expr> = Vec::new();
        for op in Op::unary() {
            for i in 0..d {
                candidates.push(Expr::unary(op, Expr::base(i)));
            }
        }
        for op in Op::binary() {
            for i in 0..d {
                // Commutative ops need each unordered pair once.
                let start = if matches!(op, Op::Plus | Op::Multiply) { i } else { 0 };
                for j in start..d {
                    if i == j && matches!(op, Op::Minus | Op::Divide) {
                        continue;
                    }
                    candidates.push(Expr::binary(op, Expr::base(i), Expr::base(j)));
                }
            }
        }
        if candidates.len() > self.pool_cap {
            // Random subsample beyond the cap (partial Fisher–Yates).
            for i in 0..self.pool_cap {
                let j = rng.gen_range(i..candidates.len());
                candidates.swap(i, j);
            }
            candidates.truncate(self.pool_cap);
        }

        // --- stage 1: successive halving on doubling subsamples ---------
        let discrete = data.task.is_discrete();
        let mut rows = self.stage1_initial_rows.min(n);
        let mut pool: Vec<Expr> = candidates;
        while pool.len() > self.stage2_survivors {
            let sub = rngx::sample_without_replacement(&mut rng, n, rows);
            let sub_targets: Vec<f64> = sub.iter().map(|&i| data.targets[i]).collect();
            let mut scored: Vec<(f64, Expr)> = pool
                .into_iter()
                .map(|e| {
                    // Evaluate the candidate on the subsample only — but the
                    // expression itself is computed over those rows of the
                    // full columns, which is what makes stage 1 scale with n
                    // as the rounds progress.
                    let sub_base: Vec<Vec<f64>> =
                        base_cols.iter().map(|c| sub.iter().map(|&i| c[i]).collect()).collect();
                    let mut col = e.eval(&sub_base);
                    fastft_core::transform::sanitize_column(&mut col);
                    let gain = mi::mi_feature_target(&col, &sub_targets, discrete, 10);
                    (gain, e)
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let keep = (scored.len() / 2).max(self.stage2_survivors);
            scored.truncate(keep);
            pool = scored.into_iter().map(|(_, e)| e).collect();
            if rows == n {
                break;
            }
            rows = (rows * 2).min(n);
        }
        pool.truncate(self.stage2_survivors);

        // --- stage 2: grouped downstream evaluation ---------------------
        let mut fs = fs;
        let mut best = scope.evaluate(ctx, &fs.data)?;
        for group in pool.chunks(self.group_size) {
            let snapshot = fs.clone();
            for e in group {
                crate::common::try_add_expr(&mut fs, e.clone());
            }
            fs.select_top(cap, 12);
            let score = scope.evaluate(ctx, &fs.data)?;
            if score > best {
                best = score;
            } else {
                fs = snapshot;
            }
        }
        Ok(scope.finish(self.name(), fs, best, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_ml::Evaluator;
    use fastft_runtime::Runtime;
    use fastft_tabular::datagen;

    #[test]
    fn openfe_runs_and_never_regresses() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 200, 0);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let base = ev.evaluate(&d).unwrap();
        let r = OpenFe { stage2_survivors: 6, ..OpenFe::default() }
            .run(&d, &RunContext::new(&ev, &rt, 1))
            .unwrap();
        assert!(r.score >= base);
        // base + one per stage-2 group (6 survivors / group 2 = 3 groups).
        assert_eq!(r.downstream_evals, 4);
        assert!(r.dataset().n_features() <= 16);
    }

    #[test]
    fn enumeration_scales_with_feature_pairs() {
        // On an 8-feature dataset the full enumeration is 8·8 unary +
        // 2·(8·9/2) + 2·(8·8−8) binary-ish candidates; the method should run
        // the halving rounds without blowing up.
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 300, 2);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let r = OpenFe::default().run(&d, &RunContext::new(&ev, &rt, 3)).unwrap();
        assert!(r.score.is_finite());
        assert!(r.wall_time_secs > 0.0);
    }

    #[test]
    fn stage1_keeps_planted_crossing_often() {
        // The generator plants product/ratio interactions; the survivors
        // should usually include non-base expressions in the final set.
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 300, 4);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let r = OpenFe::default().run(&d, &RunContext::new(&ev, &rt, 5)).unwrap();
        // Either some crossing was kept, or every group was rejected — both
        // are legal outcomes; the score must never drop below base.
        assert!(r.score >= ev.evaluate(&d).unwrap() - 1e-12);
    }
}
