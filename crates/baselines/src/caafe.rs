//! CAAFE baseline simulator (§V baseline 9).
//!
//! CAAFE prompts a large language model with the dataset description and
//! iteratively adds the features it proposes, keeping those that improve a
//! validation score. No LLM is available offline, so this simulator
//! reproduces CAAFE's two experimentally-relevant properties (DESIGN.md §1):
//!
//! 1. **Semantic-prior proposals**: each "LLM call" returns features drawn
//!    from human-plausible templates — ratios, products, log-ratios,
//!    BMI-style composites `a / b²`, differences of scaled pairs — rather
//!    than uniform random expressions.
//! 2. **Constant per-call latency**: every call adds a fixed simulated
//!    round-trip cost, independent of dataset size, which dominates runtime
//!    on small datasets and amortises on large ones (Fig. 10's CAAFE
//!    curve). The latency is *reported*, not slept.

use crate::common::{try_add_expr, FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::{Expr, FeatureSet, Op};
use fastft_tabular::rngx::{self, StdRng};
use fastft_tabular::{Dataset, FastFtResult};

/// Context-aware automated feature engineering, simulated.
#[derive(Debug, Clone, Copy)]
pub struct CaafeSim {
    /// LLM round-trips.
    pub calls: usize,
    /// Features proposed per call.
    pub proposals_per_call: usize,
    /// Simulated seconds per LLM round-trip.
    pub latency_per_call_secs: f64,
    /// Feature cap.
    pub max_features_factor: f64,
}

impl Default for CaafeSim {
    fn default() -> Self {
        CaafeSim {
            calls: 6,
            proposals_per_call: 3,
            latency_per_call_secs: 8.0,
            max_features_factor: 2.0,
        }
    }
}

/// One semantic-template proposal over base features.
fn propose(d: usize, rng: &mut StdRng) -> Expr {
    let a = rng.gen_range(0..d);
    let mut b = rng.gen_range(0..d);
    if b == a {
        b = (b + 1) % d;
    }
    match rng.gen_range(0..6) {
        // ratio a/b — "rate per unit" features
        0 => Expr::binary(Op::Divide, Expr::base(a), Expr::base(b)),
        // product a*b — interaction terms
        1 => Expr::binary(Op::Multiply, Expr::base(a), Expr::base(b)),
        // log-ratio — skewed-scale normalisation
        2 => Expr::binary(
            Op::Minus,
            Expr::unary(Op::Log, Expr::base(a)),
            Expr::unary(Op::Log, Expr::base(b)),
        ),
        // BMI-style composite a / b²
        3 => Expr::binary(Op::Divide, Expr::base(a), Expr::unary(Op::Square, Expr::base(b))),
        // difference
        4 => Expr::binary(Op::Minus, Expr::base(a), Expr::base(b)),
        // squared deviation proxy
        _ => Expr::unary(Op::Square, Expr::binary(Op::Minus, Expr::base(a), Expr::base(b))),
    }
}

impl FeatureTransformMethod for CaafeSim {
    fn name(&self) -> &'static str {
        "CAAFE"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let d = data.n_features();
        let cap = (((d as f64) * self.max_features_factor) as usize).max(4);
        let mut fs = FeatureSet::from_original(data);
        let mut best = scope.evaluate(ctx, &fs.data)?;
        let mut latency = 0.0;
        for _ in 0..self.calls {
            latency += self.latency_per_call_secs;
            let snapshot = fs.clone();
            for _ in 0..self.proposals_per_call {
                let e = propose(d, &mut rng);
                try_add_expr(&mut fs, e);
            }
            fs.select_top(cap, 12);
            // CAAFE keeps a proposal batch only when validation improves.
            let score = scope.evaluate(ctx, &fs.data)?;
            if score > best {
                best = score;
            } else {
                fs = snapshot;
            }
        }
        Ok(scope.finish(self.name(), fs, best, latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    #[test]
    fn caafe_reports_simulated_latency() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 0);
        d.sanitize();
        let ev = fastft_ml::Evaluator { folds: 3, ..fastft_ml::Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let cfg = CaafeSim { calls: 3, latency_per_call_secs: 8.0, ..CaafeSim::default() };
        let r = cfg.run(&d, &RunContext::new(&ev, &rt, 1)).unwrap();
        assert_eq!(r.simulated_latency_secs, 24.0);
        assert!(r.score >= ev.evaluate(&d).unwrap() - 1e-9);
    }

    #[test]
    fn proposals_are_semantic_templates() {
        let mut rng = rngx::rng(2);
        for _ in 0..40 {
            let e = propose(6, &mut rng);
            // Every template involves at least two base reads or a nested op.
            assert!(e.size() >= 3, "{e}");
        }
    }
}
