//! NFS baseline (§V baseline 5): a neural controller trained with
//! REINFORCE generates transformation programs, in the style of "Neural
//! Feature Search" (Chen et al., ICDM 2019).
//!
//! The controller factorises a program into per-slot categorical choices —
//! for each of `n_transforms` slots it picks (head feature, op, tail
//! feature) with learned scoring policies (reusing the workspace's
//! candidate-scoring [`Actor`]) conditioned on a slot-position encoding.
//! Reward is the downstream improvement of the completed program.

use crate::common::{try_add_expr, FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::{Expr, FeatureSet, Op};
use fastft_rl::actor_critic::Actor;
use fastft_tabular::{rngx, Dataset, FastFtResult};

/// RNN-controller-style neural feature search.
#[derive(Debug, Clone, Copy)]
pub struct Nfs {
    /// Programs sampled (each costs one downstream evaluation).
    pub episodes: usize,
    /// Transformations per program.
    pub n_transforms: usize,
    /// Feature cap.
    pub max_features_factor: f64,
    /// Controller learning rate.
    pub lr: f64,
}

impl Default for Nfs {
    fn default() -> Self {
        Nfs { episodes: 10, n_transforms: 4, max_features_factor: 2.0, lr: 0.01 }
    }
}

fn slot_encoding(slot: usize, n_slots: usize, idx: usize, n_idx: usize) -> Vec<f64> {
    // position one-hot ⊕ choice one-hot, padded to fixed widths.
    let mut v = vec![0.0; n_slots + n_idx];
    v[slot] = 1.0;
    v[n_slots + idx] = 1.0;
    v
}

impl FeatureTransformMethod for Nfs {
    fn name(&self) -> &'static str {
        "NFS"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let d = data.n_features();
        let cap = (((d as f64) * self.max_features_factor) as usize).max(4);
        let n_slots = self.n_transforms;
        let feat_dim = n_slots + d;
        let op_dim = n_slots + Op::COUNT;
        let mut head_policy = Actor::new(feat_dim, 32, self.lr, ctx.seed);
        let mut op_policy = Actor::new(op_dim, 32, self.lr, ctx.seed.wrapping_add(1));
        let mut tail_policy = Actor::new(feat_dim, 32, self.lr, ctx.seed.wrapping_add(2));

        let base = scope.evaluate(ctx, data)?;
        let mut best = (base, FeatureSet::from_original(data));
        let mut baseline = 0.0; // running reward baseline

        for _ in 0..self.episodes {
            let mut fs = FeatureSet::from_original(data);
            let mut decisions = Vec::new();
            for slot in 0..n_slots {
                let head_cands: Vec<Vec<f64>> =
                    (0..d).map(|i| slot_encoding(slot, n_slots, i, d)).collect();
                let h = head_policy.select(&head_cands, &mut rng);
                let op_cands: Vec<Vec<f64>> =
                    (0..Op::COUNT).map(|i| slot_encoding(slot, n_slots, i, Op::COUNT)).collect();
                let o = op_policy.select(&op_cands, &mut rng);
                let op = Op::ALL[o];
                let t = if op.is_binary() {
                    let tail_cands: Vec<Vec<f64>> =
                        (0..d).map(|i| slot_encoding(slot, n_slots, i, d)).collect();
                    let t = tail_policy.select(&tail_cands, &mut rng);
                    Some((tail_cands, t))
                } else {
                    None
                };
                let e = if let Some((_, tidx)) = &t {
                    Expr::binary(op, Expr::base(h), Expr::base(*tidx))
                } else {
                    Expr::unary(op, Expr::base(h))
                };
                try_add_expr(&mut fs, e);
                decisions.push((head_cands, h, op_cands, o, t));
            }
            fs.select_top(cap, 12);
            let score = scope.evaluate(ctx, &fs.data)?;
            let reward = score - base;
            let advantage = reward - baseline;
            baseline = 0.8 * baseline + 0.2 * reward;
            for (head_cands, h, op_cands, o, t) in decisions {
                head_policy.update(&head_cands, h, advantage);
                op_policy.update(&op_cands, o, advantage);
                if let Some((tail_cands, tidx)) = t {
                    tail_policy.update(&tail_cands, tidx, advantage);
                }
            }
            if score > best.0 {
                best = (score, fs);
            }
        }
        Ok(scope.finish(self.name(), best.1, best.0, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    #[test]
    fn nfs_runs_and_never_regresses() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 0);
        d.sanitize();
        let ev = fastft_ml::Evaluator { folds: 3, ..fastft_ml::Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let base = ev.evaluate(&d).unwrap();
        let r =
            Nfs { episodes: 3, ..Nfs::default() }.run(&d, &RunContext::new(&ev, &rt, 1)).unwrap();
        assert!(r.score >= base);
        assert_eq!(r.downstream_evals, 4); // base + 3 programs
    }
}
