//! Shared scaffolding for the ten baseline methods.

use fastft_core::{Expr, FeatureSet, Op};
use fastft_ml::Evaluator;
use fastft_tabular::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Outcome of one baseline run.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (Table I column header).
    pub name: &'static str,
    /// Final transformed dataset.
    pub dataset: Dataset,
    /// Traceable expressions of the final feature set.
    pub exprs: Vec<Expr>,
    /// Downstream CV score of the final feature set.
    pub score: f64,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
    /// Simulated external latency (CAAFE's LLM round-trips); reported
    /// separately so harnesses can include it in total runtime.
    pub simulated_latency_secs: f64,
    /// Downstream evaluations performed.
    pub downstream_evals: usize,
}

/// A feature-transformation baseline.
pub trait FeatureTransformMethod {
    /// Table I column name.
    fn name(&self) -> &'static str;

    /// Transform `data` and return the scored result.
    fn run(&self, data: &Dataset, evaluator: &Evaluator, seed: u64) -> MethodResult;
}

/// Helper wrapping the measured sections every method shares.
pub struct RunScope {
    start: Instant,
    /// Downstream evaluations performed so far.
    pub evals: usize,
}

impl RunScope {
    /// Start timing.
    pub fn start() -> Self {
        RunScope { start: Instant::now(), evals: 0 }
    }

    /// Evaluate downstream, counting the call.
    pub fn evaluate(&mut self, evaluator: &Evaluator, data: &Dataset) -> f64 {
        self.evals += 1;
        evaluator.evaluate(data)
    }

    /// Finish, producing a [`MethodResult`].
    pub fn finish(
        self,
        name: &'static str,
        fs: FeatureSet,
        score: f64,
        simulated_latency_secs: f64,
    ) -> MethodResult {
        MethodResult {
            name,
            exprs: fs.exprs,
            dataset: fs.data,
            score,
            elapsed_secs: self.start.elapsed().as_secs_f64(),
            simulated_latency_secs,
            downstream_evals: self.evals,
        }
    }
}

/// Draw a random expression extending the current feature set: a random op
/// applied to random existing expressions.
pub fn random_expr(exprs: &[Expr], rng: &mut StdRng) -> Expr {
    let op = Op::ALL[rng.gen_range(0..Op::COUNT)];
    let a = exprs[rng.gen_range(0..exprs.len())].clone();
    if op.is_unary() {
        Expr::unary(op, a)
    } else {
        let b = exprs[rng.gen_range(0..exprs.len())].clone();
        Expr::binary(op, a, b)
    }
}

/// Evaluate an expression against a feature set's base columns, appending it
/// when it is finite, non-constant and not already present. Returns whether
/// it was added.
pub fn try_add_expr(fs: &mut FeatureSet, e: Expr) -> bool {
    if fs.expr_keys().contains(&e.to_string()) {
        return false;
    }
    let mut col = e.eval(fs.base_columns());
    fastft_core::transform::sanitize_column(&mut col);
    let first = col[0];
    if col.iter().all(|&v| v == first) {
        return false;
    }
    fs.extend(vec![(e, col)]);
    true
}

/// Default per-method iteration budget used by the harnesses; small enough
/// for laptop runs, large enough to differentiate methods.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Generation rounds.
    pub rounds: usize,
    /// Candidates per round.
    pub per_round: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { rounds: 8, per_round: 8 }
    }
}
