//! Shared scaffolding for the ten baseline methods.

use fastft_core::{Expr, FeatureSet, Op};
use fastft_ml::Evaluator;
use fastft_runtime::Runtime;
use fastft_tabular::rngx::StdRng;
use fastft_tabular::{Dataset, FastFtResult};
use std::time::Instant;

/// Everything a method needs to run: the downstream evaluator, the worker
/// pool its cross-validation folds (and any internal fan-out) execute on,
/// and the seed of the run. Built once per harness sweep and shared across
/// methods so results are comparable.
#[derive(Debug, Clone, Copy)]
pub struct RunContext<'a> {
    /// Downstream evaluator shared by every method in a sweep.
    pub evaluator: &'a Evaluator,
    /// Worker pool for CV folds and per-tree parallelism.
    pub runtime: &'a Runtime,
    /// Run seed (methods derive their private RNG streams from it).
    pub seed: u64,
}

impl<'a> RunContext<'a> {
    /// Bundle an evaluator, runtime and seed.
    pub fn new(evaluator: &'a Evaluator, runtime: &'a Runtime, seed: u64) -> Self {
        RunContext { evaluator, runtime, seed }
    }
}

/// Unified outcome of one transformation run — identical shape for every
/// baseline and for FASTFT itself, so Table I/Fig. 9/Fig. 10 harnesses
/// consume one struct.
#[derive(Debug, Clone)]
pub struct TransformOutcome {
    /// Method name (Table I column header).
    pub name: &'static str,
    /// Final feature set: transformed dataset plus traceable expressions.
    pub feature_set: FeatureSet,
    /// Downstream CV score of the final feature set.
    pub score: f64,
    /// Measured wall-clock seconds.
    pub wall_time_secs: f64,
    /// Simulated external latency (CAAFE's LLM round-trips); reported
    /// separately so harnesses can include it in total runtime.
    pub simulated_latency_secs: f64,
    /// Downstream evaluations performed.
    pub downstream_evals: usize,
}

impl TransformOutcome {
    /// The transformed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.feature_set.data
    }

    /// Traceable expressions of the final feature set.
    pub fn exprs(&self) -> &[Expr] {
        &self.feature_set.exprs
    }

    /// Wall-clock plus simulated external latency (Fig. 9/10 runtime).
    pub fn total_time_secs(&self) -> f64 {
        self.wall_time_secs + self.simulated_latency_secs
    }
}

/// A feature-transformation baseline. `Send + Sync` so harnesses can fan
/// method runs out across a [`Runtime`]'s workers.
pub trait FeatureTransformMethod: Send + Sync {
    /// Table I column name.
    fn name(&self) -> &'static str;

    /// Transform `data` under `ctx` and return the scored outcome.
    ///
    /// # Errors
    ///
    /// Propagates [`fastft_tabular::FastFtError`] from downstream
    /// evaluation (degenerate folds, datasets without features).
    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome>;
}

/// Helper wrapping the measured sections every method shares.
pub struct RunScope {
    start: Instant,
    /// Downstream evaluations performed so far.
    pub evals: usize,
}

impl RunScope {
    /// Start timing.
    pub fn start() -> Self {
        RunScope { start: Instant::now(), evals: 0 }
    }

    /// Evaluate downstream on the context's runtime, counting the call.
    pub fn evaluate(&mut self, ctx: &RunContext, data: &Dataset) -> FastFtResult<f64> {
        self.evals += 1;
        ctx.evaluator.evaluate_with(ctx.runtime, data)
    }

    /// Finish, producing a [`TransformOutcome`].
    pub fn finish(
        self,
        name: &'static str,
        fs: FeatureSet,
        score: f64,
        simulated_latency_secs: f64,
    ) -> TransformOutcome {
        TransformOutcome {
            name,
            feature_set: fs,
            score,
            wall_time_secs: self.start.elapsed().as_secs_f64(),
            simulated_latency_secs,
            downstream_evals: self.evals,
        }
    }
}

/// Draw a random expression extending the current feature set: a random op
/// applied to random existing expressions.
pub fn random_expr(exprs: &[Expr], rng: &mut StdRng) -> Expr {
    let op = Op::ALL[rng.gen_range(0..Op::COUNT)];
    let a = exprs[rng.gen_range(0..exprs.len())].clone();
    if op.is_unary() {
        Expr::unary(op, a)
    } else {
        let b = exprs[rng.gen_range(0..exprs.len())].clone();
        Expr::binary(op, a, b)
    }
}

/// Evaluate an expression against a feature set's base columns, appending it
/// when it is finite, non-constant and not already present. Returns whether
/// it was added.
pub fn try_add_expr(fs: &mut FeatureSet, e: Expr) -> bool {
    if fs.expr_keys().contains(&e.to_string()) {
        return false;
    }
    let mut col = e.eval(fs.base_columns());
    fastft_core::transform::sanitize_column(&mut col);
    let first = col[0];
    if col.iter().all(|&v| v == first) {
        return false;
    }
    fs.extend(vec![(e, col)]);
    true
}

/// Default per-method iteration budget used by the harnesses; small enough
/// for laptop runs, large enough to differentiate methods.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Generation rounds.
    pub rounds: usize,
    /// Candidates per round.
    pub per_round: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { rounds: 8, per_round: 8 }
    }
}
