//! Expansion-reduction baselines: **RFG** (random feature generation) and
//! **ERG** (exhaustive expansion + reduction).
//!
//! Both generate a large candidate pool without iterative feedback, reduce
//! it by MI-based selection, and evaluate the final set once — the cheap,
//! unguided end of the paper's baseline spectrum.

use crate::common::{
    random_expr, try_add_expr, Budget, FeatureTransformMethod, RunContext, RunScope,
    TransformOutcome,
};
use fastft_core::{Expr, FeatureSet, Op};
use fastft_tabular::{rngx, Dataset, FastFtResult};

/// RFG: randomly select candidate features and operations (§V baseline 1).
#[derive(Debug, Clone, Copy)]
pub struct Rfg {
    /// Candidate generation budget.
    pub budget: Budget,
    /// Feature cap after reduction.
    pub max_features_factor: f64,
}

impl Default for Rfg {
    fn default() -> Self {
        Rfg { budget: Budget::default(), max_features_factor: 2.0 }
    }
}

impl FeatureTransformMethod for Rfg {
    fn name(&self) -> &'static str {
        "RFG"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let mut fs = FeatureSet::from_original(data);
        let n_candidates = self.budget.rounds * self.budget.per_round;
        for _ in 0..n_candidates {
            let e = random_expr(&fs.exprs, &mut rng);
            try_add_expr(&mut fs, e);
        }
        let cap = ((data.n_features() as f64) * self.max_features_factor) as usize;
        fs.select_top(cap.max(4), 12);
        let score = scope.evaluate(ctx, &fs.data)?;
        Ok(scope.finish(self.name(), fs, score, 0.0))
    }
}

/// ERG: apply operations to all features to expand the space, then select
/// key features (§V baseline 2).
#[derive(Debug, Clone, Copy)]
pub struct Erg {
    /// Number of random binary pairs to add on top of the full unary
    /// expansion.
    pub binary_pairs: usize,
    /// Feature cap after reduction.
    pub max_features_factor: f64,
}

impl Default for Erg {
    fn default() -> Self {
        Erg { binary_pairs: 32, max_features_factor: 2.0 }
    }
}

impl FeatureTransformMethod for Erg {
    fn name(&self) -> &'static str {
        "ERG"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let mut fs = FeatureSet::from_original(data);
        let d = data.n_features();
        // Full unary expansion over all original features.
        for op in Op::unary() {
            for i in 0..d {
                try_add_expr(&mut fs, Expr::unary(op, Expr::base(i)));
            }
        }
        // Random binary crossings over original pairs.
        let binary: Vec<Op> = Op::binary().collect();
        for _ in 0..self.binary_pairs {
            let op = binary[rng.gen_range(0..binary.len())];
            let i = rng.gen_range(0..d);
            let j = rng.gen_range(0..d);
            try_add_expr(&mut fs, Expr::binary(op, Expr::base(i), Expr::base(j)));
        }
        let cap = ((d as f64) * self.max_features_factor) as usize;
        fs.select_top(cap.max(4), 12);
        let score = scope.evaluate(ctx, &fs.data)?;
        Ok(scope.finish(self.name(), fs, score, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_ml::Evaluator;
    use fastft_runtime::Runtime;
    use fastft_tabular::datagen;

    fn data() -> Dataset {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 0);
        d.sanitize();
        d
    }

    #[test]
    fn rfg_produces_scored_result() {
        let d = data();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let r = Rfg::default().run(&d, &RunContext::new(&ev, &rt, 1)).unwrap();
        assert_eq!(r.name, "RFG");
        assert!((0.0..=1.0).contains(&r.score));
        assert!(r.dataset().n_features() >= 4);
        assert_eq!(r.dataset().n_features(), r.exprs().len());
        assert_eq!(r.downstream_evals, 1);
    }

    #[test]
    fn erg_expands_then_reduces() {
        let d = data();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let r = Erg::default().run(&d, &RunContext::new(&ev, &rt, 2)).unwrap();
        // Cap = 2 × 8 original features.
        assert!(r.dataset().n_features() <= 16);
        assert!(r.exprs().iter().any(|e| !e.is_base()), "no generated features survived");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let a = Rfg::default().run(&d, &RunContext::new(&ev, &rt, 7)).unwrap();
        let b = Rfg::default().run(&d, &RunContext::new(&ev, &rt, 7)).unwrap();
        assert_eq!(a.score, b.score);
    }
}
