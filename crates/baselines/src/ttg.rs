//! TTG baseline (§V baseline 6): transformation-graph exploration in the
//! style of Khurana et al. — nodes are feature sets, edges apply one
//! operation set-wide, and a best-first search with an evaluation budget
//! walks the graph.

use crate::common::{FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::{Expr, FeatureSet, Op};
use fastft_tabular::rngx::{self, StdRng};
use fastft_tabular::{Dataset, FastFtResult};

/// Transformation-graph search baseline.
#[derive(Debug, Clone, Copy)]
pub struct Ttg {
    /// Node-expansion budget (each expansion evaluates its children).
    pub expansions: usize,
    /// Operations tried per expansion.
    pub ops_per_expansion: usize,
    /// Feature cap.
    pub max_features_factor: f64,
}

impl Default for Ttg {
    fn default() -> Self {
        Ttg { expansions: 4, ops_per_expansion: 3, max_features_factor: 2.0 }
    }
}

impl FeatureTransformMethod for Ttg {
    fn name(&self) -> &'static str {
        "TTG"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let cap = (((data.n_features() as f64) * self.max_features_factor) as usize).max(4);
        let root = FeatureSet::from_original(data);
        let root_score = scope.evaluate(ctx, &root.data)?;
        // Frontier of (score, node), best-first.
        let mut frontier = vec![(root_score, root.clone())];
        let mut best = (root_score, root);
        for _ in 0..self.expansions {
            // Pop the best frontier node.
            frontier.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let Some((_, node)) = frontier.pop() else { break };
            for _ in 0..self.ops_per_expansion {
                let op = Op::ALL[rng.gen_range(0..Op::COUNT)];
                let mut child = node.clone();
                apply_setwide(&mut child, op, &mut rng);
                child.select_top(cap, 12);
                let score = scope.evaluate(ctx, &child.data)?;
                if score > best.0 {
                    best = (score, child.clone());
                }
                frontier.push((score, child));
            }
        }
        Ok(scope.finish(self.name(), best.1, best.0, 0.0))
    }
}

/// Apply an op across the node's whole feature set: unary over every
/// feature, binary over a shifted pairing of the features.
fn apply_setwide(fs: &mut FeatureSet, op: Op, rng: &mut StdRng) {
    let exprs: Vec<Expr> = fs.exprs.clone();
    let n = exprs.len();
    let mut new = Vec::new();
    if op.is_unary() {
        for e in &exprs {
            new.push(Expr::unary(op, e.clone()));
        }
    } else {
        let shift = 1 + rng.gen_range(0..n.max(2) - 1);
        for (i, e) in exprs.iter().enumerate() {
            new.push(Expr::binary(op, e.clone(), exprs[(i + shift) % n].clone()));
        }
    }
    for e in new {
        crate::common::try_add_expr(fs, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    #[test]
    fn ttg_explores_and_scores() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 0);
        d.sanitize();
        let ev = fastft_ml::Evaluator { folds: 3, ..fastft_ml::Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let base = ev.evaluate(&d).unwrap();
        let r = Ttg { expansions: 2, ops_per_expansion: 2, ..Ttg::default() }
            .run(&d, &RunContext::new(&ev, &rt, 1))
            .unwrap();
        assert!(r.score >= base);
        assert!(r.downstream_evals >= 3); // root + children
        assert!(r.dataset().n_features() <= 16);
    }

    #[test]
    fn setwide_unary_doubles_features_up_to_dedup() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 80, 1);
        d.sanitize();
        let mut fs = FeatureSet::from_original(&d);
        let before = fs.n_features();
        let mut rng = rngx::rng(2);
        apply_setwide(&mut fs, Op::Square, &mut rng);
        assert!(fs.n_features() > before);
        assert!(fs.n_features() <= 2 * before);
    }
}
