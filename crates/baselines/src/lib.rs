//! The ten feature-transformation baselines of the paper's Table I, plus
//! FASTFT itself behind the same interface.
//!
//! | Module | Method | Paradigm |
//! |---|---|---|
//! | [`expansion`] | RFG, ERG | expansion–reduction |
//! | [`lda`] | LDA | dimensionality reduction |
//! | [`aft`] | AFT | iterative generate-and-select |
//! | [`nfs`] | NFS | RL controller (REINFORCE) |
//! | [`ttg`] | TTG | transformation-graph search |
//! | [`difer`] | DIFER | learned-embedding greedy search |
//! | [`openfe`] | OpenFE | feature boosting + two-stage pruning |
//! | [`caafe`] | CAAFE | LLM proposals (simulated; DESIGN.md §1) |
//! | [`grfg`] | GRFG | cascading RL without evaluation components |
//! | [`fastft_method`] | FASTFT | this paper |
//!
//! All implement [`FeatureTransformMethod`]; [`standard_methods`] returns
//! the Table I line-up.

pub mod aft;
pub mod caafe;
pub mod common;
pub mod difer;
pub mod expansion;
pub mod fastft_method;
pub mod grfg;
pub mod lda;
pub mod nfs;
pub mod openfe;
pub mod ttg;

pub use common::{Budget, FeatureTransformMethod, RunContext, TransformOutcome};

/// The ten baselines of Table I, in column order.
pub fn standard_methods() -> Vec<Box<dyn FeatureTransformMethod>> {
    vec![
        Box::new(expansion::Rfg::default()),
        Box::new(expansion::Erg::default()),
        Box::new(lda::Lda::default()),
        Box::new(aft::Aft::default()),
        Box::new(nfs::Nfs::default()),
        Box::new(ttg::Ttg::default()),
        Box::new(difer::Difer::default()),
        Box::new(openfe::OpenFe::default()),
        Box::new(caafe::CaafeSim::default()),
        Box::new(grfg::Grfg::default()),
    ]
}

/// Table I's full line-up: the ten baselines plus FASTFT.
pub fn all_methods() -> Vec<Box<dyn FeatureTransformMethod>> {
    let mut v = standard_methods();
    v.push(Box::new(fastft_method::FastFtMethod::default()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_table1() {
        let names: Vec<&str> = all_methods().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "RFG", "ERG", "LDA", "AFT", "NFS", "TTG", "DIFER", "OpenFE", "CAAFE", "GRFG",
                "FASTFT"
            ]
        );
    }
}
