//! GRFG baseline (§V baseline 10): group-wise reinforcement feature
//! generation (Wang et al., KDD 2022 / Xiao et al., TKDD 2024) — the
//! cascading-RL predecessor FASTFT builds on.
//!
//! GRFG is exactly the cascading system *without* the Performance
//! Predictor, Novelty Estimator or prioritized replay: every step is
//! evaluated downstream and memories replay uniformly. We therefore run
//! the FASTFT engine with those components ablated, which keeps the two
//! methods structurally comparable — precisely the comparison the paper
//! makes.

use crate::common::{FeatureTransformMethod, RunContext, RunScope, TransformOutcome};
use fastft_core::{FastFt, FastFtConfig, FeatureSet};
use fastft_tabular::{Dataset, FastFtResult};

/// Cascading-RL feature generation without FASTFT's evaluation components.
#[derive(Debug, Clone, Copy)]
pub struct Grfg {
    /// Exploration episodes.
    pub episodes: usize,
    /// Steps per episode.
    pub steps_per_episode: usize,
}

impl Default for Grfg {
    fn default() -> Self {
        Grfg { episodes: 6, steps_per_episode: 8 }
    }
}

impl FeatureTransformMethod for Grfg {
    fn name(&self) -> &'static str {
        "GRFG"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let scope = RunScope::start();
        let cfg = FastFtConfig {
            episodes: self.episodes,
            steps_per_episode: self.steps_per_episode,
            cold_start_episodes: self.episodes, // downstream feedback throughout
            evaluator: ctx.evaluator.clone(),
            seed: ctx.seed,
            threads: ctx.runtime.threads(),
            use_predictor: false,
            use_novelty: false,
            prioritized_replay: false,
            ..FastFtConfig::default()
        };
        let result = FastFt::new(cfg).fit(data)?;
        let mut fs = FeatureSet::from_original(data);
        fs.data = result.best_dataset;
        fs.exprs = result.best_exprs;
        let mut out = scope.finish(self.name(), fs, result.best_score, 0.0);
        out.downstream_evals = result.telemetry.downstream_evals;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    #[test]
    fn grfg_runs_and_never_regresses() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 120, 0);
        d.sanitize();
        let ev = fastft_ml::Evaluator { folds: 3, ..fastft_ml::Evaluator::default() };
        let rt = fastft_runtime::Runtime::new(1);
        let base = ev.evaluate(&d).unwrap();
        let r = Grfg { episodes: 2, steps_per_episode: 3 }
            .run(&d, &RunContext::new(&ev, &rt, 1))
            .unwrap();
        assert!(r.score >= base);
        // Every step scored downstream (+1 base); repeats may be served
        // from the engine's memo cache, so evals is bounded, not exact.
        assert!(r.downstream_evals >= 1 && r.downstream_evals <= 2 * 3 + 1);
    }
}
