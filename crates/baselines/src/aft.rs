//! AFT baseline (§V baseline 4): iterative generate-and-select with
//! downstream feedback, in the style of the autofeat library — propose a
//! candidate batch, keep it only when the evaluated score improves.

use crate::common::{
    random_expr, try_add_expr, Budget, FeatureTransformMethod, RunContext, RunScope,
    TransformOutcome,
};
use fastft_core::FeatureSet;
use fastft_tabular::{rngx, Dataset, FastFtResult};

/// Iterative generate-and-select baseline.
#[derive(Debug, Clone, Copy)]
pub struct Aft {
    /// Accept/reject rounds.
    pub budget: Budget,
    /// Feature cap.
    pub max_features_factor: f64,
}

impl Default for Aft {
    fn default() -> Self {
        Aft { budget: Budget::default(), max_features_factor: 2.0 }
    }
}

impl FeatureTransformMethod for Aft {
    fn name(&self) -> &'static str {
        "AFT"
    }

    fn run(&self, data: &Dataset, ctx: &RunContext) -> FastFtResult<TransformOutcome> {
        let mut scope = RunScope::start();
        let mut rng = rngx::rng(ctx.seed);
        let cap = (((data.n_features() as f64) * self.max_features_factor) as usize).max(4);
        let mut fs = FeatureSet::from_original(data);
        let mut best_fs = fs.clone();
        let mut best = scope.evaluate(ctx, &fs.data)?;
        for _ in 0..self.budget.rounds {
            let snapshot = fs.clone();
            let mut added = 0;
            for _ in 0..self.budget.per_round {
                let e = random_expr(&fs.exprs, &mut rng);
                if try_add_expr(&mut fs, e) {
                    added += 1;
                }
            }
            if added == 0 {
                continue;
            }
            fs.select_top(cap, 12);
            let score = scope.evaluate(ctx, &fs.data)?;
            if score > best {
                best = score;
                best_fs = fs.clone();
            } else {
                // Reject the batch: revert to the snapshot.
                fs = snapshot;
            }
        }
        Ok(scope.finish(self.name(), best_fs, best, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    #[test]
    fn aft_never_returns_worse_than_base() {
        use fastft_ml::Evaluator;
        use fastft_runtime::Runtime;
        let spec = datagen::by_name("pima_indian").unwrap();
        let mut d = datagen::generate_capped(spec, 150, 0);
        d.sanitize();
        let ev = Evaluator { folds: 3, ..Evaluator::default() };
        let rt = Runtime::new(1);
        let base = ev.evaluate(&d).unwrap();
        let r = Aft { budget: Budget { rounds: 3, per_round: 4 }, ..Aft::default() }
            .run(&d, &RunContext::new(&ev, &rt, 1))
            .unwrap();
        assert!(r.score >= base, "AFT {} < base {base}", r.score);
        assert!(r.downstream_evals >= 2);
    }
}
