//! Experience replay buffers.
//!
//! [`PrioritizedReplay`] implements the paper's "Replay Critical
//! Transformation Memory" (Eq. 10): each memory carries a priority
//! (the TD error) and is sampled with probability proportional to it.
//! Following standard prioritized-experience-replay practice we use
//! `|δ| + ε` so probabilities stay positive and well-defined (noted in
//! DESIGN.md §4). [`UniformReplay`] backs the FASTFT⁻ᴿᶜᵀ ablation.

use fastft_tabular::persist::{Persist, PersistResult, Reader, Writer};
use fastft_tabular::rngx::StdRng;

/// A generic RL transition; the FASTFT engine stores richer memory units
/// (`<s, a, r, s', T, v>`) by instantiating `M` with its own type, but this
/// concrete transition covers the plain RL substrates and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State representation.
    pub state: Vec<f64>,
    /// Chosen action index.
    pub action: usize,
    /// Observed reward.
    pub reward: f64,
    /// Next-state representation.
    pub next_state: Vec<f64>,
    /// Whether the episode ended at this step.
    pub done: bool,
}

/// Ring-buffer prioritized replay (proportional variant).
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<M> {
    capacity: usize,
    items: Vec<M>,
    priorities: Vec<f64>,
    write: usize,
    eps: f64,
}

impl<M> PrioritizedReplay<M> {
    /// Create with a fixed capacity (paper: S = 16).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        PrioritizedReplay {
            capacity,
            items: Vec::with_capacity(capacity),
            priorities: Vec::with_capacity(capacity),
            write: 0,
            eps: 1e-3,
        }
    }

    /// Number of stored memories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert a memory with priority `|delta|` (TD error). Overwrites the
    /// oldest entry once full (FIFO ring), matching the paper's fixed-size
    /// memory that keeps "key memories updated" (§VI-F).
    pub fn push(&mut self, item: M, delta: f64) {
        let p = delta.abs() + self.eps;
        if self.items.len() < self.capacity {
            self.items.push(item);
            self.priorities.push(p);
        } else {
            self.items[self.write] = item;
            self.priorities[self.write] = p;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Sample one index with probability `P_i / Σ_k P_k` (Eq. 10).
    pub fn sample_index(&self, rng: &mut StdRng) -> Option<usize> {
        if self.items.is_empty() {
            return None;
        }
        let total: f64 = self.priorities.iter().sum();
        let mut target = rng.gen::<f64>() * total;
        for (i, &p) in self.priorities.iter().enumerate() {
            target -= p;
            if target <= 0.0 {
                return Some(i);
            }
        }
        Some(self.items.len() - 1)
    }

    /// Sample a memory by priority.
    pub fn sample(&self, rng: &mut StdRng) -> Option<&M> {
        self.sample_index(rng).map(|i| &self.items[i])
    }

    /// Sample `k` memories by priority (with replacement).
    pub fn sample_batch(&self, rng: &mut StdRng, k: usize) -> Vec<&M> {
        (0..k).filter_map(|_| self.sample(rng)).collect()
    }

    /// Sample a memory uniformly (used for evaluation-component fine-tuning,
    /// Alg. 1 line 16 / Alg. 2 line 21).
    pub fn sample_uniform(&self, rng: &mut StdRng) -> Option<&M> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Update the priority of a stored memory (after recomputing its TD
    /// error).
    pub fn update_priority(&mut self, index: usize, delta: f64) {
        self.priorities[index] = delta.abs() + self.eps;
    }

    /// Iterate over the stored memories.
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        self.items.iter()
    }

    /// Current priority of a stored memory.
    pub fn priority(&self, index: usize) -> f64 {
        self.priorities[index]
    }

    /// Ring write cursor (next slot to overwrite once full), for
    /// checkpointing.
    pub fn write_pos(&self) -> usize {
        self.write
    }

    /// Rebuild a buffer from checkpointed parts. `items` are in slot order
    /// (as produced by [`PrioritizedReplay::iter`] zipped with
    /// [`PrioritizedReplay::priority`]); the rebuilt buffer is functionally
    /// identical to the captured one.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (more items than capacity,
    /// mismatched priority count, or an out-of-range write cursor).
    pub fn from_parts(capacity: usize, write: usize, items: Vec<M>, priorities: Vec<f64>) -> Self {
        assert!(capacity >= 1);
        assert!(items.len() <= capacity, "more items than capacity");
        assert_eq!(items.len(), priorities.len(), "item/priority count mismatch");
        assert!(write < capacity, "write cursor out of range");
        PrioritizedReplay { capacity, items, priorities, write, eps: 1e-3 }
    }
}

/// Replay-buffer contents in slot order, matching the configured variant.
///
/// This is the checkpoint form of both buffer kinds: capture one with
/// [`PrioritizedReplay::save_state`]/[`UniformReplay::save_state`] and
/// rebuild with the `from_state` constructors. The [`Persist`] impl
/// validates internal consistency on restore, so a corrupt file errors
/// instead of panicking in `from_parts`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayState<M> {
    /// Prioritized ring buffer (the paper's default).
    Prioritized {
        /// Buffer capacity.
        capacity: usize,
        /// Ring write cursor.
        write: usize,
        /// Stored memories in slot order.
        items: Vec<M>,
        /// Slot priorities (`|δ| + ε`), parallel to `items`.
        priorities: Vec<f64>,
    },
    /// Uniform FIFO buffer (FASTFT⁻ᴿᶜᵀ).
    Uniform {
        /// Buffer capacity.
        capacity: usize,
        /// Ring write cursor.
        write: usize,
        /// Stored memories in slot order.
        items: Vec<M>,
    },
}

impl<M> ReplayState<M> {
    /// Validate internal consistency (capacity, cursor, parallel lengths).
    pub fn validate(&self) -> Result<(), String> {
        let (cap, wr, len, prios) = match self {
            ReplayState::Prioritized { capacity, write, items, priorities } => {
                (*capacity, *write, items.len(), Some(priorities.len()))
            }
            ReplayState::Uniform { capacity, write, items } => {
                (*capacity, *write, items.len(), None)
            }
        };
        if cap == 0 || len > cap || wr >= cap || prios.is_some_and(|p| p != len) {
            return Err(format!(
                "inconsistent replay buffer (capacity {cap}, write {wr}, len {len})"
            ));
        }
        Ok(())
    }
}

impl<M: Persist> Persist for ReplayState<M> {
    fn persist(&self, w: &mut Writer) {
        match self {
            ReplayState::Prioritized { capacity, write, items, priorities } => {
                w.u8(0);
                capacity.persist(w);
                write.persist(w);
                items.persist(w);
                priorities.persist(w);
            }
            ReplayState::Uniform { capacity, write, items } => {
                w.u8(1);
                capacity.persist(w);
                write.persist(w);
                items.persist(w);
            }
        }
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        let tag = r.u8()?;
        let capacity = r.usize()?;
        let write = r.usize()?;
        let items: Vec<M> = Persist::restore(r)?;
        let state = match tag {
            0 => ReplayState::Prioritized {
                capacity,
                write,
                items,
                priorities: Persist::restore(r)?,
            },
            1 => ReplayState::Uniform { capacity, write, items },
            t => return Err(format!("unknown replay tag {t}")),
        };
        state.validate()?;
        Ok(state)
    }
}

impl<M: Clone> PrioritizedReplay<M> {
    /// Capture the buffer for a checkpoint (slot order preserved).
    pub fn save_state(&self) -> ReplayState<M> {
        ReplayState::Prioritized {
            capacity: self.capacity,
            write: self.write,
            items: self.items.clone(),
            priorities: self.priorities.clone(),
        }
    }
}

impl<M> PrioritizedReplay<M> {
    /// Rebuild from a captured [`ReplayState::Prioritized`]; errors on a
    /// mismatched variant or inconsistent parts.
    pub fn from_state(state: ReplayState<M>) -> Result<Self, String> {
        state.validate()?;
        match state {
            ReplayState::Prioritized { capacity, write, items, priorities } => {
                Ok(Self::from_parts(capacity, write, items, priorities))
            }
            ReplayState::Uniform { .. } => {
                Err("expected prioritized replay state, found uniform".into())
            }
        }
    }
}

impl<M: Clone> UniformReplay<M> {
    /// Capture the buffer for a checkpoint (slot order preserved).
    pub fn save_state(&self) -> ReplayState<M> {
        ReplayState::Uniform {
            capacity: self.capacity,
            write: self.write,
            items: self.items.clone(),
        }
    }
}

impl<M> UniformReplay<M> {
    /// Rebuild from a captured [`ReplayState::Uniform`]; errors on a
    /// mismatched variant or inconsistent parts.
    pub fn from_state(state: ReplayState<M>) -> Result<Self, String> {
        state.validate()?;
        match state {
            ReplayState::Uniform { capacity, write, items } => {
                Ok(Self::from_parts(capacity, write, items))
            }
            ReplayState::Prioritized { .. } => {
                Err("expected uniform replay state, found prioritized".into())
            }
        }
    }
}

/// Plain FIFO buffer with uniform sampling (the FASTFT⁻ᴿᶜᵀ ablation).
#[derive(Debug, Clone)]
pub struct UniformReplay<M> {
    capacity: usize,
    items: Vec<M>,
    write: usize,
}

impl<M> UniformReplay<M> {
    /// Create with a fixed capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        UniformReplay { capacity, items: Vec::with_capacity(capacity), write: 0 }
    }

    /// Number of stored memories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert, overwriting the oldest entry once full.
    pub fn push(&mut self, item: M) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.write] = item;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Sample uniformly.
    pub fn sample(&self, rng: &mut StdRng) -> Option<&M> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Iterate over stored memories.
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        self.items.iter()
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ring write cursor, for checkpointing.
    pub fn write_pos(&self) -> usize {
        self.write
    }

    /// Rebuild a buffer from checkpointed parts (see
    /// [`PrioritizedReplay::from_parts`]).
    ///
    /// # Panics
    /// Panics if the parts are inconsistent.
    pub fn from_parts(capacity: usize, write: usize, items: Vec<M>) -> Self {
        assert!(capacity >= 1);
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(write < capacity, "write cursor out of range");
        UniformReplay { capacity, items, write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx::StdRng;

    #[test]
    fn push_until_full_then_overwrite_oldest() {
        let mut buf = PrioritizedReplay::new(3);
        for i in 0..5 {
            buf.push(i, 1.0);
        }
        assert!(buf.is_full());
        let items: Vec<i32> = buf.iter().copied().collect();
        // Ring: slots hold [3, 4, 2].
        assert_eq!(items, vec![3, 4, 2]);
    }

    #[test]
    fn sampling_prefers_high_priority() {
        let mut buf = PrioritizedReplay::new(2);
        buf.push("low", 0.001);
        buf.push("high", 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let highs = (0..1000).filter(|_| *buf.sample(&mut rng).unwrap() == "high").count();
        assert!(highs > 950, "high sampled {highs}/1000");
    }

    #[test]
    fn zero_delta_still_sampleable() {
        let mut buf = PrioritizedReplay::new(2);
        buf.push(1, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(buf.sample(&mut rng), Some(&1));
    }

    #[test]
    fn negative_delta_treated_by_magnitude() {
        let mut buf = PrioritizedReplay::new(2);
        buf.push("neg", -50.0);
        buf.push("tiny", 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let negs = (0..500).filter(|_| *buf.sample(&mut rng).unwrap() == "neg").count();
        assert!(negs > 450, "neg sampled {negs}/500");
    }

    #[test]
    fn empty_buffer_returns_none() {
        let buf: PrioritizedReplay<u8> = PrioritizedReplay::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(buf.sample(&mut rng).is_none());
        assert!(buf.sample_uniform(&mut rng).is_none());
    }

    #[test]
    fn update_priority_changes_distribution() {
        let mut buf = PrioritizedReplay::new(2);
        buf.push(0, 1.0);
        buf.push(1, 1.0);
        buf.update_priority(0, 1000.0);
        let mut rng = StdRng::seed_from_u64(5);
        let zeros = (0..500).filter(|_| *buf.sample(&mut rng).unwrap() == 0).count();
        assert!(zeros > 450, "zeros {zeros}/500");
    }

    #[test]
    fn uniform_replay_round_trips() {
        let mut buf = UniformReplay::new(2);
        buf.push(10);
        buf.push(20);
        buf.push(30); // overwrites 10
        let items: Vec<i32> = buf.iter().copied().collect();
        assert_eq!(items, vec![30, 20]);
    }

    #[test]
    fn uniform_sampling_is_roughly_uniform() {
        let mut buf = UniformReplay::new(4);
        for i in 0..4 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*buf.sample(&mut rng).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn from_parts_round_trips_prioritized() {
        let mut buf = PrioritizedReplay::new(3);
        for i in 0..5 {
            buf.push(i, i as f64);
        }
        let items: Vec<i32> = buf.iter().copied().collect();
        let prios: Vec<f64> = (0..buf.len()).map(|i| buf.priority(i)).collect();
        let rebuilt = PrioritizedReplay::from_parts(buf.capacity(), buf.write_pos(), items, prios);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(buf.sample(&mut a), rebuilt.sample(&mut b));
        }
        // Pushing after the rebuild overwrites the same slot.
        let mut buf2 = buf.clone();
        let mut rebuilt2 = rebuilt.clone();
        buf2.push(99, 1.0);
        rebuilt2.push(99, 1.0);
        assert_eq!(
            buf2.iter().copied().collect::<Vec<_>>(),
            rebuilt2.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_parts_round_trips_uniform() {
        let mut buf = UniformReplay::new(2);
        for i in 0..3 {
            buf.push(i);
        }
        let rebuilt = UniformReplay::from_parts(
            buf.capacity(),
            buf.write_pos(),
            buf.iter().copied().collect(),
        );
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            assert_eq!(buf.sample(&mut a), rebuilt.sample(&mut b));
        }
    }

    #[test]
    fn batch_sampling_size() {
        let mut buf = PrioritizedReplay::new(8);
        for i in 0..8 {
            buf.push(i, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(buf.sample_batch(&mut rng, 5).len(), 5);
    }
}
