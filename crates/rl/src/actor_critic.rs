//! Actor-critic learner over candidate-scoring policies (Eq. 9).
//!
//! FASTFT's agents choose among a *variable* number of candidates (feature
//! clusters or operations), each described by its own feature vector
//! `Rep(candidate) ⊕ Rep(state)`. The actor is therefore a scoring network:
//! an MLP maps each candidate vector to a logit, and the policy is the
//! softmax over the candidate set. The critic maps the state representation
//! to a scalar value `V(s)`; advantages `A = r + γV(s') − V(s)` weight the
//! policy gradient, and the same TD error is the replay priority (Eq. 10).
//!
//! [`Actor`] and [`Critic`] are exposed separately because the cascading
//! system shares one critic across its three actors; [`ActorCritic`] bundles
//! them for single-agent use.

use fastft_nn::activation::softmax_inplace;
use fastft_nn::matrix::Matrix;
use fastft_nn::{snapshot, Adam, Mlp, NetState};
use fastft_tabular::rngx::StdRng;

/// A softmax candidate-scoring policy.
#[derive(Debug, Clone)]
pub struct Actor {
    net: Mlp,
    opt: Adam,
}

impl Actor {
    /// Create a policy over `candidate_dim`-dimensional candidate vectors.
    pub fn new(candidate_dim: usize, hidden: usize, lr: f64, seed: u64) -> Self {
        Actor { net: Mlp::new(&[candidate_dim, hidden, 1], seed), opt: Adam::new(lr) }
    }

    /// Softmax policy over a candidate set. All candidates are scored with
    /// one batched MLP pass; each row is bitwise identical to scoring it
    /// alone.
    pub fn policy(&self, candidates: &[Vec<f64>]) -> Vec<f64> {
        assert!(!candidates.is_empty(), "empty candidate set");
        let dim = candidates[0].len();
        let mut batch = Matrix::zeros(candidates.len(), dim);
        for (r, c) in candidates.iter().enumerate() {
            batch.row_mut(r).copy_from_slice(c);
        }
        let mut logits = self.net.infer(&batch).data;
        softmax_inplace(&mut logits);
        logits
    }

    /// Sample an action from the softmax policy.
    pub fn select(&self, candidates: &[Vec<f64>], rng: &mut StdRng) -> usize {
        sample_categorical(&self.policy(candidates), rng)
    }

    /// Greedy action (highest logit).
    pub fn select_greedy(&self, candidates: &[Vec<f64>]) -> usize {
        argmax(&self.policy(candidates))
    }

    /// Policy-gradient step: `L_π = −log π(a|s) · A` (Eq. 9, actor update).
    pub fn update(&mut self, candidates: &[Vec<f64>], action: usize, advantage: f64) {
        let n = candidates.len();
        assert!(action < n);
        let dim = candidates[0].len();
        let mut batch = Matrix::zeros(n, dim);
        for (r, c) in candidates.iter().enumerate() {
            batch.row_mut(r).copy_from_slice(c);
        }
        let logits = self.net.forward(&batch);
        let mut probs: Vec<f64> = logits.data.clone();
        softmax_inplace(&mut probs);
        // d(−logπ(a)·A)/d logit_i = A · (π_i − 1[i = a])
        let dlogits: Vec<f64> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| advantage * (p - f64::from(u8::from(i == action))))
            .collect();
        self.net.backward(&Matrix::from_vec(n, 1, dlogits));
        self.opt.step(self.net.parameters());
    }

    /// Snapshot policy weights + optimizer state (bitwise exact).
    pub fn save_state(&mut self) -> NetState {
        snapshot::capture(&self.net.parameters(), &self.opt)
    }

    /// Restore a [`Actor::save_state`] snapshot.
    pub fn load_state(&mut self, state: &NetState) -> Result<(), String> {
        snapshot::restore(self.net.parameters(), &mut self.opt, state)
    }
}

/// A state-value estimator `V(s)`.
#[derive(Debug, Clone)]
pub struct Critic {
    net: Mlp,
    opt: Adam,
}

impl Critic {
    /// Create over `state_dim`-dimensional state vectors.
    pub fn new(state_dim: usize, hidden: usize, lr: f64, seed: u64) -> Self {
        Critic { net: Mlp::new(&[state_dim, hidden, 1], seed), opt: Adam::new(lr) }
    }

    /// Value estimate.
    pub fn value(&self, state: &[f64]) -> f64 {
        self.net.infer_vec(state)[0]
    }

    /// Regression step toward `target = r + γ·V(s')` (Eq. 9, critic
    /// update). Returns the pre-update squared error.
    pub fn update(&mut self, state: &[f64], target: f64) -> f64 {
        let x = Matrix::row_vector(state.to_vec());
        let v = self.net.forward(&x);
        let err = v.data[0] - target;
        self.net.backward(&Matrix::row_vector(vec![2.0 * err]));
        self.opt.step(self.net.parameters());
        err * err
    }

    /// Snapshot value-net weights + optimizer state (bitwise exact).
    pub fn save_state(&mut self) -> NetState {
        snapshot::capture(&self.net.parameters(), &self.opt)
    }

    /// Restore a [`Critic::save_state`] snapshot.
    pub fn load_state(&mut self, state: &NetState) -> Result<(), String> {
        snapshot::restore(self.net.parameters(), &mut self.opt, state)
    }
}

/// Actor + critic bundle for single-agent use.
#[derive(Debug, Clone)]
pub struct ActorCritic {
    /// The policy.
    pub actor: Actor,
    /// The value function.
    pub critic: Critic,
    /// Discount factor γ.
    pub gamma: f64,
}

impl ActorCritic {
    /// Create an agent: candidates are `action_dim`-dimensional, states are
    /// `state_dim`-dimensional, both networks get one `hidden`-wide layer.
    pub fn new(action_dim: usize, state_dim: usize, hidden: usize, lr: f64, seed: u64) -> Self {
        ActorCritic {
            actor: Actor::new(action_dim, hidden, lr, seed),
            critic: Critic::new(state_dim, hidden, lr, seed.wrapping_add(1)),
            gamma: 0.99,
        }
    }

    /// Softmax policy over a candidate set.
    pub fn policy(&self, candidates: &[Vec<f64>]) -> Vec<f64> {
        self.actor.policy(candidates)
    }

    /// Sample an action from the policy.
    pub fn select(&self, candidates: &[Vec<f64>], rng: &mut StdRng) -> usize {
        self.actor.select(candidates, rng)
    }

    /// Greedy action.
    pub fn select_greedy(&self, candidates: &[Vec<f64>]) -> usize {
        self.actor.select_greedy(candidates)
    }

    /// Critic value estimate `V(s)`.
    pub fn value(&self, state: &[f64]) -> f64 {
        self.critic.value(state)
    }

    /// TD error `δ = r + γ·V(s') − V(s)` (Eq. 10's priority); pass
    /// `next_value = 0` at episode boundaries.
    pub fn td_error(&self, state: &[f64], reward: f64, next_value: f64) -> f64 {
        reward + self.gamma * next_value - self.value(state)
    }

    /// Policy-gradient step on one decision.
    pub fn update_actor(&mut self, candidates: &[Vec<f64>], action: usize, advantage: f64) {
        self.actor.update(candidates, action, advantage);
    }

    /// Critic regression step; returns the pre-update squared error.
    pub fn update_critic(&mut self, state: &[f64], target: f64) -> f64 {
        self.critic.update(state, target)
    }
}

/// Sample an index from a normalised probability vector.
pub fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> usize {
    let mut target = rng.gen::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        target -= p;
        if target <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// Index of the maximum element.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx::StdRng;

    /// Contextual bandit: two contexts, two actions; reward 1 when the
    /// action index matches the context.
    fn candidates_for(ctx: usize) -> Vec<Vec<f64>> {
        (0..2)
            .map(|a| vec![ctx as f64, f64::from(u8::from(a == 0)), f64::from(u8::from(a == 1))])
            .collect()
    }

    #[test]
    fn policy_is_distribution() {
        let ac = ActorCritic::new(3, 1, 8, 0.01, 1);
        let p = ac.policy(&candidates_for(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn learns_contextual_bandit() {
        let mut ac = ActorCritic::new(3, 1, 16, 0.02, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for step in 0..1500 {
            let ctx = step % 2;
            let cands = candidates_for(ctx);
            let a = ac.select(&cands, &mut rng);
            let r = f64::from(u8::from(a == ctx));
            let state = vec![ctx as f64];
            // One-step episode: advantage = r − V(s).
            let adv = r - ac.value(&state);
            ac.update_actor(&cands, a, adv);
            ac.update_critic(&state, r);
        }
        for ctx in 0..2 {
            let a = ac.select_greedy(&candidates_for(ctx));
            assert_eq!(a, ctx, "ctx {ctx}");
            let p = ac.policy(&candidates_for(ctx));
            assert!(p[ctx] > 0.8, "π(correct|{ctx}) = {}", p[ctx]);
        }
    }

    #[test]
    fn critic_regresses_to_target() {
        let mut ac = ActorCritic::new(2, 2, 8, 0.05, 4);
        for _ in 0..400 {
            ac.update_critic(&[1.0, 0.0], 3.0);
            ac.update_critic(&[0.0, 1.0], -1.0);
        }
        assert!((ac.value(&[1.0, 0.0]) - 3.0).abs() < 0.2);
        assert!((ac.value(&[0.0, 1.0]) + 1.0).abs() < 0.2);
    }

    #[test]
    fn td_error_formula() {
        let mut ac = ActorCritic::new(2, 1, 4, 0.05, 5);
        ac.gamma = 0.5;
        for _ in 0..300 {
            ac.update_critic(&[0.0], 1.0);
        }
        let delta = ac.td_error(&[0.0], 2.0, 4.0);
        // δ = 2 + 0.5·4 − V(0) ≈ 4 − 1 = 3
        assert!((delta - 3.0).abs() < 0.2, "delta {delta}");
    }

    #[test]
    fn sample_categorical_respects_mass() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits =
            (0..1000).filter(|_| sample_categorical(&[0.05, 0.9, 0.05], &mut rng) == 1).count();
        assert!(hits > 830, "hits {hits}");
    }

    #[test]
    fn standalone_actor_learns_bandit() {
        // Pure REINFORCE with a constant baseline of 0.5.
        let mut actor = Actor::new(3, 16, 0.02, 7);
        let mut rng = StdRng::seed_from_u64(8);
        for step in 0..1500 {
            let ctx = step % 2;
            let cands = candidates_for(ctx);
            let a = actor.select(&cands, &mut rng);
            let r = f64::from(u8::from(a == ctx));
            actor.update(&cands, a, r - 0.5);
        }
        assert_eq!(actor.select_greedy(&candidates_for(0)), 0);
        assert_eq!(actor.select_greedy(&candidates_for(1)), 1);
    }

    #[test]
    fn batched_policy_matches_per_candidate_scoring() {
        let actor = Actor::new(3, 8, 0.01, 9);
        for ctx in 0..2 {
            let cands = candidates_for(ctx);
            let p = actor.policy(&cands);
            let mut logits: Vec<f64> = cands.iter().map(|c| actor.net.infer_vec(c)[0]).collect();
            softmax_inplace(&mut logits);
            assert_eq!(p, logits);
        }
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panics() {
        let ac = ActorCritic::new(2, 1, 4, 0.01, 7);
        let _ = ac.policy(&[]);
    }
}
