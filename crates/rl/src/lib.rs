//! Reinforcement-learning substrate for FASTFT.
//!
//! - [`replay`]: prioritized (Eq. 10) and uniform experience replay.
//! - [`actor_critic`]: the paper's default learner (Eq. 9) over
//!   candidate-scoring policies.
//! - [`dqn`]: DQN / Double / Dueling / DuelingDouble variants for the Fig. 7
//!   framework ablation.
//! - [`schedule`]: the Eq. 6 exponential novelty-weight decay and an
//!   ε-greedy linear schedule.

pub mod actor_critic;
pub mod dqn;
pub mod replay;
pub mod schedule;

pub use actor_critic::ActorCritic;
pub use dqn::{QAgent, QAgentState, QKind};
pub use replay::{PrioritizedReplay, ReplayState, Transition, UniformReplay};
pub use schedule::ExpDecay;
