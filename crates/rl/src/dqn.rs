//! DQN-family learners for the Fig. 7 RL-framework ablation: DQN, Double
//! DQN, Dueling DQN and Dueling Double DQN, all over the same
//! candidate-scoring formulation as [`crate::actor_critic`].
//!
//! Each candidate vector (state ⊕ action features) passes through a shared
//! trunk; the plain variants read `Q` from a single value head, the dueling
//! variants aggregate `Q_i = V_i + (A_i − mean_j A_j)` across the candidate
//! set. Double variants decouple argmax (online net) from evaluation
//! (target net).

use crate::actor_critic::argmax;
use fastft_nn::activation::Activation;
use fastft_nn::dense::Dense;
use fastft_nn::init;
use fastft_nn::matrix::{Matrix, Tensor};
use fastft_nn::{snapshot, Adam, NetState};
use fastft_tabular::persist::{Persist, PersistResult, Reader, Writer};
use fastft_tabular::rngx::StdRng;

/// Which Q-learning variant an agent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QKind {
    /// Vanilla deep Q-learning.
    Dqn,
    /// Double DQN (decoupled argmax/evaluation).
    DoubleDqn,
    /// Dueling value/advantage decomposition.
    DuelingDqn,
    /// Dueling + double.
    DuelingDoubleDqn,
}

impl QKind {
    /// All four variants, in the order Fig. 7 plots them.
    pub const ALL: [QKind; 4] =
        [QKind::Dqn, QKind::DoubleDqn, QKind::DuelingDqn, QKind::DuelingDoubleDqn];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            QKind::Dqn => "DQN",
            QKind::DoubleDqn => "DDQN",
            QKind::DuelingDqn => "DuelingDQN",
            QKind::DuelingDoubleDqn => "DuelingDDQN",
        }
    }

    fn dueling(self) -> bool {
        matches!(self, QKind::DuelingDqn | QKind::DuelingDoubleDqn)
    }

    fn double(self) -> bool {
        matches!(self, QKind::DoubleDqn | QKind::DuelingDoubleDqn)
    }
}

/// Trunk + value head (+ advantage head for dueling variants).
#[derive(Debug, Clone)]
struct QNet {
    trunk: Dense,
    v_head: Dense,
    a_head: Option<Dense>,
}

impl QNet {
    fn new(in_dim: usize, hidden: usize, dueling: bool, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        QNet {
            trunk: Dense::new(in_dim, hidden, Activation::Relu, &mut rng),
            v_head: Dense::new(hidden, 1, Activation::Linear, &mut rng),
            a_head: dueling.then(|| Dense::new(hidden, 1, Activation::Linear, &mut rng)),
        }
    }

    /// Q values for a candidate batch (inference path).
    fn q_infer(&self, batch: &Matrix) -> Vec<f64> {
        let h = self.trunk.infer(batch);
        let v = self.v_head.infer(&h);
        match &self.a_head {
            None => v.data,
            Some(a_head) => {
                let a = a_head.infer(&h);
                let mean = a.data.iter().sum::<f64>() / a.data.len() as f64;
                v.data.iter().zip(&a.data).map(|(vv, av)| vv + av - mean).collect()
            }
        }
    }

    /// Forward with caches; returns Q values.
    fn q_forward(&mut self, batch: &Matrix) -> Vec<f64> {
        let h = self.trunk.forward(batch);
        let v = self.v_head.forward(&h);
        match &mut self.a_head {
            None => v.data,
            Some(a_head) => {
                let a = a_head.forward(&h);
                let mean = a.data.iter().sum::<f64>() / a.data.len() as f64;
                v.data.iter().zip(&a.data).map(|(vv, av)| vv + av - mean).collect()
            }
        }
    }

    /// Backward the TD loss gradient `dq` (per candidate) through the net.
    fn backward(&mut self, dq: &[f64]) {
        let n = dq.len();
        let dv = Matrix::from_vec(n, 1, dq.to_vec());
        let mut dh = self.v_head.backward(&dv);
        if let Some(a_head) = &mut self.a_head {
            // Q_i = V_i + A_i − mean(A): dA_i = dq_i − mean(dq).
            let mean_dq = dq.iter().sum::<f64>() / n as f64;
            let da = Matrix::from_vec(n, 1, dq.iter().map(|&d| d - mean_dq).collect());
            dh.add_assign(&a_head.backward(&da));
        }
        self.trunk.backward(&dh);
    }

    fn parameters(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.trunk.parameters();
        p.extend(self.v_head.parameters());
        if let Some(a_head) = &mut self.a_head {
            p.extend(a_head.parameters());
        }
        p
    }
}

/// A Q-learning agent over candidate sets, with a periodically-synced target
/// network.
#[derive(Debug, Clone)]
pub struct QAgent {
    /// Variant.
    pub kind: QKind,
    online: QNet,
    target: QNet,
    opt: Adam,
    /// Discount factor γ.
    pub gamma: f64,
    /// Hard target-network sync period (update steps).
    pub sync_every: usize,
    updates: usize,
}

impl QAgent {
    /// Create an agent for `action_dim`-dimensional candidate vectors.
    pub fn new(kind: QKind, action_dim: usize, hidden: usize, lr: f64, seed: u64) -> Self {
        let online = QNet::new(action_dim, hidden, kind.dueling(), seed);
        let target = online.clone();
        QAgent { kind, online, target, opt: Adam::new(lr), gamma: 0.99, sync_every: 50, updates: 0 }
    }

    fn batch(candidates: &[Vec<f64>]) -> Matrix {
        assert!(!candidates.is_empty(), "empty candidate set");
        let dim = candidates[0].len();
        let mut m = Matrix::zeros(candidates.len(), dim);
        for (r, c) in candidates.iter().enumerate() {
            m.row_mut(r).copy_from_slice(c);
        }
        m
    }

    /// Online-network Q values for a candidate set.
    pub fn q_values(&self, candidates: &[Vec<f64>]) -> Vec<f64> {
        self.online.q_infer(&Self::batch(candidates))
    }

    /// ε-greedy action selection.
    pub fn select(&self, candidates: &[Vec<f64>], epsilon: f64, rng: &mut StdRng) -> usize {
        if rng.gen::<f64>() < epsilon {
            rng.gen_range(0..candidates.len())
        } else {
            argmax(&self.q_values(candidates))
        }
    }

    /// TD target for a transition whose next decision offers
    /// `next_candidates` (empty slice = terminal).
    pub fn td_target(&self, reward: f64, next_candidates: &[Vec<f64>]) -> f64 {
        if next_candidates.is_empty() {
            return reward;
        }
        let batch = Self::batch(next_candidates);
        let q_next = if self.kind.double() {
            let a_star = argmax(&self.online.q_infer(&batch));
            self.target.q_infer(&batch)[a_star]
        } else {
            let q = self.target.q_infer(&batch);
            q[argmax(&q)]
        };
        reward + self.gamma * q_next
    }

    /// One TD update on `(candidates, action, target)`; returns the TD error
    /// before the update.
    pub fn update(&mut self, candidates: &[Vec<f64>], action: usize, target: f64) -> f64 {
        let batch = Self::batch(candidates);
        let q = self.online.q_forward(&batch);
        let delta = q[action] - target;
        let mut dq = vec![0.0; q.len()];
        dq[action] = 2.0 * delta;
        self.online.backward(&dq);
        self.opt.step(self.online.parameters());
        self.updates += 1;
        if self.updates.is_multiple_of(self.sync_every) {
            self.target = self.online.clone();
        }
        -delta
    }

    /// Snapshot online net + optimizer, target net weights and the update
    /// counter that drives target syncing (bitwise exact).
    pub fn save_state(&mut self) -> QAgentState {
        QAgentState {
            online: snapshot::capture(&self.online.parameters(), &self.opt),
            target: self.target.parameters().iter().map(|p| p.value.data.clone()).collect(),
            updates: self.updates as u64,
        }
    }

    /// Restore a [`QAgent::save_state`] snapshot.
    pub fn load_state(&mut self, state: &QAgentState) -> Result<(), String> {
        snapshot::restore(self.online.parameters(), &mut self.opt, &state.online)?;
        let params = self.target.parameters();
        if params.len() != state.target.len() {
            return Err("target net parameter count mismatch".into());
        }
        for (p, s) in params.into_iter().zip(&state.target) {
            if p.len() != s.len() {
                return Err("target net parameter shape mismatch".into());
            }
            p.value.data.copy_from_slice(s);
            p.zero_grad();
        }
        self.updates = state.updates as usize;
        Ok(())
    }
}

/// Checkpoint snapshot of a [`QAgent`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QAgentState {
    /// Online network weights + Adam state.
    pub online: NetState,
    /// Target network weights (no optimizer), stable parameter order.
    pub target: Vec<Vec<f64>>,
    /// Update counter (drives the periodic hard target sync).
    pub updates: u64,
}

impl Persist for QKind {
    fn persist(&self, w: &mut Writer) {
        w.u8(match self {
            QKind::Dqn => 0,
            QKind::DoubleDqn => 1,
            QKind::DuelingDqn => 2,
            QKind::DuelingDoubleDqn => 3,
        });
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(match r.u8()? {
            0 => QKind::Dqn,
            1 => QKind::DoubleDqn,
            2 => QKind::DuelingDqn,
            3 => QKind::DuelingDoubleDqn,
            t => return Err(format!("unknown q-kind tag {t}")),
        })
    }
}

impl Persist for QAgentState {
    fn persist(&self, w: &mut Writer) {
        self.online.persist(w);
        self.target.persist(w);
        self.updates.persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(QAgentState {
            online: Persist::restore(r)?,
            target: Persist::restore(r)?,
            updates: Persist::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx::StdRng;

    fn candidates_for(ctx: usize) -> Vec<Vec<f64>> {
        (0..2)
            .map(|a| vec![ctx as f64, f64::from(u8::from(a == 0)), f64::from(u8::from(a == 1))])
            .collect()
    }

    fn learns_bandit(kind: QKind) {
        let mut agent = QAgent::new(kind, 3, 16, 0.02, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for step in 0..1200 {
            let ctx = step % 2;
            let cands = candidates_for(ctx);
            let eps = (1.0 - step as f64 / 600.0).max(0.05);
            let a = agent.select(&cands, eps, &mut rng);
            let r = f64::from(u8::from(a == ctx));
            let target = agent.td_target(r, &[]); // one-step episodes
            agent.update(&cands, a, target);
        }
        for ctx in 0..2 {
            let q = agent.q_values(&candidates_for(ctx));
            assert_eq!(argmax(&q), ctx, "{}: ctx {ctx}, q {q:?}", kind.label());
        }
    }

    #[test]
    fn dqn_learns_bandit() {
        learns_bandit(QKind::Dqn);
    }

    #[test]
    fn ddqn_learns_bandit() {
        learns_bandit(QKind::DoubleDqn);
    }

    #[test]
    fn dueling_dqn_learns_bandit() {
        learns_bandit(QKind::DuelingDqn);
    }

    #[test]
    fn dueling_ddqn_learns_bandit() {
        learns_bandit(QKind::DuelingDoubleDqn);
    }

    #[test]
    fn td_target_discounts_future() {
        let agent = QAgent::new(QKind::Dqn, 2, 4, 0.01, 3);
        let next = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let q = agent.q_values(&next);
        let max_q = q[argmax(&q)];
        let t = agent.td_target(1.0, &next);
        assert!((t - (1.0 + 0.99 * max_q)).abs() < 1e-9);
        assert_eq!(agent.td_target(0.5, &[]), 0.5);
    }

    #[test]
    fn epsilon_one_is_uniform() {
        let agent = QAgent::new(QKind::Dqn, 2, 4, 0.01, 4);
        let cands = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut rng = StdRng::seed_from_u64(5);
        let firsts = (0..1000).filter(|_| agent.select(&cands, 1.0, &mut rng) == 0).count();
        assert!((350..650).contains(&firsts), "firsts {firsts}");
    }

    #[test]
    fn update_returns_negative_of_delta() {
        let mut agent = QAgent::new(QKind::Dqn, 2, 4, 0.01, 6);
        let cands = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let q_before = agent.q_values(&cands)[0];
        let d = agent.update(&cands, 0, q_before + 1.0);
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variable_candidate_counts_supported() {
        let agent = QAgent::new(QKind::DuelingDqn, 2, 4, 0.01, 7);
        assert_eq!(agent.q_values(&vec![vec![0.0, 1.0]; 3]).len(), 3);
        assert_eq!(agent.q_values(&vec![vec![0.0, 1.0]; 7]).len(), 7);
    }
}
