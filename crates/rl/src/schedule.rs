//! Exploration / weighting schedules.
//!
//! Eq. 6 of the paper anneals the novelty-reward weight as
//! `ε_i = ε_e + (ε_s − ε_e) · e^{−i/M}` from `ε_s` down to `ε_e` over a
//! decay horizon `M` (defaults ε_s = 0.10, ε_e = 0.005, M = 1000).

/// Exponential decay schedule from `start` to `end` with time constant `m`.
#[derive(Debug, Clone, Copy)]
pub struct ExpDecay {
    /// Initial value `ε_s`.
    pub start: f64,
    /// Asymptotic value `ε_e`.
    pub end: f64,
    /// Decay factor `M` (steps).
    pub m: f64,
}

impl ExpDecay {
    /// The paper's novelty-weight schedule (§V): 0.10 → 0.005 over 1000
    /// steps.
    pub fn paper_novelty_weight() -> Self {
        ExpDecay { start: 0.10, end: 0.005, m: 1000.0 }
    }

    /// Value at step `i` (Eq. 6).
    pub fn at(&self, step: usize) -> f64 {
        self.end + (self.start - self.end) * (-(step as f64) / self.m).exp()
    }
}

/// Linear ε-greedy schedule used by the DQN-family agents.
#[derive(Debug, Clone, Copy)]
pub struct LinearDecay {
    /// Initial exploration rate.
    pub start: f64,
    /// Final exploration rate.
    pub end: f64,
    /// Steps over which to anneal.
    pub steps: usize,
}

impl LinearDecay {
    /// Value at step `i`.
    pub fn at(&self, step: usize) -> f64 {
        if step >= self.steps {
            return self.end;
        }
        let frac = step as f64 / self.steps as f64;
        self.start + (self.end - self.start) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_decay_endpoints() {
        let s = ExpDecay::paper_novelty_weight();
        assert!((s.at(0) - 0.10).abs() < 1e-12);
        assert!((s.at(1_000_000) - 0.005).abs() < 1e-9);
    }

    #[test]
    fn exp_decay_monotone() {
        let s = ExpDecay::paper_novelty_weight();
        let mut prev = f64::MAX;
        for i in (0..5000).step_by(100) {
            let v = s.at(i);
            assert!(v <= prev);
            assert!(v >= s.end && v <= s.start);
            prev = v;
        }
    }

    #[test]
    fn exp_decay_time_constant() {
        let s = ExpDecay { start: 1.0, end: 0.0, m: 100.0 };
        assert!((s.at(100) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn linear_decay_clamps() {
        let s = LinearDecay { start: 1.0, end: 0.1, steps: 10 };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(5) - 0.55).abs() < 1e-12);
        assert_eq!(s.at(10), 0.1);
        assert_eq!(s.at(100), 0.1);
    }
}
