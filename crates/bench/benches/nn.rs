//! Fused vs unfused predictor-inference benchmark for the NN hot path,
//! writing machine-readable results to `BENCH_nn.json` at the repository
//! root.
//!
//! Std-only, `harness = false`, like `trees.rs`: each entry is the median
//! wall time of `reps` runs after one warm-up, at the paper's predictor
//! configuration (embedding dim 32, 2-layer LSTM, FC head 16 → 1). The
//! unfused baseline runs the per-gate reference kernels kept in
//! `fastft_nn::reference`; the fused path is
//! `SequenceRegressor::predict_into` (concatenated gate weights, hoisted
//! input GEMM, pooled workspaces). `prefix` measures the engine's
//! suffix-extension pattern through `fastft_core::scoring::PrefixCache`.
//!
//! ```text
//! cargo bench -p fastft-bench --bench nn             # full sweep
//! cargo bench -p fastft-bench --bench nn -- --quick  # CI smoke
//! ```

use fastft_core::scoring::PrefixCache;
use fastft_nn::dense::Dense;
use fastft_nn::embedding::Embedding;
use fastft_nn::lstm::Lstm;
use fastft_nn::matrix::Matrix;
use fastft_nn::{activation::Activation, init, reference, EncoderKind, SequenceRegressor};
use fastft_runtime::Runtime;
use std::cell::Cell;
use std::time::Instant;

const VOCAB: usize = 40;
const DIM: usize = 32;
const LAYERS: usize = 2;
const NSEQ: usize = 32;

/// Median wall time in microseconds of `reps` runs of `f` (one warm-up).
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// The pre-fusion predictor inference path: fresh allocations per call,
/// per-gate reference kernels, one matrix per head layer.
struct RefPredictor {
    emb: Embedding,
    lstm: Lstm,
    head: Vec<Dense>,
}

impl RefPredictor {
    fn new(seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let emb = Embedding::new(VOCAB, DIM, &mut rng);
        let lstm = Lstm::new(DIM, DIM, LAYERS, &mut rng);
        let head = vec![
            Dense::new(DIM, 16, Activation::Relu, &mut rng),
            Dense::new(16, 1, Activation::Linear, &mut rng),
        ];
        RefPredictor { emb, lstm, head }
    }

    fn predict(&self, tokens: &[usize]) -> f64 {
        let x = self.emb.infer(tokens);
        let h = reference::lstm_forward(&self.lstm, &x);
        let last = h.data[(h.rows - 1) * h.cols..].to_vec();
        let mut cur = Matrix::from_vec(1, h.cols, last);
        for layer in &self.head {
            cur = layer.infer(&cur);
        }
        cur.data[0]
    }
}

fn fused_predictor(seed: u64) -> SequenceRegressor {
    SequenceRegressor::new(
        VOCAB,
        DIM,
        DIM,
        EncoderKind::Lstm { layers: LAYERS },
        &[16, 1],
        1e-3,
        seed,
    )
}

fn random_seqs(n: usize, len: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = init::rng(seed);
    (0..n).map(|_| (0..len).map(|_| rng.gen_range(0..VOCAB)).collect()).collect()
}

struct Record {
    seq_len: usize,
    ref_predict_us: f64,
    fused_predict_us: f64,
    batch_predict_us: f64,
    ref_extend_us: f64,
    cached_extend_us: f64,
    train_step_us: f64,
    minibatch_item_us: f64,
}

fn bench_case(seq_len: usize, reps: usize, out: &mut Vec<Record>) {
    println!("== seq_len {seq_len} (dim {DIM}, {LAYERS}-layer LSTM, head 16->1) ==");
    let reference = RefPredictor::new(7);
    let fused = fused_predictor(7);
    let seqs = random_seqs(NSEQ, seq_len, 100 + seq_len as u64);
    let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
    let per_seq = |total: f64| total / NSEQ as f64;

    // Single-sequence inference, NSEQ sequences per rep.
    let ref_predict = per_seq(time_us(reps, || {
        for s in &seqs {
            std::hint::black_box(reference.predict(s));
        }
    }));
    let fused_predict = per_seq(time_us(reps, || {
        let mut got = [0.0];
        for s in &seqs {
            fused.predict_into(s, &mut got);
            std::hint::black_box(got[0]);
        }
    }));
    let batch_predict = per_seq(time_us(reps, || {
        std::hint::black_box(fused.predict_batch(&refs));
    }));
    println!(
        "  predict   ref {ref_predict:>9.1} us | fused {fused_predict:>9.1} us \
         | batch{NSEQ} {batch_predict:>9.1} us | {:.2}x fused",
        ref_predict / fused_predict
    );

    // The engine's suffix-extension pattern: score every prefix of a
    // growing sequence, one new token at a time. The cached path keeps a
    // persistent PrefixCache across reps but sees a *fresh* sequence each
    // rep, matching steady-state engine behaviour (per-prefix cost shown).
    let extend_seqs = random_seqs(reps + 2, seq_len, 200 + seq_len as u64);
    let per_prefix = |total: f64| total / seq_len as f64;
    let ref_extend = per_prefix(time_us(reps, || {
        let s = &extend_seqs[0];
        for l in 1..=s.len() {
            std::hint::black_box(reference.predict(&s[..l]));
        }
    }));
    let mut cache = PrefixCache::new(256);
    let rep_idx = Cell::new(0usize);
    let cached_extend = per_prefix(time_us(reps, || {
        let s = &extend_seqs[rep_idx.get() % extend_seqs.len()];
        rep_idx.set(rep_idx.get() + 1);
        let mut got = [0.0];
        for l in 1..=s.len() {
            cache.score_into(&fused, &s[..l], &mut got);
            std::hint::black_box(got[0]);
        }
    }));
    println!(
        "  extend    ref {ref_extend:>9.1} us | cached {cached_extend:>8.1} us | {:.2}x",
        ref_extend / cached_extend
    );

    // Training: per-sample steps and an 8-item minibatch (single worker).
    let mut trainee = fused_predictor(9);
    let train_step = per_seq(time_us(reps, || {
        for s in &seqs {
            std::hint::black_box(trainee.train_step(s, &[0.5]));
        }
    }));
    let mut trainee = fused_predictor(9);
    let rt = Runtime::new(1);
    let targets = vec![[0.5]; NSEQ];
    let items: Vec<(&[usize], &[f64])> =
        refs.iter().zip(targets.iter()).map(|(&s, t)| (s, t.as_slice())).collect();
    let minibatch_item = per_seq(time_us(reps, || {
        for chunk in items.chunks(8) {
            std::hint::black_box(trainee.train_minibatch(chunk, &rt));
        }
    }));
    println!("  train     step {train_step:>8.1} us | minibatch item {minibatch_item:>8.1} us");

    out.push(Record {
        seq_len,
        ref_predict_us: ref_predict,
        fused_predict_us: fused_predict,
        batch_predict_us: batch_predict,
        ref_extend_us: ref_extend,
        cached_extend_us: cached_extend,
        train_step_us: train_step,
        minibatch_item_us: minibatch_item,
    });
}

fn write_json(records: &[Record], quick: bool) {
    let mut body = String::from("{\n  \"benchmark\": \"nn_fused_vs_reference\",\n");
    body.push_str(&format!(
        "  \"quick\": {quick},\n  \"config\": {{\"vocab\": {VOCAB}, \"dim\": {DIM}, \
         \"lstm_layers\": {LAYERS}, \"head\": [16, 1]}},\n  \"results\": [\n"
    ));
    for (i, r) in records.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"seq_len\": {}, \"ref_predict_us\": {:.2}, \"fused_predict_us\": {:.2}, \
             \"batch_predict_us\": {:.2}, \"speedup_predict\": {:.2}, \
             \"ref_extend_us\": {:.2}, \"cached_extend_us\": {:.2}, \"speedup_extend\": {:.2}, \
             \"train_step_us\": {:.2}, \"minibatch_item_us\": {:.2}}}{}\n",
            r.seq_len,
            r.ref_predict_us,
            r.fused_predict_us,
            r.batch_predict_us,
            r.ref_predict_us / r.fused_predict_us,
            r.ref_extend_us,
            r.cached_extend_us,
            r.ref_extend_us / r.cached_extend_us,
            r.train_step_us,
            r.minibatch_item_us,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    // `cargo bench` runs with the package directory as CWD; anchor the
    // output at the workspace root so CI can pick it up at a fixed path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    std::fs::write(path, &body).expect("write BENCH_nn.json");
    println!("wrote {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("FASTFT_BENCH_QUICK").is_ok_and(|v| v == "1");
    println!(
        "fastft nn fused-kernel benchmark ({}; median wall time)",
        if quick { "quick" } else { "full" }
    );
    let cases: Vec<(usize, usize)> =
        if quick { vec![(8, 3), (24, 3)] } else { vec![(8, 15), (24, 9), (64, 5)] };
    let mut records = Vec::new();
    for &(seq_len, reps) in &cases {
        bench_case(seq_len, reps, &mut records);
    }
    write_json(&records, quick);
}
