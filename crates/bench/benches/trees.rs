//! Exact vs histogram split-search benchmark for the downstream tree
//! stack (tree / forest / boosting), writing machine-readable results to
//! `BENCH_trees.json` at the repository root.
//!
//! Std-only, `harness = false`, like `micro.rs`: each entry is the median
//! wall time of `reps` fits after one warm-up. Pass `--quick` (or set
//! `FASTFT_BENCH_QUICK=1`) for the reduced CI smoke variant that skips
//! the large configurations.
//!
//! ```text
//! cargo bench -p fastft-bench --bench trees             # full sweep
//! cargo bench -p fastft-bench --bench trees -- --quick  # CI smoke
//! ```

use fastft_ml::boosting::{BoostParams, GradientBoostingClassifier};
use fastft_ml::forest::{ForestParams, RandomForestClassifier};
use fastft_ml::tree::{CartParams, DecisionTreeClassifier, SplitMethod};
use fastft_tabular::datagen;
use std::time::Instant;

/// Median wall time in microseconds of `reps` runs of `f` (one warm-up).
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

struct BenchCase {
    dataset: &'static str,
    rows: usize,
    /// Models fitted on this config ("tree" always; ensembles only where
    /// the exact baseline stays affordable).
    ensembles: bool,
    reps: usize,
}

struct Record {
    dataset: String,
    rows: usize,
    cols: usize,
    model: &'static str,
    exact_us: f64,
    hist_us: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.exact_us / self.hist_us
    }
}

fn exact() -> SplitMethod {
    SplitMethod::Exact
}

fn hist() -> SplitMethod {
    SplitMethod::default()
}

fn bench_case(case: &BenchCase, out: &mut Vec<Record>) {
    let spec = datagen::by_name(case.dataset).unwrap();
    let mut data = datagen::generate_capped(spec, case.rows, 0);
    data.sanitize();
    let cols: Vec<Vec<f64>> = data.features.iter().map(|c| c.values.clone()).collect();
    let y = data.class_labels();
    let n = y.len();
    let d = cols.len();
    println!("== {} ({n} rows x {d} cols) ==", case.dataset);

    let time_tree = |method: SplitMethod| {
        time_us(case.reps, || {
            let params = CartParams { split_method: method, ..CartParams::default() };
            let mut t = DecisionTreeClassifier::new(params, 0);
            t.fit(&cols, &y, data.n_classes);
            std::hint::black_box(t.n_nodes());
        })
    };
    let (e, h) = (time_tree(exact()), time_tree(hist()));
    println!("  tree   exact {:>10.1} us | hist {:>10.1} us | {:.2}x", e, h, e / h);
    out.push(Record {
        dataset: case.dataset.into(),
        rows: n,
        cols: d,
        model: "tree",
        exact_us: e,
        hist_us: h,
    });

    if !case.ensembles {
        return;
    }

    let time_forest = |method: SplitMethod| {
        time_us(case.reps, || {
            let mut params = ForestParams::default();
            params.cart.split_method = method;
            let mut f = RandomForestClassifier::new(params, 0);
            f.fit(&cols, &y, data.n_classes);
            std::hint::black_box(f.feature_importances().len());
        })
    };
    let (e, h) = (time_forest(exact()), time_forest(hist()));
    println!("  forest exact {:>10.1} us | hist {:>10.1} us | {:.2}x", e, h, e / h);
    out.push(Record {
        dataset: case.dataset.into(),
        rows: n,
        cols: d,
        model: "forest",
        exact_us: e,
        hist_us: h,
    });

    let time_boost = |method: SplitMethod| {
        time_us(case.reps, || {
            let params = BoostParams { split_method: method, ..BoostParams::default() };
            let mut g = GradientBoostingClassifier::new(params, 0);
            g.fit(&cols, &y, data.n_classes);
            std::hint::black_box(&g);
        })
    };
    let (e, h) = (time_boost(exact()), time_boost(hist()));
    println!("  boost  exact {:>10.1} us | hist {:>10.1} us | {:.2}x", e, h, e / h);
    out.push(Record {
        dataset: case.dataset.into(),
        rows: n,
        cols: d,
        model: "boosting",
        exact_us: e,
        hist_us: h,
    });
}

fn write_json(records: &[Record], quick: bool) {
    let mut body = String::from("{\n  \"benchmark\": \"split_method_exact_vs_histogram\",\n");
    body.push_str(&format!("  \"quick\": {quick},\n  \"results\": [\n"));
    for (i, r) in records.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"cols\": {}, \"model\": \"{}\", \
             \"exact_us\": {:.1}, \"hist_us\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.dataset,
            r.rows,
            r.cols,
            r.model,
            r.exact_us,
            r.hist_us,
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    // `cargo bench` runs with the package directory as CWD; anchor the
    // output at the workspace root so CI can pick it up at a fixed path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trees.json");
    std::fs::write(path, &body).expect("write BENCH_trees.json");
    println!("wrote {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("FASTFT_BENCH_QUICK").is_ok_and(|v| v == "1");
    println!(
        "fastft tree-stack split benchmark ({}; median wall time)",
        if quick { "quick" } else { "full" }
    );
    let cases: Vec<BenchCase> = if quick {
        vec![BenchCase { dataset: "pima_indian", rows: 500, ensembles: true, reps: 2 }]
    } else {
        vec![
            BenchCase { dataset: "pima_indian", rows: 768, ensembles: true, reps: 5 },
            BenchCase { dataset: "adult", rows: 6000, ensembles: true, reps: 3 },
            // Largest config: single tree only — the exact forest/boosting
            // baselines at this size take minutes without telling us more.
            BenchCase { dataset: "jannis", rows: 20000, ensembles: false, reps: 3 },
        ]
    };
    let mut records = Vec::new();
    for case in &cases {
        bench_case(case, &mut records);
    }
    write_json(&records, quick);
}
