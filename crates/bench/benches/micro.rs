//! Criterion micro-benchmarks over the workspace's hot paths — most
//! importantly the paper's central speed claim: one Performance-Predictor
//! forward pass vs one full downstream evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastft_core::predictor::{PerformancePredictor, PredictorConfig};
use fastft_core::sequence::{encode_feature_set, TokenVocab};
use fastft_core::transform::FeatureSet;
use fastft_core::{cluster, Op};
use fastft_ml::forest::{ForestParams, RandomForestClassifier};
use fastft_ml::Evaluator;
use fastft_nn::lstm::Lstm;
use fastft_nn::matrix::Matrix;
use fastft_nn::init;
use fastft_tabular::{datagen, mi, rngx};
use rand::Rng;

fn dataset(rows: usize) -> fastft_tabular::Dataset {
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut d = datagen::generate_capped(spec, rows, 0);
    d.sanitize();
    d
}

/// The paper's Table II in microcosm: predictor forward vs downstream CV.
fn bench_predictor_vs_downstream(c: &mut Criterion) {
    let mut group = c.benchmark_group("reward_source");
    group.sample_size(10);
    let data = dataset(400);
    let vocab = TokenVocab::new(data.n_features());
    let fs = FeatureSet::from_original(&data);
    let seq = encode_feature_set(&fs.exprs, &vocab, 192);
    let predictor = PerformancePredictor::new(vocab.size(), PredictorConfig::default(), 0);
    group.bench_function("predictor_forward", |b| {
        b.iter(|| std::hint::black_box(predictor.predict(&seq)))
    });
    let evaluator = Evaluator { folds: 5, ..Evaluator::default() };
    group.bench_function("downstream_5fold_rf", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate(&data)))
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut rng = init::rng(1);
        let a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>()).collect());
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>()).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

fn bench_lstm_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_forward");
    group.sample_size(20);
    let lstm = Lstm::new(32, 32, 2, &mut init::rng(2));
    for t in [16usize, 64, 192] {
        let mut rng = init::rng(3);
        let x = Matrix::from_vec(t, 32, (0..t * 32).map(|_| rng.gen::<f64>() - 0.5).collect());
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, _| {
            bench.iter(|| std::hint::black_box(lstm.infer(&x)))
        });
    }
    group.finish();
}

fn bench_mi_and_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("mi");
    group.sample_size(20);
    let data = dataset(500);
    group.bench_function("relevance_scores", |b| {
        b.iter(|| std::hint::black_box(mi::relevance_scores(&data, 12)))
    });
    group.bench_function("mi_cache_plus_clustering", |b| {
        b.iter(|| {
            let cache = cluster::MiCache::compute(&data, 12);
            std::hint::black_box(cluster::cluster_features(&data, &cache, 1.0, 2))
        })
    });
    group.finish();
}

fn bench_random_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_forest");
    group.sample_size(10);
    let data = dataset(400);
    let cols: Vec<Vec<f64>> = data.features.iter().map(|col| col.values.clone()).collect();
    let y = data.class_labels();
    group.bench_function("fit_400x8", |b| {
        b.iter(|| {
            let mut rf = RandomForestClassifier::new(ForestParams::default(), 0);
            rf.fit(&cols, &y, data.n_classes);
            std::hint::black_box(rf)
        })
    });
    group.finish();
}

fn bench_group_crossing(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossing");
    group.sample_size(20);
    let data = dataset(500);
    let fs = FeatureSet::from_original(&data);
    let head: Vec<usize> = (0..4).collect();
    let tail: Vec<usize> = (4..8).collect();
    group.bench_function("binary_4x4", |b| {
        b.iter(|| {
            let mut rng = rngx::rng(5);
            std::hint::black_box(fs.cross(&head, Op::Multiply, Some(&tail), 16, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_predictor_vs_downstream,
    bench_matmul,
    bench_lstm_forward,
    bench_mi_and_clustering,
    bench_random_forest,
    bench_group_crossing
);
criterion_main!(benches);
