//! Std-only micro-benchmarks over the workspace's hot paths — most
//! importantly the paper's central speed claim: one Performance-Predictor
//! forward pass vs one full downstream evaluation — plus the parallel-layer
//! scaling check (random-forest fit and 5-fold CV, serial vs 4 workers).
//!
//! Runs offline via `cargo bench -p fastft-bench` (`harness = false`); no
//! external benchmarking crate. Each benchmark reports the median of
//! `reps` timed runs after one warm-up.

use fastft_core::predictor::{PerformancePredictor, PredictorConfig};
use fastft_core::sequence::{encode_feature_set, TokenVocab};
use fastft_core::transform::FeatureSet;
use fastft_core::{cluster, Op};
use fastft_ml::forest::{ForestParams, RandomForestClassifier};
use fastft_ml::Evaluator;
use fastft_nn::init;
use fastft_nn::lstm::Lstm;
use fastft_nn::matrix::Matrix;
use fastft_runtime::Runtime;
use fastft_tabular::{datagen, mi, rngx};
use std::time::Instant;

/// Median wall time in microseconds of `reps` runs of `f` (one warm-up).
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn report(group: &str, name: &str, us: f64) {
    if us >= 1e6 {
        println!("{group}/{name:<28} {:>10.3} s", us / 1e6);
    } else if us >= 1e3 {
        println!("{group}/{name:<28} {:>10.3} ms", us / 1e3);
    } else {
        println!("{group}/{name:<28} {:>10.1} us", us);
    }
}

fn dataset(rows: usize) -> fastft_tabular::Dataset {
    let spec = datagen::by_name("pima_indian").unwrap();
    let mut d = datagen::generate_capped(spec, rows, 0);
    d.sanitize();
    d
}

/// The paper's Table II in microcosm: predictor forward vs downstream CV.
fn bench_predictor_vs_downstream() {
    let data = dataset(400);
    let vocab = TokenVocab::new(data.n_features());
    let fs = FeatureSet::from_original(&data);
    let seq = encode_feature_set(&fs.exprs, &vocab, 192);
    let predictor = PerformancePredictor::new(vocab.size(), PredictorConfig::default(), 0);
    report(
        "reward_source",
        "predictor_forward",
        time_us(10, || {
            std::hint::black_box(predictor.predict(&seq));
        }),
    );
    let evaluator = Evaluator { folds: 5, ..Evaluator::default() };
    report(
        "reward_source",
        "downstream_5fold_rf",
        time_us(10, || {
            std::hint::black_box(evaluator.evaluate(&data).unwrap());
        }),
    );
}

/// The runtime crate's scaling claim: the same deterministic result, timed
/// serial vs 4 workers, for the two downstream hot paths.
fn bench_parallel_scaling() {
    let data = dataset(600);
    let cols: Vec<Vec<f64>> = data.features.iter().map(|c| c.values.clone()).collect();
    let y = data.class_labels();
    let rt1 = Runtime::new(1);
    let rt4 = Runtime::new(4);
    let serial = time_us(5, || {
        let mut rf = RandomForestClassifier::new(ForestParams::default(), 0);
        rf.fit_with(&rt1, &cols, &y, data.n_classes);
        std::hint::black_box(rf);
    });
    let parallel = time_us(5, || {
        let mut rf = RandomForestClassifier::new(ForestParams::default(), 0);
        rf.fit_with(&rt4, &cols, &y, data.n_classes);
        std::hint::black_box(rf);
    });
    report("parallel", "rf_fit_serial", serial);
    report("parallel", "rf_fit_4workers", parallel);
    println!("parallel/rf_fit speedup at 4 workers: {:.2}x", serial / parallel);

    let evaluator = Evaluator { folds: 5, ..Evaluator::default() };
    let serial = time_us(5, || {
        std::hint::black_box(evaluator.evaluate_with(&rt1, &data).unwrap());
    });
    let parallel = time_us(5, || {
        std::hint::black_box(evaluator.evaluate_with(&rt4, &data).unwrap());
    });
    report("parallel", "cv5_serial", serial);
    report("parallel", "cv5_4workers", parallel);
    println!("parallel/cv5 speedup at 4 workers: {:.2}x", serial / parallel);
}

fn bench_matmul() {
    for n in [32usize, 64, 128] {
        let mut rng = init::rng(1);
        let a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>()).collect());
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>()).collect());
        report(
            "matmul",
            &format!("{n}x{n}"),
            time_us(20, || {
                std::hint::black_box(a.matmul(&b));
            }),
        );
    }
}

fn bench_lstm_forward() {
    let lstm = Lstm::new(32, 32, 2, &mut init::rng(2));
    for t in [16usize, 64, 192] {
        let mut rng = init::rng(3);
        let x = Matrix::from_vec(t, 32, (0..t * 32).map(|_| rng.gen::<f64>() - 0.5).collect());
        report(
            "lstm_forward",
            &format!("seq{t}"),
            time_us(20, || {
                std::hint::black_box(lstm.infer(&x));
            }),
        );
    }
}

fn bench_mi_and_clustering() {
    let data = dataset(500);
    report(
        "mi",
        "relevance_scores",
        time_us(20, || {
            std::hint::black_box(mi::relevance_scores(&data, 12));
        }),
    );
    report(
        "mi",
        "mi_cache_plus_clustering",
        time_us(20, || {
            let cache = cluster::MiCache::compute(&data, 12);
            std::hint::black_box(cluster::cluster_features(&data, &cache, 1.0, 2));
        }),
    );
}

fn bench_group_crossing() {
    let data = dataset(500);
    let fs = FeatureSet::from_original(&data);
    let head: Vec<usize> = (0..4).collect();
    let tail: Vec<usize> = (4..8).collect();
    report(
        "crossing",
        "binary_4x4",
        time_us(20, || {
            let mut rng = rngx::rng(5);
            std::hint::black_box(fs.cross(&head, Op::Multiply, Some(&tail), 16, &mut rng));
        }),
    );
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    println!("fastft micro-benchmarks (std-only; median of N runs)");
    bench_predictor_vs_downstream();
    bench_parallel_scaling();
    bench_matmul();
    bench_lstm_forward();
    bench_mi_and_clustering();
    bench_group_crossing();
}
