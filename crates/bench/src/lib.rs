//! Benchmark harness reproducing every table and figure of the paper.
//!
//! The `repro` binary exposes one subcommand per artifact (`table1` …
//! `fig15`); each prints the same rows/series the paper reports. Absolute
//! numbers differ from the paper's A100 testbed — the *shape* (who wins, by
//! roughly what factor, where crossovers fall) is the reproduction target;
//! see EXPERIMENTS.md for the recorded comparison.

pub mod experiments;
pub mod report;
pub mod scale;

pub use report::Table;
pub use scale::Scale;
