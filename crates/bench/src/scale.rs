//! Experiment scaling: the paper runs 200 episodes × 5 seeds on an A100
//! server; the harness defaults are laptop-minutes and `--quick` is
//! CI-seconds. `--full` approaches the paper's protocol.

use fastft_core::FastFtConfig;
use fastft_ml::Evaluator;
use fastft_tabular::{datagen, Dataset};

/// Harness effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-scale: tiny row caps, one seed, few episodes.
    Quick,
    /// Laptop-scale default.
    Standard,
    /// Paper-scale protocol (hours).
    Full,
}

impl Scale {
    /// Parse from CLI flags.
    pub fn from_flags(quick: bool, full: bool) -> Scale {
        match (quick, full) {
            (true, _) => Scale::Quick,
            (_, true) => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Row cap applied to generated datasets.
    pub fn row_cap(self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Standard => 500,
            Scale::Full => usize::MAX,
        }
    }

    /// Independent seeds per cell (paper: 5).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Standard => 2,
            Scale::Full => 5,
        }
    }

    /// FASTFT episode budget (paper: 200).
    pub fn episodes(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Standard => 14,
            Scale::Full => 200,
        }
    }

    /// Steps per episode (paper: 15).
    pub fn steps(self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Standard => 8,
            Scale::Full => 15,
        }
    }

    /// Cold-start episodes (paper: 10).
    pub fn cold_start(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Standard => 4,
            Scale::Full => 10,
        }
    }

    /// Dataset names exercised by the multi-dataset experiments.
    pub fn dataset_subset(self) -> Vec<&'static str> {
        match self {
            Scale::Quick => vec!["pima_indian", "openml_620", "thyroid"],
            Scale::Standard => vec![
                "pima_indian",
                "cardiovascular",
                "wine_quality_red",
                "openml_589",
                "openml_620",
                "thyroid",
                "mammography",
            ],
            Scale::Full => datagen::PAPER_CATALOG.iter().map(|s| s.name).collect(),
        }
    }

    /// The FASTFT configuration at this scale for a given seed.
    pub fn fastft_config(self, seed: u64) -> FastFtConfig {
        FastFtConfig {
            episodes: self.episodes(),
            steps_per_episode: self.steps(),
            cold_start_episodes: self.cold_start(),
            retrain_every: 5.min(self.episodes().saturating_sub(1)).max(1),
            evaluator: self.evaluator(),
            seed,
            ..FastFtConfig::default()
        }
    }

    /// Downstream evaluator at this scale.
    pub fn evaluator(self) -> Evaluator {
        Evaluator { folds: if self == Scale::Quick { 3 } else { 5 }, ..Evaluator::default() }
    }

    /// Generate the capped, sanitised analog of a catalog dataset.
    pub fn load(self, name: &str, seed: u64) -> Dataset {
        let spec = datagen::by_name(name).unwrap_or_else(|| panic!("unknown dataset `{name}`"));
        let mut d = datagen::generate_capped(spec, self.row_cap(), seed);
        d.sanitize();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_resolve() {
        assert_eq!(Scale::from_flags(true, false), Scale::Quick);
        assert_eq!(Scale::from_flags(false, true), Scale::Full);
        assert_eq!(Scale::from_flags(false, false), Scale::Standard);
        assert_eq!(Scale::from_flags(true, true), Scale::Quick);
    }

    #[test]
    fn quick_loads_are_small() {
        let d = Scale::Quick.load("albert", 0);
        assert!(d.n_rows() <= 300);
    }

    #[test]
    fn full_subset_is_whole_catalog() {
        assert_eq!(Scale::Full.dataset_subset().len(), 24);
    }
}
