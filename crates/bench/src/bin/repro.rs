//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--quick|--full]
//! repro all [--quick|--full]
//! repro list
//! ```
//!
//! Experiments: table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig13 fig14 fig15.

use fastft_bench::experiments;
use fastft_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let scale = Scale::from_flags(quick, full);
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    if ids.is_empty() || ids.contains(&"help") {
        eprintln!("usage: repro <experiment>... [--quick|--full]");
        eprintln!("       repro all [--quick|--full]");
        eprintln!("experiments: {}", experiments::ALL.join(" "));
        std::process::exit(if ids.is_empty() { 2 } else { 0 });
    }
    if ids.contains(&"list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }

    let to_run: Vec<&str> = if ids.contains(&"all") { experiments::ALL.to_vec() } else { ids };
    eprintln!("scale: {scale:?}");
    for id in to_run {
        let t0 = std::time::Instant::now();
        if !experiments::dispatch(id, scale) {
            eprintln!("unknown experiment `{id}` — see `repro list`");
            std::process::exit(2);
        }
        eprintln!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
