//! Fig. 9: downstream performance vs total runtime for every method —
//! the scatter showing FASTFT in the good corner (high score, low time).

use super::methods::lineup;
use crate::report::Table;
use crate::Scale;

/// Run the Fig. 9 reproduction.
pub fn run(scale: Scale) {
    for name in ["pima_indian", "wine_quality_red"] {
        let data = scale.load(name, 0);
        let evaluator = scale.evaluator();
        let mut table = Table::new(["Method", "Score", "Time (s)", "Downstream evals"]);
        let mut rows: Vec<(String, f64, f64, usize)> = Vec::new();
        for method in lineup(scale) {
            let r = method.run(&data, &evaluator, 0);
            rows.push((
                r.name.to_string(),
                r.score,
                r.elapsed_secs + r.simulated_latency_secs,
                r.downstream_evals,
            ));
            eprintln!("[fig9] {name}/{} done", method.name());
        }
        // Sort by score so the winner is at the top.
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (n, s, t, e) in rows {
            table.row([n, format!("{s:.3}"), format!("{t:.2}"), format!("{e}")]);
        }
        table.print(&format!("Fig. 9 — performance vs time ({name})"));
    }
}
