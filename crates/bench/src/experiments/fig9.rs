//! Fig. 9: downstream performance vs total runtime for every method —
//! the scatter showing FASTFT in the good corner (high score, low time).

use super::methods::lineup;
use crate::report::Table;
use crate::Scale;
use fastft_baselines::RunContext;
use fastft_runtime::Runtime;

/// Run the Fig. 9 reproduction.
pub fn run(scale: Scale) {
    let rt = Runtime::from_env();
    for name in ["pima_indian", "wine_quality_red"] {
        let data = scale.load(name, 0);
        let evaluator = scale.evaluator();
        let mut table = Table::new(["Method", "Score", "Time (s)", "Downstream evals"]);
        let methods = lineup(scale);
        // Per-method fan-out; par_map preserves input order so rows stay
        // deterministic before the score sort below.
        let mut rows: Vec<(String, f64, f64, usize)> =
            rt.par_map(methods.iter().collect::<Vec<_>>(), |method| {
                let ctx = RunContext::new(&evaluator, &rt, 0);
                let r = method.run(&data, &ctx).expect("fig9 method run");
                eprintln!("[fig9] {name}/{} done", method.name());
                (r.name.to_string(), r.score, r.total_time_secs(), r.downstream_evals)
            });
        // Sort by score so the winner is at the top.
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (n, s, t, e) in rows {
            table.row([n, format!("{s:.3}"), format!("{t:.2}"), format!("{e}")]);
        }
        table.print(&format!("Fig. 9 — performance vs time ({name})"));
    }
}
