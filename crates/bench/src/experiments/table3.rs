//! Table III: robustness of the transformed feature sets across six
//! downstream model families (RFC / XGBC / LR / SVM-C / Ridge-C / DT-C) on
//! the German Credit analog.

use super::methods::lineup;
use crate::report::{fmt3, Table};
use crate::Scale;
use fastft_baselines::RunContext;
use fastft_ml::{Evaluator, ModelKind};
use fastft_runtime::Runtime;

/// Run the Table III reproduction.
pub fn run(scale: Scale) {
    let rt = Runtime::from_env();
    let data = scale.load("german_credit", 0);
    let evaluator = scale.evaluator();
    let mut table = Table::new(
        std::iter::once("Method".to_string())
            .chain(ModelKind::TABLE3.iter().map(|m| m.label().to_string())),
    );
    for method in lineup(scale) {
        // Transform once with the default (random-forest) evaluator…
        let ctx = RunContext::new(&evaluator, &rt, 0);
        let result = method.run(&data, &ctx).expect("table3 method run");
        // …then re-score the *same* transformed dataset under each model.
        let mut cells = vec![method.name().to_string()];
        for model in ModelKind::TABLE3 {
            let ev = Evaluator { model, ..evaluator.clone() };
            cells.push(fmt3(ev.evaluate(result.dataset()).expect("re-score")));
        }
        table.row(cells);
        eprintln!("[table3] {} done", method.name());
    }
    table.print("Table III — robustness across downstream models (German Credit, F1)");
}
