//! Extension experiment (paper §IX future work): robustness of FASTFT to
//! feature noise and label noise — how much of the transformation gain
//! survives as the data is corrupted, compared against the random baseline.

use crate::report::Table;
use crate::Scale;
use fastft_baselines::{expansion::Rfg, FeatureTransformMethod, RunContext};
use fastft_core::Session;
use fastft_runtime::Runtime;
use fastft_tabular::noise;

/// Run the noise-robustness extension.
pub fn run(scale: Scale) {
    let rt = Runtime::from_env();
    let evaluator = scale.evaluator();
    // One session: all four corrupted datasets run over the same pool.
    let session = Session::new(scale.fastft_config(0)).expect("valid config");
    let mut table = Table::new(["Corruption", "Base", "RFG", "FASTFT", "FASTFT gain"]);
    let settings: [(&str, f64, f64); 4] = [
        ("clean", 0.0, 0.0),
        ("feature noise 0.2", 0.2, 0.0),
        ("label flips 10%", 0.0, 0.10),
        ("both", 0.2, 0.10),
    ];
    for (label, feat_level, flip_frac) in settings {
        let mut data = scale.load("pima_indian", 0);
        if feat_level > 0.0 {
            noise::add_feature_noise(&mut data, feat_level, 1);
        }
        if flip_frac > 0.0 {
            noise::flip_labels(&mut data, flip_frac, 2);
        }
        data.sanitize();
        let base = evaluator.evaluate(&data).expect("base evaluation");
        let ctx = RunContext::new(&evaluator, &rt, 0);
        let rfg = Rfg::default().run(&data, &ctx).expect("RFG run").score;
        let fast = session.run(&data).expect("FASTFT fit").best_score;
        table.row([
            label.to_string(),
            format!("{base:.3}"),
            format!("{rfg:.3}"),
            format!("{fast:.3}"),
            format!("{:+.3}", fast - base),
        ]);
        eprintln!("[ext_noise] {label} done");
    }
    table.print("Extension — noise robustness (Pima Indian analog)");
}
