//! One module per paper artifact; each exposes `run(scale)` printing the
//! same rows/series the paper reports (see DESIGN.md §3 for the index).

pub mod ext_noise;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod methods;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::Scale;

/// All experiment ids in paper order.
pub const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ext_noise",
];

/// Dispatch an experiment by id. Returns `false` for unknown ids.
pub fn dispatch(id: &str, scale: Scale) -> bool {
    match id {
        "table1" => table1::run(scale),
        "table2" => table2::run(scale),
        "table3" => table3::run(scale),
        "table4" => table4::run(scale),
        "fig6" => fig6::run(scale),
        "fig7" => fig7::run(scale),
        "fig8" => fig8::run(scale),
        "fig9" => fig9::run(scale),
        "fig10" => fig10::run(scale),
        "fig11" => fig11::run(scale),
        "fig12" => fig12::run(scale),
        "fig13" => fig13::run(scale),
        "fig14" => fig14::run(scale),
        "fig15" => fig15::run(scale),
        "ext_noise" => ext_noise::run(scale),
        _ => return false,
    }
    true
}
