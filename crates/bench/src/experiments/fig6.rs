//! Fig. 6: ablation of the Performance Predictor (−PP), Replay Critical
//! Transformation (−RCT) and Novelty Estimator (−NE) across four datasets.

use crate::report::{fmt_mean_std, Table};
use crate::Scale;
use fastft_core::{FastFt, FastFtConfig};

const DATASETS: [&str; 4] = ["pima_indian", "wine_quality_red", "openml_589", "thyroid"];

fn score(cfg: FastFtConfig, scale: Scale, name: &str) -> Vec<f64> {
    let rt = fastft_runtime::Runtime::from_env();
    rt.par_map((0..scale.seeds()).collect(), |seed| {
        let data = scale.load(name, seed);
        FastFt::new(FastFtConfig { seed, ..cfg.clone() }).fit(&data).expect("FASTFT fit").best_score
    })
}

/// Run the Fig. 6 reproduction.
pub fn run(scale: Scale) {
    let mut table = Table::new(["Dataset", "FASTFT", "FASTFT-PP", "FASTFT-RCT", "FASTFT-NE"]);
    for name in DATASETS {
        let base = scale.fastft_config(0);
        let full = score(base.clone(), scale, name);
        let no_pp = score(base.clone().without_predictor(), scale, name);
        let no_rct = score(base.clone().without_critical_replay(), scale, name);
        let no_ne = score(base.without_novelty(), scale, name);
        table.row([
            name.to_string(),
            fmt_mean_std(&full),
            fmt_mean_std(&no_pp),
            fmt_mean_std(&no_rct),
            fmt_mean_std(&no_ne),
        ]);
        eprintln!("[fig6] {name} done");
    }
    table.print("Fig. 6 — ablation of PP / RCT / NE (best downstream score)");
}
