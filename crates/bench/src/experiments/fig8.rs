//! Fig. 8: sequential-model ablation — LSTM vs Transformer (FASTFTᵀ) vs
//! RNN (FASTFTᴿ) as the evaluation-component encoder: downstream
//! performance and component (estimation) time.

use crate::report::Table;
use crate::Scale;
use fastft_core::{FastFt, FastFtConfig};
use fastft_nn::EncoderKind;

/// Run the Fig. 8 reproduction.
pub fn run(scale: Scale) {
    // The paper's trio plus a GRU extension row (marked in EXPERIMENTS.md).
    let encoders = [
        EncoderKind::Lstm { layers: 2 },
        EncoderKind::Rnn { layers: 2 },
        EncoderKind::Gru { layers: 2 },
        EncoderKind::Transformer { heads: 2, blocks: 1 },
    ];
    let mut table = Table::new(["Dataset", "Encoder", "Score", "Estimation time", "Overall time"]);
    for name in ["pima_indian", "openml_620"] {
        let data = scale.load(name, 0);
        for enc in encoders {
            let cfg = FastFtConfig { encoder: enc, ..scale.fastft_config(0) };
            let r = FastFt::new(cfg).fit(&data).expect("FASTFT fit");
            table.row([
                name.to_string(),
                enc.label().to_string(),
                format!("{:.3}", r.best_score),
                format!("{:.2}s", r.telemetry.estimation_secs),
                format!("{:.2}s", r.telemetry.total_secs),
            ]);
            eprintln!("[fig8] {name}/{} done", enc.label());
        }
    }
    table.print("Fig. 8 — sequence-encoder ablation (FASTFT / FASTFT-R / FASTFT-T)");
}
