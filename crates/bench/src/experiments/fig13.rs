//! Fig. 13: hyperparameter studies — novelty-reward weights (ε_s, ε_e),
//! decay steps M and memory size S across datasets.

use crate::report::{fmt_mean_std, Table};
use crate::Scale;
use fastft_core::{FastFt, FastFtConfig};

const DATASETS: [&str; 2] = ["pima_indian", "openml_620"];

fn scores(cfg: &FastFtConfig, scale: Scale, name: &str) -> Vec<f64> {
    let rt = fastft_runtime::Runtime::from_env();
    rt.par_map((0..scale.seeds()).collect(), |seed| {
        let data = scale.load(name, seed);
        FastFt::new(FastFtConfig { seed, ..cfg.clone() }).fit(&data).expect("FASTFT fit").best_score
    })
}

/// Run the Fig. 13 reproduction.
pub fn run(scale: Scale) {
    // (a) novelty weight (ε_s, ε_e)
    let weights = [(0.05, 0.001), (0.10, 0.005), (0.20, 0.01), (0.50, 0.05)];
    let mut table = Table::new(
        std::iter::once("(eps_s, eps_e)".to_string()).chain(DATASETS.iter().map(|d| d.to_string())),
    );
    for (s, e) in weights {
        let mut cells = vec![format!("({s}, {e})")];
        for name in DATASETS {
            let cfg = FastFtConfig { eps_start: s, eps_end: e, ..scale.fastft_config(0) };
            cells.push(fmt_mean_std(&scores(&cfg, scale, name)));
        }
        table.row(cells);
        eprintln!("[fig13] weight ({s},{e}) done");
    }
    table.print("Fig. 13a — novelty reward weight sweep");

    // (b) decay steps M
    let mut table = Table::new(
        std::iter::once("Decay M".to_string()).chain(DATASETS.iter().map(|d| d.to_string())),
    );
    for m in [100.0, 1000.0, 10000.0] {
        let mut cells = vec![format!("{m}")];
        for name in DATASETS {
            let cfg = FastFtConfig { decay_m: m, ..scale.fastft_config(0) };
            cells.push(fmt_mean_std(&scores(&cfg, scale, name)));
        }
        table.row(cells);
        eprintln!("[fig13] decay {m} done");
    }
    table.print("Fig. 13b — novelty decay steps sweep");

    // (c) memory size S
    let mut table = Table::new(
        std::iter::once("Memory S".to_string()).chain(DATASETS.iter().map(|d| d.to_string())),
    );
    for s in [8usize, 16, 32, 64] {
        let mut cells = vec![format!("{s}")];
        for name in DATASETS {
            let cfg = FastFtConfig { memory_size: s, ..scale.fastft_config(0) };
            cells.push(fmt_mean_std(&scores(&cfg, scale, name)));
        }
        table.row(cells);
        eprintln!("[fig13] memory {s} done");
    }
    table.print("Fig. 13c — replay memory size sweep");
}
