//! Fig. 11: spatial complexity of the Performance Predictor.
//!
//! (a) predictor memory (parameters + activations, in KB) as a function of
//! sequence length — the paper's point is the *slow growth* of the
//! recurrent architecture; (b) the trade-off between the predictor's extra
//! memory and the evaluation time it saves. The paper profiles GPU
//! allocation; we account bytes analytically (DESIGN.md §1).

use crate::report::Table;
use crate::Scale;
use fastft_core::predictor::{PerformancePredictor, PredictorConfig};
use fastft_core::Session;

/// Run the Fig. 11 reproduction.
pub fn run(scale: Scale) {
    // (a) memory vs sequence length.
    let predictor = PerformancePredictor::new(64, PredictorConfig::default(), 0);
    let mut table =
        Table::new(["Sequence length", "Params (KB)", "Activations (KB)", "Total (KB)"]);
    let param_kb = predictor.n_params() as f64 * 8.0 / 1024.0;
    for len in [8usize, 16, 32, 64, 128, 256, 512] {
        let total_kb = predictor.memory_bytes(len) as f64 / 1024.0;
        table.row([
            format!("{len}"),
            format!("{param_kb:.1}"),
            format!("{:.1}", total_kb - param_kb),
            format!("{total_kb:.1}"),
        ]);
    }
    table.print("Fig. 11a — predictor memory vs sequence length (LSTM encoder)");

    // (b) memory overhead vs evaluation-time saved.
    let data = scale.load("svmguide3", 0);
    let mut cfg = scale.fastft_config(0);
    cfg.episodes = cfg.episodes.clamp(4, 10);
    cfg.cold_start_episodes = cfg.cold_start_episodes.min(cfg.episodes / 2).max(1);
    let with = Session::new(cfg.clone()).and_then(|s| s.run(&data)).expect("FASTFT fit");
    let without =
        Session::new(cfg.without_predictor()).and_then(|s| s.run(&data)).expect("FASTFT fit");
    let mem_kb = predictor.memory_bytes(192) as f64 / 1024.0 * 2.0; // predictor + RND pair
    let mut trade = Table::new(["Quantity", "Value"]);
    trade.row(["Extra component memory".into(), format!("{mem_kb:.1} KB")]);
    trade.row([
        "Evaluation time without predictor".to_string(),
        format!("{:.2}s", without.telemetry.evaluation_secs),
    ]);
    trade.row([
        "Evaluation time with predictor".to_string(),
        format!("{:.2}s", with.telemetry.evaluation_secs),
    ]);
    trade.row([
        "Time saved".to_string(),
        format!(
            "{:.2}s ({:.1}%)",
            without.telemetry.evaluation_secs - with.telemetry.evaluation_secs,
            100.0
                * (1.0
                    - with.telemetry.evaluation_secs / without.telemetry.evaluation_secs.max(1e-9))
        ),
    ]);
    trade.print("Fig. 11b — memory/time trade-off (SVMGuide3)");
}
