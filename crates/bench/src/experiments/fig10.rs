//! Fig. 10: scalability — runtime of FASTFT vs OpenFE vs CAAFE as the
//! dataset size (`rows × cols`) grows.

use crate::report::Table;
use crate::Scale;
use fastft_baselines::{
    caafe::CaafeSim, fastft_method::FastFtMethod, openfe::OpenFe, FeatureTransformMethod,
    RunContext,
};
use fastft_runtime::Runtime;
use fastft_tabular::datagen::{self, GenConfig};
use fastft_tabular::{rngx, TaskType};

/// Run the Fig. 10 reproduction.
pub fn run(scale: Scale) {
    let rt = Runtime::from_env();
    let sizes: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(200, 8), (400, 10), (800, 12)],
        Scale::Standard => vec![(500, 10), (1000, 15), (2000, 20), (4000, 25)],
        Scale::Full => vec![(2000, 20), (8000, 40), (32000, 60), (120000, 80)],
    };
    let evaluator = scale.evaluator();
    let methods: Vec<Box<dyn FeatureTransformMethod>> = vec![
        Box::new(FastFtMethod { cfg: scale.fastft_config(0) }),
        Box::new(OpenFe::default()),
        Box::new(CaafeSim::default()),
    ];
    let mut table = Table::new(["Size (rows x cols)", "FASTFT (s)", "OpenFE (s)", "CAAFE (s)"]);
    for (rows, cols) in sizes {
        let mut rng = rngx::rng(7);
        let mut data = datagen::generate_custom(
            &format!("scale_{rows}x{cols}"),
            TaskType::Classification,
            rows,
            cols,
            2,
            GenConfig::default(),
            &mut rng,
        );
        data.sanitize();
        let mut cells = vec![format!("{rows}x{cols} = {}", rows * cols)];
        // Methods fan out across the pool; par_map keeps column order.
        let times: Vec<String> = rt.par_map(methods.iter().collect::<Vec<_>>(), |method| {
            let ctx = RunContext::new(&evaluator, &rt, 0);
            let r = method.run(&data, &ctx).expect("fig10 method run");
            eprintln!("[fig10] {}x{} {} done", rows, cols, method.name());
            format!("{:.2}", r.total_time_secs())
        });
        cells.extend(times);
        table.row(cells);
    }
    table.print("Fig. 10 — scalability: total runtime vs dataset size");
}
