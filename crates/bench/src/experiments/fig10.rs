//! Fig. 10: scalability — runtime of FASTFT vs OpenFE vs CAAFE as the
//! dataset size (`rows × cols`) grows.

use crate::report::Table;
use crate::Scale;
use fastft_baselines::{caafe::CaafeSim, fastft_method::FastFtMethod, openfe::OpenFe, FeatureTransformMethod};
use fastft_tabular::datagen::{self, GenConfig};
use fastft_tabular::{rngx, TaskType};

/// Run the Fig. 10 reproduction.
pub fn run(scale: Scale) {
    let sizes: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(200, 8), (400, 10), (800, 12)],
        Scale::Standard => vec![(500, 10), (1000, 15), (2000, 20), (4000, 25)],
        Scale::Full => vec![(2000, 20), (8000, 40), (32000, 60), (120000, 80)],
    };
    let evaluator = scale.evaluator();
    let methods: Vec<Box<dyn FeatureTransformMethod>> = vec![
        Box::new(FastFtMethod { cfg: scale.fastft_config(0) }),
        Box::new(OpenFe::default()),
        Box::new(CaafeSim::default()),
    ];
    let mut table = Table::new(["Size (rows x cols)", "FASTFT (s)", "OpenFE (s)", "CAAFE (s)"]);
    for (rows, cols) in sizes {
        let mut rng = rngx::rng(7);
        let mut data = datagen::generate_custom(
            &format!("scale_{rows}x{cols}"),
            TaskType::Classification,
            rows,
            cols,
            2,
            GenConfig::default(),
            &mut rng,
        );
        data.sanitize();
        let mut cells = vec![format!("{rows}x{cols} = {}", rows * cols)];
        for method in &methods {
            let r = method.run(&data, &evaluator, 0);
            cells.push(format!("{:.2}", r.elapsed_secs + r.simulated_latency_secs));
            eprintln!("[fig10] {}x{} {} done", rows, cols, method.name());
        }
        table.row(cells);
    }
    table.print("Fig. 10 — scalability: total runtime vs dataset size");
}
