//! Fig. 14: the impact of the novelty reward — cumulative average novelty
//! distance, number of unencountered feature combinations, and downstream
//! performance, FASTFT vs FASTFT⁻ᴺᴱ.

use crate::report::Table;
use crate::Scale;
use fastft_core::{RunResult, Session};

fn series(r: &RunResult) -> Vec<(usize, f64, usize, f64)> {
    // (step, cumulative avg novelty distance, cumulative new combinations,
    //  best-so-far downstream score)
    let mut out = Vec::with_capacity(r.records.len());
    let mut dist_sum = 0.0;
    let mut new_count = 0usize;
    let mut best = r.base_score;
    for (i, rec) in r.records.iter().enumerate() {
        dist_sum += rec.novelty_distance;
        new_count += usize::from(rec.new_combination);
        if !rec.predicted && rec.score > best {
            best = rec.score;
        }
        out.push((i + 1, dist_sum / (i + 1) as f64, new_count, best));
    }
    out
}

/// Run the Fig. 14 reproduction.
pub fn run(scale: Scale) {
    let data = scale.load("pima_indian", 0);
    // Both variants compose the same staged pipeline; −NE only changes the
    // configuration the reward stage sees.
    let full = Session::new(scale.fastft_config(0)).and_then(|s| s.run(&data)).expect("FASTFT fit");
    let no_ne = Session::new(scale.fastft_config(0).without_novelty())
        .and_then(|s| s.run(&data))
        .expect("FASTFT fit");
    let a = series(&full);
    let b = series(&no_ne);
    let mut table = Table::new([
        "Step",
        "AvgNovDist FASTFT",
        "AvgNovDist -NE",
        "NewComb FASTFT",
        "NewComb -NE",
        "Best FASTFT",
        "Best -NE",
    ]);
    let n = a.len().min(b.len());
    let stride = (n / 12).max(1);
    for i in (0..n).step_by(stride).chain(std::iter::once(n - 1)) {
        table.row([
            format!("{}", a[i].0),
            format!("{:.3}", a[i].1),
            format!("{:.3}", b[i].1),
            format!("{}", a[i].2),
            format!("{}", b[i].2),
            format!("{:.3}", a[i].3),
            format!("{:.3}", b[i].3),
        ]);
    }
    table.print("Fig. 14 — novelty distance / unencountered combinations / performance");
    println!(
        "final: FASTFT avg-novelty {:.3}, new-combinations {}; -NE avg-novelty {:.3}, new-combinations {}",
        a.last().unwrap().1,
        a.last().unwrap().2,
        b.last().unwrap().1,
        b.last().unwrap().2,
    );
}
