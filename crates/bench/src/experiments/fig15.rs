//! Fig. 15: case study on the Cardiovascular analog — the reward trace with
//! the distinct, traceable features generated at its peaks.

use crate::report::Table;
use crate::Scale;
use fastft_core::FastFt;

/// Run the Fig. 15 reproduction.
pub fn run(scale: Scale) {
    let data = scale.load("cardiovascular", 0);
    let r = FastFt::new(scale.fastft_config(0)).fit(&data).expect("FASTFT fit");
    // Find the reward peaks: the top-5 steps by reward that added features.
    let mut peaks: Vec<usize> =
        (0..r.records.len()).filter(|&i| !r.records[i].new_exprs.is_empty()).collect();
    peaks.sort_by(|&a, &b| {
        r.records[b].reward.partial_cmp(&r.records[a].reward).unwrap_or(std::cmp::Ordering::Equal)
    });
    peaks.truncate(5);
    peaks.sort_unstable();

    let mut table = Table::new(["Step", "Reward", "Score", "Distinct features generated"]);
    for i in peaks {
        let rec = &r.records[i];
        table.row([
            format!("{}.{}", rec.episode, rec.step),
            format!("{:.4}", rec.reward),
            format!("{:.3}", rec.score),
            rec.new_exprs.iter().take(3).cloned().collect::<Vec<_>>().join(", "),
        ]);
    }
    table.print("Fig. 15 — features generated at reward peaks (Cardiovascular)");
    println!("base {:.3} -> best {:.3}; best feature set:", r.base_score, r.best_score);
    for e in r.best_exprs.iter().take(12) {
        println!("  {e}");
    }
}
