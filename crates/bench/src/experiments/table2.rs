//! Table II: per-episode time breakdown (Optimization / Estimation /
//! Evaluation / Overall) of FASTFT vs FASTFT⁻ᴾᴾ on four datasets of
//! increasing size, with the percentage saved.

use crate::report::Table;
use crate::Scale;
use fastft_core::Session;
use fastft_tabular::Dataset;

const DATASETS: [&str; 4] =
    ["svmguide3", "wine_quality_white", "cardiovascular", "amazon_employee"];

/// Table II is specifically about how the saving grows with dataset size,
/// so the four datasets get size-proportional row caps rather than the
/// uniform harness cap.
fn row_caps(scale: Scale) -> [usize; 4] {
    match scale {
        Scale::Quick => [300, 600, 800, 1200],
        Scale::Standard => [1243, 2500, 4000, 6000],
        Scale::Full => [usize::MAX; 4],
    }
}

fn fmt_pct_saved(with: f64, without: f64) -> String {
    if without <= 0.0 {
        return "-".into();
    }
    // Negative percentage = time saved relative to FASTFT-PP (paper's
    // "8.20 -84.15%" convention); positive = slower.
    format!("{:.2} ({:+.2}%)", with, 100.0 * (with / without - 1.0))
}

/// Run the Table II reproduction.
pub fn run(scale: Scale) {
    let mut table = Table::new([
        "Dataset",
        "Size",
        "Method",
        "Optimization",
        "Estimation",
        "Evaluation",
        "Overall",
    ]);
    for (name, cap) in DATASETS.into_iter().zip(row_caps(scale)) {
        let spec = fastft_tabular::datagen::by_name(name).expect("catalog dataset");
        let mut data: Dataset = fastft_tabular::datagen::generate_capped(spec, cap, 0);
        data.sanitize();
        let size = format!("{}", data.size());
        // Keep the cold-start share close to the paper's 5% (10/200) so the
        // steady-state saving dominates the per-episode average.
        let episodes = scale.episodes().clamp(4, 10);
        let mut cfg = scale.fastft_config(0);
        cfg.episodes = episodes;
        cfg.cold_start_episodes = (episodes / 5).max(1);
        let per_ep = |secs: f64| secs / episodes as f64;

        // Both variants compose the same staged pipeline; the ablation is
        // purely the configuration the stages see.
        let without = Session::new(cfg.clone().without_predictor())
            .and_then(|s| s.run(&data))
            .expect("FASTFT fit");
        let with = Session::new(cfg).and_then(|s| s.run(&data)).expect("FASTFT fit");
        let (tw, to) = (with.telemetry, without.telemetry);

        table.row([
            name.to_string(),
            size.clone(),
            "FASTFT-PP".into(),
            format!("{:.2}", per_ep(to.optimization_secs)),
            "-".into(),
            format!("{:.2}", per_ep(to.evaluation_secs)),
            format!("{:.2}", per_ep(to.total_secs)),
        ]);
        table.row([
            name.to_string(),
            size,
            "FASTFT".into(),
            format!("{:.2}", per_ep(tw.optimization_secs)),
            format!("{:.2}", per_ep(tw.estimation_secs)),
            fmt_pct_saved(per_ep(tw.evaluation_secs), per_ep(to.evaluation_secs)),
            fmt_pct_saved(per_ep(tw.total_secs), per_ep(to.total_secs)),
        ]);
        eprintln!(
            "[table2] {name}: downstream evals {} -> {}",
            to.downstream_evals, tw.downstream_evals
        );
    }
    table.print("Table II — per-episode runtime (seconds) FASTFT vs FASTFT-PP");
}
