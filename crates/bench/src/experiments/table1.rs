//! Table I: overall performance of 11 methods across the benchmark
//! datasets (F1 for classification, 1-RAE for regression, AUC for
//! detection), with the paired t-test row comparing FASTFT against every
//! baseline.

use super::methods::lineup;
use crate::report::{fmt_mean_std, mean_std, Table};
use crate::Scale;
use fastft_baselines::RunContext;
use fastft_runtime::Runtime;
use fastft_tabular::datagen;
use fastft_tabular::metrics::paired_t_test;

/// Run the Table I reproduction.
pub fn run(scale: Scale) {
    let rt = Runtime::from_env();
    let datasets = scale.dataset_subset();
    let evaluator = scale.evaluator();
    let methods = lineup(scale);
    let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();

    let mut table = Table::new(
        std::iter::once("Dataset".to_string())
            .chain(std::iter::once("Task".to_string()))
            .chain(names.iter().map(|n| n.to_string())),
    );
    // per-method mean scores per dataset, for the t-test row.
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];

    for name in &datasets {
        let spec = datagen::by_name(name).expect("catalog dataset");
        let mut cells = vec![name.to_string(), spec.task.code().to_string()];
        for (mi, method) in methods.iter().enumerate() {
            // Per-seed fan-out: each seed is an independent work item (its
            // own data draw and RNG streams), so the pool preserves the
            // serial results exactly while seeds run concurrently.
            let scores: Vec<f64> = rt.par_map((0..scale.seeds()).collect(), |seed| {
                let data = scale.load(name, seed);
                let ctx = RunContext::new(&evaluator, &rt, seed);
                method.run(&data, &ctx).expect("table1 method run").score
            });
            let (mean, _) = mean_std(&scores);
            per_method[mi].push(mean);
            cells.push(fmt_mean_std(&scores));
        }
        table.row(cells);
        eprintln!("[table1] {name} done");
    }
    table.print("Table I — overall performance (mean±std over seeds)");

    // t-stat / p-value rows: FASTFT (last column) vs each baseline.
    let fastft = per_method.last().expect("lineup nonempty").clone();
    let mut stats = Table::new(["Baseline", "T-stat", "P-value"]);
    for (mi, name) in names.iter().enumerate().take(methods.len() - 1) {
        if per_method[mi].len() < 2 {
            stats.row([name.to_string(), "n/a".into(), "n/a".into()]);
            continue;
        }
        let (t, p) = paired_t_test(&fastft, &per_method[mi]);
        stats.row([name.to_string(), format!("{t:.3}"), format!("{p:.3e}")]);
    }
    stats.print("Table I — FASTFT vs baselines (paired t-test over datasets)");
}
