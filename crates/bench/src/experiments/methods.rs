//! Scale-adjusted method line-ups shared by the comparative experiments.

use crate::Scale;
use fastft_baselines::{
    aft::Aft,
    caafe::CaafeSim,
    common::Budget,
    difer::Difer,
    expansion::{Erg, Rfg},
    fastft_method::FastFtMethod,
    grfg::Grfg,
    lda::Lda,
    nfs::Nfs,
    openfe::OpenFe,
    ttg::Ttg,
    FeatureTransformMethod,
};

/// The Table I line-up (ten baselines + FASTFT), with iteration budgets
/// scaled so every method gets a comparable number of downstream
/// evaluations at the chosen scale.
pub fn lineup(scale: Scale) -> Vec<Box<dyn FeatureTransformMethod>> {
    let rounds = match scale {
        Scale::Quick => 4,
        Scale::Standard => 8,
        Scale::Full => 20,
    };
    let budget = Budget { rounds, per_round: 8 };
    // GRFG gets the same exploration budget as FASTFT (the paper runs both
    // at 200 episodes x 15 steps); its cost difference then comes purely
    // from evaluating every step downstream.
    let grfg_episodes = scale.episodes();
    vec![
        Box::new(Rfg { budget, ..Rfg::default() }),
        Box::new(Erg::default()),
        Box::new(Lda::default()),
        Box::new(Aft { budget, ..Aft::default() }),
        Box::new(Nfs { episodes: rounds, ..Nfs::default() }),
        Box::new(Ttg { expansions: rounds / 2 + 1, ..Ttg::default() }),
        Box::new(Difer { rounds, ..Difer::default() }),
        Box::new(OpenFe::default()),
        Box::new(CaafeSim { calls: rounds, ..CaafeSim::default() }),
        Box::new(Grfg { episodes: grfg_episodes, steps_per_episode: scale.steps() }),
        Box::new(FastFtMethod { cfg: scale.fastft_config(0) }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_eleven_methods_ending_in_fastft() {
        let m = lineup(Scale::Quick);
        assert_eq!(m.len(), 11);
        assert_eq!(m.last().unwrap().name(), "FASTFT");
    }
}
