//! Fig. 7: the RL-framework comparison — actor-critic vs DQN / DDQN /
//! DuelingDQN / DuelingDDQN learning curves (best-so-far score per
//! episode).

use crate::report::Table;
use crate::Scale;
use fastft_core::{FastFt, FastFtConfig, RlKind};
use fastft_rl::QKind;

/// Run the Fig. 7 reproduction.
pub fn run(scale: Scale) {
    let name = "pima_indian";
    let data = scale.load(name, 0);
    let frameworks: Vec<(&str, RlKind)> = std::iter::once(("Actor-Critic", RlKind::ActorCritic))
        .chain(QKind::ALL.into_iter().map(|q| (q.label(), RlKind::Q(q))))
        .collect();
    let mut curves: Vec<(&str, Vec<f64>)> = Vec::new();
    for (label, rl) in frameworks {
        let cfg = FastFtConfig { rl, ..scale.fastft_config(0) };
        let r = FastFt::new(cfg).fit(&data).expect("FASTFT fit");
        eprintln!("[fig7] {label}: final best {:.3}", r.best_score);
        curves.push((label, r.episode_best));
    }
    let episodes = curves[0].1.len();
    let mut table = Table::new(
        std::iter::once("Episode".to_string()).chain(curves.iter().map(|(l, _)| l.to_string())),
    );
    let stride = (episodes / 10).max(1);
    for ep in (0..episodes).step_by(stride).chain(std::iter::once(episodes - 1)) {
        let mut cells = vec![format!("{ep}")];
        for (_, c) in &curves {
            cells.push(format!("{:.3}", c[ep]));
        }
        table.row(cells);
    }
    table.print(&format!("Fig. 7 — RL framework learning curves ({name}, best-so-far)"));
}
