//! Fig. 12: the efficiency–efficacy trade-off of the downstream-trigger
//! thresholds — sweep α (performance percentile) with β fixed at 5, and β
//! (novelty percentile) with α fixed at 10; report evaluation time and
//! score.

use crate::report::Table;
use crate::Scale;
use fastft_core::{FastFt, FastFtConfig};

fn sweep(scale: Scale, label: &str, settings: &[(f64, f64)]) {
    let data = scale.load("pima_indian", 0);
    let mut table =
        Table::new(["alpha", "beta", "Evaluation time (s)", "Downstream evals", "Score"]);
    for &(alpha, beta) in settings {
        let cfg = FastFtConfig { alpha, beta, ..scale.fastft_config(0) };
        let r = FastFt::new(cfg).fit(&data).expect("FASTFT fit");
        table.row([
            format!("{alpha}"),
            format!("{beta}"),
            format!("{:.2}", r.telemetry.evaluation_secs),
            format!("{}", r.telemetry.downstream_evals),
            format!("{:.3}", r.best_score),
        ]);
        eprintln!("[fig12] alpha={alpha} beta={beta} done");
    }
    table.print(label);
}

/// Run the Fig. 12 reproduction.
pub fn run(scale: Scale) {
    let alphas: Vec<(f64, f64)> = [0.0, 5.0, 10.0, 20.0].iter().map(|&a| (a, 5.0)).collect();
    sweep(scale, "Fig. 12a — performance-trigger threshold α (β = 5)", &alphas);
    let betas: Vec<(f64, f64)> = [0.0, 5.0, 10.0, 20.0].iter().map(|&b| (10.0, b)).collect();
    sweep(scale, "Fig. 12b — novelty-trigger threshold β (α = 10)", &betas);
}
