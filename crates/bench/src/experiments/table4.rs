//! Table IV: top-10 feature importances on the original vs
//! FASTFT-transformed Wine Quality Red analog — the traceability showcase.

use crate::report::{fmt3, Table};
use crate::Scale;
use fastft_core::FastFt;
use fastft_ml::forest::{ForestParams, RandomForestClassifier};
use fastft_tabular::Dataset;

fn top10(data: &Dataset) -> (Vec<(String, f64)>, f64) {
    let cols: Vec<Vec<f64>> = data.features.iter().map(|c| c.values.clone()).collect();
    let y = data.class_labels();
    let mut rf = RandomForestClassifier::new(ForestParams::default(), 0);
    rf.fit(&cols, &y, data.n_classes);
    let mut ranked: Vec<(String, f64)> = data
        .features
        .iter()
        .zip(rf.feature_importances())
        .map(|(c, &imp)| (c.name.clone(), imp))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(10);
    let sum = ranked.iter().map(|(_, i)| i).sum();
    (ranked, sum)
}

/// Run the Table IV reproduction.
pub fn run(scale: Scale) {
    let data = scale.load("wine_quality_red", 0);
    let evaluator = scale.evaluator();
    let base_score = evaluator.evaluate(&data).expect("base evaluation");
    let result = FastFt::new(scale.fastft_config(0)).fit(&data).expect("FASTFT fit");

    let (orig_top, orig_sum) = top10(&data);
    let (ft_top, ft_sum) = top10(&result.best_dataset);

    let mut table = Table::new(["Original feature", "Imp.", "FASTFT feature", "Imp."]);
    for i in 0..10 {
        let (on, oi) = orig_top.get(i).map(|(n, v)| (n.clone(), fmt3(*v))).unwrap_or_default();
        let (fnm, fi) = ft_top.get(i).map(|(n, v)| (n.clone(), fmt3(*v))).unwrap_or_default();
        table.row([on, oi, fnm, fi]);
    }
    table.row([
        format!("F1: {base_score:.3}"),
        format!("Sum: {orig_sum:.3}"),
        format!("F1: {:.3}", result.best_score),
        format!("Sum: {ft_sum:.3}"),
    ]);
    table.print("Table IV — top-10 feature importances, original vs FASTFT (Wine Quality Red)");
}
