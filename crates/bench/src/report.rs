//! Plain-text table/series rendering for the harness output.

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// `0.974±0.010` formatting used by Table I.
pub fn fmt_mean_std(xs: &[f64]) -> String {
    let (m, s) = mean_std(xs);
    if xs.len() < 2 {
        format!("{m:.3}")
    } else {
        format!("{m:.3}±{s:.3}")
    }
}

/// Three-decimal scalar.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Two-decimal seconds.
pub fn fmt_secs(x: f64) -> String {
    format!("{x:.2}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "score"]);
        t.row(["a", "1.0"]);
        t.row(["longer-name", "2.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Columns align: "score"/"1.0" start at the same offset.
        let off = lines[0].find("score").unwrap();
        assert_eq!(&lines[2][off..off + 3], "1.0");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn mean_std_known() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn fmt_variants() {
        assert_eq!(fmt_mean_std(&[0.5]), "0.500");
        assert!(fmt_mean_std(&[0.4, 0.6]).starts_with("0.500±"));
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_secs(1.234), "1.23s");
    }
}
