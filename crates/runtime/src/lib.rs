//! Dependency-free parallel execution layer for the FASTFT workspace.
//!
//! The paper's central claim is *wall-clock acceleration* of reinforced
//! feature transformation; this crate supplies the substrate: a persistent
//! worker pool built on `std::thread` + channels that the hot paths
//! (per-tree forest fitting, per-fold cross-validation, the pairwise
//! mutual-information distance matrix and the benchmark fan-out) use for
//! data parallelism.
//!
//! # Design
//!
//! - **Handle, not global.** A [`Runtime`] is an explicit value threaded
//!   through APIs (`fit_with(&rt, …)`). Thread count is chosen at
//!   construction ([`Runtime::new`]) or from the `FASTFT_THREADS`
//!   environment variable ([`Runtime::from_env`]). `Runtime::new(1)` (or an
//!   unset/`1` env) executes inline on the caller's thread with zero
//!   synchronisation overhead.
//! - **Determinism.** [`Runtime::par_map`] preserves input order in its
//!   output, and callers derive any randomness from a *per-item* RNG stream
//!   (`rngx::StdRng::stream(seed, item_index)`), so results are
//!   byte-identical for a given seed regardless of worker count.
//! - **No deadlock under nesting.** While waiting for a batch, the
//!   submitting thread *helps*: it pops jobs off the shared queue and runs
//!   them. Nested `par_map` calls therefore make progress even when every
//!   worker is blocked inside an outer batch.
//! - **Panic transparency.** A panicking job is caught on the worker and
//!   re-raised on the submitting thread once the batch completes, so
//!   `par_map` panics exactly like the equivalent serial loop would.
//! - **Poison recovery.** Every pool lock is acquired with
//!   `unwrap_or_else(|e| e.into_inner())`: the queue and batch mutexes only
//!   guard data that stays consistent across an unwind (a `VecDeque` of
//!   jobs, a panic payload slot), so a panic that poisons one must not wedge
//!   every subsequent batch.
//!
//! The pool joins its workers on `Drop`, so a `Runtime` can be created and
//! discarded freely (though reusing one across calls is what makes the pool
//! "persistent" and amortises thread spawn cost).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pop one job, or `None` immediately if the queue is empty.
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
    }

    /// Worker loop: block until a job or shutdown arrives.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self.work_ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            job();
        }
    }
}

/// Tracks completion of one submitted batch and carries the first panic.
struct Batch {
    remaining: AtomicUsize,
    done: Condvar,
    done_lock: Mutex<()>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Batch {
            remaining: AtomicUsize::new(n),
            done: Condvar::new(),
            done_lock: Mutex::new(()),
            panic: Mutex::new(None),
        })
    }

    /// Record one finished item (optionally with a payload from a panic).
    fn complete_one(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(p);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// A persistent worker pool; the workspace's parallel execution handle.
///
/// See the [crate docs](crate) for the design. Cloning is not supported —
/// share a `Runtime` by reference (`&Runtime`), which every method takes.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("threads", &self.threads).finish()
    }
}

impl Default for Runtime {
    /// Equivalent to [`Runtime::from_env`].
    fn default() -> Self {
        Runtime::from_env()
    }
}

impl Runtime {
    /// A pool with `threads` total execution lanes (the submitting thread
    /// counts as one: `new(4)` spawns 3 workers). `new(0)` is treated as
    /// `new(1)`; `new(1)` runs everything inline and spawns nothing.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fastft-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("failed to spawn runtime worker")
            })
            .collect();
        Runtime { shared, workers, threads }
    }

    /// A pool sized from the `FASTFT_THREADS` environment variable, falling
    /// back to [`std::thread::available_parallelism`] when unset or invalid.
    pub fn from_env() -> Self {
        let threads = std::env::var("FASTFT_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Runtime::new(threads)
    }

    /// Total execution lanes (submitting thread included). Always ≥ 1.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, in parallel, preserving input order.
    ///
    /// With one lane this is exactly `items.into_iter().map(f).collect()`.
    /// `f` receives each item by value; pair with
    /// `StdRng::stream(seed, index)` via [`Runtime::par_map_indexed`] when
    /// the work is randomized.
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// [`Runtime::par_map`] where `f` also receives the item's index —
    /// the hook for deriving per-item RNG streams.
    pub fn par_map_indexed<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let slots = SharedSlots::new(&mut out);
            let f = &f;
            self.run_batch(items.into_iter().enumerate().map(move |(i, item)| {
                move || {
                    // SAFETY: each closure writes exactly one distinct index.
                    unsafe { slots.write(i, f(i, item)) };
                }
            }));
        }
        out.into_iter().map(|slot| slot.expect("runtime batch lost an item")).collect()
    }

    /// Process `0..len` in contiguous chunks, one chunk per lane, calling
    /// `f(chunk_index, start..end)` in parallel. This is the `scope`-style
    /// primitive for callers that update disjoint slices of a shared buffer
    /// (e.g. rows of a distance matrix) without materialising per-item jobs.
    ///
    /// Chunks are split evenly; the number of chunks equals
    /// `min(len, threads)`, so `f`'s `chunk_index` is also a valid RNG
    /// stream id *only* when determinism across thread counts is not
    /// required — derive streams from item indices inside the range instead.
    pub fn par_chunks<F>(&self, len: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let chunks = self.threads.min(len);
        if chunks == 1 {
            f(0, 0..len);
            return;
        }
        let base = len / chunks;
        let extra = len % chunks;
        let f = &f;
        let mut start = 0;
        self.run_batch((0..chunks).map(move |c| {
            let size = base + usize::from(c < extra);
            let range = start..start + size;
            start += size;
            move || f(c, range)
        }));
    }

    /// Queue every job in `jobs`, help drain the queue until the batch
    /// completes, then propagate the first panic (if any).
    ///
    /// The scoped-lifetime trick: jobs borrow from the caller's stack frame
    /// (`f`, output slots), which is safe because this function does not
    /// return until every job has run — mirroring `std::thread::scope`.
    fn run_batch<'scope, I, J>(&self, jobs: I)
    where
        I: Iterator<Item = J>,
        J: FnOnce() + Send + 'scope,
    {
        let staged: Vec<J> = jobs.collect();
        let batch = Batch::new(staged.len());
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for job in staged {
                let batch = Arc::clone(&batch);
                let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let res = catch_unwind(AssertUnwindSafe(job));
                    batch.complete_one(res.err());
                });
                // SAFETY: extend the job's lifetime to 'static for storage in
                // the queue. `run_batch` blocks until `batch` reports all jobs
                // complete, so no job outlives the borrows it captures.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(wrapped)
                };
                q.push_back(job);
            }
            self.shared.work_ready.notify_all();
        }
        // Help: run queued jobs (ours or a nested batch's) while waiting.
        while !batch.is_done() {
            if let Some(job) = self.shared.try_pop() {
                job();
            } else {
                let guard = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
                if !batch.is_done() {
                    // Re-check with a timeout: a job may land between the
                    // try_pop and the wait, and workers only signal `done`.
                    let _ = batch
                        .done
                        .wait_timeout(guard, std::time::Duration::from_millis(1))
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        let panic = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake all workers so they observe the flag.
        {
            let _q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A `*mut` view of the output slots that jobs write through, one index each.
struct SharedSlots<U> {
    ptr: *mut Option<U>,
}

impl<U> Clone for SharedSlots<U> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<U> Copy for SharedSlots<U> {}

impl<U> SharedSlots<U> {
    fn new(slots: &mut [Option<U>]) -> Self {
        SharedSlots { ptr: slots.as_mut_ptr() }
    }

    /// # Safety
    /// Each index must be written by at most one job, and the backing slice
    /// must outlive the batch (guaranteed by `run_batch` blocking).
    unsafe fn write(&self, i: usize, value: U) {
        unsafe { self.ptr.add(i).write(Some(value)) };
    }
}

// SAFETY: jobs write disjoint indices; the raw pointer is only dereferenced
// while `run_batch` keeps the owning Vec alive.
unsafe impl<U: Send> Send for SharedSlots<U> {}
unsafe impl<U: Send> Sync for SharedSlots<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let rt = Runtime::new(4);
        let out = rt.par_map((0..100).collect(), |x: u64| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn inline_runtime_matches_pool() {
        let serial = Runtime::new(1);
        let pooled = Runtime::new(4);
        let items: Vec<u64> = (0..57).collect();
        let f = |i: usize, x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32);
        assert_eq!(serial.par_map_indexed(items.clone(), f), pooled.par_map_indexed(items, f));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let rt = Runtime::new(0);
        assert_eq!(rt.threads(), 1);
        assert_eq!(rt.par_map(vec![1, 2, 3], |x: i32| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let rt = Runtime::new(3);
        let out: Vec<i32> = rt.par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        rt.par_chunks(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_covers_range_exactly_once() {
        let rt = Runtime::new(4);
        let n = 103;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        rt.par_chunks(n, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let rt = Runtime::new(2);
        let out = rt.par_map((0..8).collect(), |x: u64| {
            rt.par_map((0..4).collect(), |y: u64| x * 10 + y).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|x| (0..4).map(|y| x * 10 + y).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate() {
        let rt = Runtime::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.par_map((0..16).collect(), |x: i32| {
                if x == 7 {
                    panic!("boom at 7");
                }
                x
            });
        }));
        assert!(caught.is_err());
        // Pool still usable after a panicking batch.
        assert_eq!(rt.par_map(vec![1, 2], |x: i32| x * 2), vec![2, 4]);
    }

    #[test]
    fn panicking_batch_then_normal_batch() {
        // The ISSUE-4 regression: a batch full of panicking jobs must not
        // wedge the pool for the next, well-behaved batch.
        let rt = Runtime::new(4);
        for round in 0..3 {
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                rt.par_map((0..16).collect(), |x: i32| -> i32 { panic!("boom {x}") });
            }));
            assert!(caught.is_err(), "round {round}");
            assert_eq!(
                rt.par_map((0..8).collect(), |x: i32| x + round),
                (0..8).map(|x| x + round).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn poisoned_queue_mutex_is_recovered() {
        let rt = Runtime::new(2);
        // Poison the queue lock directly: panic on a helper thread while
        // holding it, as a job landing mid-push would.
        let shared = Arc::clone(&rt.shared);
        let _ = std::thread::spawn(move || {
            let _g = shared.queue.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        assert!(rt.shared.queue.lock().is_err(), "lock should be poisoned");
        assert_eq!(rt.par_map(vec![1, 2, 3], |x: i32| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn from_env_reads_fastft_threads() {
        // Note: set/remove env var is process-global; keep this the only
        // test that touches it.
        std::env::set_var("FASTFT_THREADS", "3");
        let rt = Runtime::from_env();
        assert_eq!(rt.threads(), 3);
        std::env::remove_var("FASTFT_THREADS");
        let rt = Runtime::from_env();
        assert!(rt.threads() >= 1);
    }

    #[test]
    fn many_small_batches_reuse_pool() {
        let rt = Runtime::new(4);
        for round in 0..50u64 {
            let out = rt.par_map((0..10).collect(), move |x: u64| x + round);
            assert_eq!(out[9], 9 + round);
        }
    }
}
