//! The mutable state of one FASTFT run, owned by the
//! [`Driver`](crate::pipeline::Driver) and threaded through every stage.
//!
//! [`SearchState`] is the single home of everything a run mutates — agent
//! and component weights, the replay buffer, the RNG, histories, caches and
//! telemetry. Checkpointing goes through [`SearchState::snapshot`] /
//! [`SearchState::restore`], which destructure the struct exhaustively:
//! adding a field without deciding how it persists is a compile error, not
//! a silently-forgotten piece of state.

use crate::agents::{CascadingAgents, MemoryUnit};
use crate::checkpoint::{self, Snapshot};
use crate::config::FastFtConfig;
use crate::lru::LruCache;
use crate::novelty::NoveltyEstimator;
use crate::novelty_metric::NoveltyTracker;
use crate::pipeline::{StepRecord, Telemetry};
use crate::predictor::{PerformancePredictor, PredictorConfig};
use crate::scoring::ScoreStats;
use crate::sequence::TokenVocab;
use crate::transform::FeatureSet;
use fastft_rl::{PrioritizedReplay, ReplayState, UniformReplay};
use fastft_tabular::rngx;
use fastft_tabular::rngx::StdRng;
use fastft_tabular::{Dataset, FastFtError, FastFtResult};

/// Cap on the quarantine set: plenty for any realistic fault pattern,
/// while bounding memory if a dataset makes *every* candidate fault.
pub(crate) const QUARANTINE_CAPACITY: usize = 256;

/// Replay buffer behind one sampling policy switch (`prioritized_replay`).
pub(crate) enum Memory {
    /// TD-error-prioritized sampling (Eq. 10).
    Prioritized(PrioritizedReplay<MemoryUnit>),
    /// Uniform sampling (the −CMR ablation).
    Uniform(UniformReplay<MemoryUnit>),
}

impl Memory {
    pub(crate) fn push(&mut self, mem: MemoryUnit, delta: f64) {
        match self {
            Memory::Prioritized(b) => b.push(mem, delta),
            Memory::Uniform(b) => b.push(mem),
        }
    }

    pub(crate) fn sample<'a>(&'a self, rng: &mut StdRng) -> Option<&'a MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.sample(rng),
            Memory::Uniform(b) => b.sample(rng),
        }
    }

    pub(crate) fn sample_uniform<'a>(&'a self, rng: &mut StdRng) -> Option<&'a MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.sample_uniform(rng),
            Memory::Uniform(b) => b.sample(rng),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Memory::Prioritized(b) => b.len(),
            Memory::Uniform(b) => b.len(),
        }
    }

    /// Capture the buffer for a checkpoint (slot order preserved).
    fn save_state(&self) -> ReplayState<MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.save_state(),
            Memory::Uniform(b) => b.save_state(),
        }
    }

    /// Rebuild from a checkpointed buffer; errors on inconsistent parts.
    fn from_state(state: ReplayState<MemoryUnit>) -> Result<Self, String> {
        match state {
            s @ ReplayState::Prioritized { .. } => {
                PrioritizedReplay::from_state(s).map(Memory::Prioritized)
            }
            s @ ReplayState::Uniform { .. } => UniformReplay::from_state(s).map(Memory::Uniform),
        }
    }
}

/// Everything one run mutates, in one place.
///
/// Stages receive it through [`StageCx`](crate::pipeline::StageCx) and
/// mutate it directly; the driver owns it and snapshots it at episode
/// boundaries.
pub struct SearchState {
    /// Token vocabulary for sequence encoding (immutable, sized to the
    /// dataset).
    pub vocab: TokenVocab,
    /// The cascading head/operation/tail agents.
    pub agents: CascadingAgents,
    /// Performance Predictor (Eq. 3).
    pub predictor: PerformancePredictor,
    /// Novelty Estimator (Eq. 4, random network distillation).
    pub novelty: NoveltyEstimator,
    /// Replay buffer of transition memories.
    pub(crate) memory: Memory,
    /// §VI-H novelty-distance tracker over feature-set embeddings.
    pub tracker: NoveltyTracker,
    /// The run's single RNG; consumption order defines the decision stream.
    pub rng: StdRng,
    /// Timing and counter telemetry accumulated so far.
    pub telemetry: Telemetry,
    /// Memoised downstream scores keyed by the canonical (order-invariant)
    /// feature-set key: revisiting a feature combination never pays for
    /// cross-validation twice within a run. Capacity-capped LRU so long
    /// runs cannot grow it without limit (`cfg.eval_cache_capacity`).
    pub eval_cache: LruCache<String, f64>,
    /// Downstream-evaluated (sequence, score) pairs for component training.
    pub eval_history: Vec<(Vec<usize>, f64)>,
    /// Rolling predicted-performance history for the α percentile trigger.
    pub pred_history: Vec<f64>,
    /// Rolling raw-novelty history for the β percentile trigger.
    pub nov_history: Vec<f64>,
    /// Welford running count of raw novelty, for intrinsic-reward
    /// normalisation (standard RND practice; DESIGN.md §4).
    pub nov_count: usize,
    /// Welford running mean of raw novelty.
    pub nov_mean: f64,
    /// Welford running sum of squared deviations of raw novelty.
    pub nov_m2: f64,
    /// Steps taken across all episodes (drives the novelty-weight decay).
    pub global_step: usize,
    /// Prefix-cache/batching counters accumulated before the last resume:
    /// the caches themselves restart cold, so end-of-run telemetry is this
    /// baseline merged with the fresh caches' counters.
    pub stats_baseline: ScoreStats,
    /// Canonical keys of candidates whose downstream evaluation kept
    /// faulting. LRU-bounded so pathological data cannot grow it without
    /// limit; quarantined candidates are scored by the predictor instead.
    pub quarantine: LruCache<String, ()>,
}

impl SearchState {
    /// Fresh state for a run of `cfg` over `data`. Component seeds are
    /// fixed offsets of `cfg.seed` so every stage draws from its own
    /// deterministic stream.
    pub fn new(cfg: &FastFtConfig, data: &Dataset) -> Self {
        let vocab = TokenVocab::new(data.n_features());
        let pc = PredictorConfig {
            dim: 32,
            encoder: cfg.encoder,
            lr: cfg.lr,
            prefix_cache: cfg.prefix_cache_capacity,
        };
        let mut agents = CascadingAgents::new(cfg.rl, cfg.agent_hidden, cfg.agent_lr, cfg.seed);
        agents.gamma = cfg.gamma;
        let memory = if cfg.prioritized_replay {
            Memory::Prioritized(PrioritizedReplay::new(cfg.memory_size))
        } else {
            Memory::Uniform(UniformReplay::new(cfg.memory_size))
        };
        SearchState {
            vocab,
            agents,
            predictor: PerformancePredictor::new(vocab.size(), pc, cfg.seed.wrapping_add(11)),
            novelty: NoveltyEstimator::new(vocab.size(), pc, cfg.seed.wrapping_add(23)),
            memory,
            tracker: NoveltyTracker::new(),
            rng: rngx::rng(cfg.seed.wrapping_add(37)),
            telemetry: Telemetry::default(),
            eval_cache: LruCache::new(cfg.eval_cache_capacity),
            eval_history: Vec::new(),
            pred_history: Vec::new(),
            nov_history: Vec::new(),
            nov_count: 0,
            nov_mean: 0.0,
            nov_m2: 0.0,
            global_step: 0,
            stats_baseline: ScoreStats::default(),
            quarantine: LruCache::new(QUARANTINE_CAPACITY),
        }
    }

    /// Pre-resume counter baseline merged with the live caches' counters.
    pub fn merged_component_stats(&self) -> ScoreStats {
        self.stats_baseline.merge(&self.predictor.stats().merge(&self.novelty.stats()))
    }

    /// Capture the complete run state at an episode boundary.
    ///
    /// Destructures `self` exhaustively: a new `SearchState` field fails to
    /// compile here until its persistence is decided.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &mut self,
        original: &Dataset,
        next_episode: usize,
        base_score: f64,
        best_score: f64,
        best_fs: &FeatureSet,
        records: &[StepRecord],
        episode_best: &[f64],
        total_secs: f64,
    ) -> Snapshot {
        let SearchState {
            vocab: _, // derived from the dataset, rebuilt on restore
            agents,
            predictor,
            novelty,
            memory,
            tracker,
            rng,
            telemetry,
            eval_cache,
            eval_history,
            pred_history,
            nov_history,
            nov_count,
            nov_mean,
            nov_m2,
            global_step,
            stats_baseline,
            quarantine,
        } = self;
        let stats_baseline = stats_baseline.merge(&predictor.stats().merge(&novelty.stats()));
        let mut telemetry = *telemetry;
        telemetry.total_secs = total_secs;
        Snapshot {
            data_fingerprint: checkpoint::dataset_fingerprint(original),
            next_episode,
            global_step: *global_step,
            base_score,
            best_score,
            best_exprs: best_fs.exprs.iter().map(|e| e.to_string()).collect(),
            best_columns: best_fs.data.features.iter().map(|c| c.values.clone()).collect(),
            records: records.to_vec(),
            episode_best: episode_best.to_vec(),
            telemetry,
            rng: rng.state(),
            agents: agents.save_state(),
            predictor: predictor.save_state(),
            novelty: novelty.save_state(),
            replay: memory.save_state(),
            tracker_history: tracker.history().to_vec(),
            tracker_seen: tracker.seen_keys_sorted().into_iter().map(String::from).collect(),
            eval_cache: eval_cache
                .entries_lru_to_mru()
                .into_iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            eval_history: eval_history.clone(),
            pred_history: pred_history.clone(),
            nov_history: nov_history.clone(),
            nov_count: *nov_count,
            nov_mean: *nov_mean,
            nov_m2: *nov_m2,
            stats_baseline,
            quarantine: quarantine
                .entries_lru_to_mru()
                .into_iter()
                .map(|(k, ())| k.clone())
                .collect(),
        }
    }

    /// Load checkpointed state into a freshly-constructed state. The frozen
    /// RND target and the prefix caches were already rebuilt by
    /// [`SearchState::new`]; everything else comes from the snapshot.
    pub fn restore(&mut self, snap: &Snapshot, cfg: &FastFtConfig) -> FastFtResult<()> {
        let bad = |what: &str, e: String| FastFtError::Parse(format!("checkpoint: {what}: {e}"));
        self.rng = StdRng::from_state(snap.rng);
        self.agents.load_state(&snap.agents).map_err(|e| bad("agents", e))?;
        self.predictor.load_state(&snap.predictor).map_err(|e| bad("predictor", e))?;
        self.novelty.load_state(&snap.novelty).map_err(|e| bad("novelty estimator", e))?;
        self.memory =
            Memory::from_state(snap.replay.clone()).map_err(|e| bad("replay buffer", e))?;
        self.tracker =
            NoveltyTracker::from_parts(snap.tracker_history.clone(), snap.tracker_seen.clone());
        self.eval_cache = LruCache::new(cfg.eval_cache_capacity);
        for (k, v) in &snap.eval_cache {
            self.eval_cache.insert(k.clone(), *v);
        }
        self.quarantine = LruCache::new(QUARANTINE_CAPACITY);
        for k in &snap.quarantine {
            self.quarantine.insert(k.clone(), ());
        }
        self.eval_history = snap.eval_history.clone();
        self.pred_history = snap.pred_history.clone();
        self.nov_history = snap.nov_history.clone();
        self.nov_count = snap.nov_count;
        self.nov_mean = snap.nov_mean;
        self.nov_m2 = snap.nov_m2;
        self.stats_baseline = snap.stats_baseline;
        self.telemetry = snap.telemetry;
        self.global_step = snap.global_step;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::Decision;

    fn unit(tag: f64) -> MemoryUnit {
        MemoryUnit {
            state: vec![tag],
            next_state: vec![tag + 0.5],
            reward: tag,
            head: Decision { candidates: vec![vec![tag]], action: 0 },
            op: Decision { candidates: vec![vec![tag]], action: 0 },
            tail: None,
            next_head_candidates: Vec::new(),
            seq: vec![tag as usize],
            perf: tag,
        }
    }

    /// Resume regression: the prioritized buffer must keep its TD-error
    /// priorities *and* slot order across save/restore, so an identically
    /// seeded RNG draws the same sample sequence before and after.
    #[test]
    fn prioritized_sampling_survives_save_restore() {
        let mut mem = Memory::Prioritized(PrioritizedReplay::new(16));
        for i in 0..10 {
            // Spread the TD errors so the priority weighting matters.
            mem.push(unit(i as f64), (i as f64 - 4.0) * 1.5);
        }
        // Round-trip through the checkpoint byte codec, exactly as a
        // save/resume cycle would.
        let mut w = fastft_tabular::persist::Writer::new();
        fastft_tabular::persist::Persist::persist(&mem.save_state(), &mut w);
        let bytes = w.into_bytes();
        let mut r = fastft_tabular::persist::Reader::new(&bytes);
        let state: ReplayState<MemoryUnit> =
            fastft_tabular::persist::Persist::restore(&mut r).expect("decode");
        let restored = Memory::from_state(state).expect("round-trip");
        let mut rng_a = rngx::rng(99);
        let mut rng_b = rngx::rng(99);
        for draw in 0..64 {
            let a = mem.sample(&mut rng_a).expect("buffer non-empty");
            let b = restored.sample(&mut rng_b).expect("buffer non-empty");
            assert_eq!(a, b, "draw {draw} diverged after restore");
        }
        // The uniform pathway (episode-end finetuning) must match too.
        for draw in 0..16 {
            let a = mem.sample_uniform(&mut rng_a).expect("buffer non-empty");
            let b = restored.sample_uniform(&mut rng_b).expect("buffer non-empty");
            assert_eq!(a, b, "uniform draw {draw} diverged after restore");
        }
    }

    /// A mismatched variant in the checkpoint is a corruption error, not a
    /// silent policy switch.
    #[test]
    fn replay_variant_mismatch_is_rejected() {
        let mut mem = Memory::Uniform(UniformReplay::new(4));
        mem.push(unit(1.0), 0.0);
        let state = mem.save_state();
        assert!(matches!(state, ReplayState::Uniform { .. }));
        assert!(Memory::from_state(state).is_ok());
        let pri = Memory::Prioritized(PrioritizedReplay::new(4));
        assert!(matches!(pri.save_state(), ReplayState::Prioritized { .. }));
    }
}
