//! The three stage roles of a FASTFT step and their paper implementations.
//!
//! A step decomposes into the paper's three concerns:
//!
//! * [`CandidateSource`] — *where do candidate transformations come from?*
//!   [`CascadeSource`] implements §III-B/C: mutual-information clustering,
//!   then the cascading head → operation → tail agent selections, then the
//!   group-wise crossing.
//! * [`RewardModel`] — *what is a candidate worth?* [`AdaptiveRewardModel`]
//!   implements Eq. 5 (cold, real evaluation), Eq. 6 (warm, predictor
//!   difference), the RND novelty bonus, the §III-D α/β percentile
//!   triggers, and the quarantine fallback for faulting evaluations.
//! * [`Learner`] — *how does experience change the policy and components?*
//!   [`ReplayLearner`] implements prioritized replay (Eq. 10), cold-start
//!   component training (Alg. 1) and guarded periodic fine-tuning (Alg. 2).
//!
//! Stages are stateless strategy objects: every piece of mutable run state
//! lives in [`SearchState`] and reaches them through [`StageCx`]. That
//! keeps the decision stream a property of the state (and its single RNG),
//! not of which stage objects happen to be composed — swapping a stage for
//! an ablation variant cannot accidentally perturb the others.

use crate::agents::{MemoryUnit, Role};
use crate::cluster::{cluster_features, MiCache};
use crate::config::FastFtConfig;
use crate::ops::Op;
use crate::pipeline::event::{RunEvent, RunObserver};
use crate::pipeline::search_state::SearchState;
use crate::sequence::{canonical_key, encode_feature_set};
use crate::state;
use crate::transform::FeatureSet;
use fastft_rl::schedule::ExpDecay;
use fastft_runtime::Runtime;
use fastft_tabular::{Dataset, FastFtResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Percentile of a sample (linear interpolation, `q` in `[0, 1]`).
///
/// Returns `NaN` for an empty sample: every comparison against it is
/// `false`, so an empty history can never fire a percentile trigger.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    fastft_tabular::stats::percentile_sorted(&sorted, q)
}

/// Everything a stage may touch: the run's configuration and inputs
/// (shared), its mutable [`SearchState`], and the observer sink.
pub struct StageCx<'r> {
    /// Run configuration.
    pub cfg: &'r FastFtConfig,
    /// The original (untransformed) dataset.
    pub original: &'r Dataset,
    /// Worker pool for data-parallel kernels.
    pub runtime: &'r Runtime,
    /// The run's mutable state.
    pub state: &'r mut SearchState,
    /// Event sink (passive; cannot affect the decision stream).
    pub observer: &'r mut dyn RunObserver,
}

impl StageCx<'_> {
    /// Deliver `event` to the observer.
    pub fn emit(&mut self, event: RunEvent<'_>) {
        self.observer.on_event(&event);
    }

    /// Evaluate `data` downstream, memoised on the canonical feature-set
    /// key when one is supplied. Cache hits return the stored score without
    /// re-running cross-validation (and count as `cache_hits`, not
    /// `downstream_evals`); `None` bypasses the cache entirely.
    pub fn evaluate_downstream(&mut self, data: &Dataset, key: Option<&str>) -> FastFtResult<f64> {
        if let Some(k) = key {
            if let Some(&score) = self.state.eval_cache.get(k) {
                self.state.telemetry.cache_hits += 1;
                self.emit(RunEvent::DownstreamEvaluated {
                    cache_hit: true,
                    evicted: false,
                    faulted: false,
                });
                return Ok(score);
            }
        }
        let t0 = Instant::now();
        let score = self.cfg.evaluator.evaluate_with(self.runtime, data)?;
        self.state.telemetry.evaluation_secs += t0.elapsed().as_secs_f64();
        self.state.telemetry.downstream_evals += 1;
        let mut evicted = false;
        if let Some(k) = key {
            if self.state.eval_cache.insert(k.to_owned(), score) {
                self.state.telemetry.cache_evictions += 1;
                evicted = true;
            }
        }
        self.emit(RunEvent::DownstreamEvaluated { cache_hit: false, evicted, faulted: false });
        Ok(score)
    }
}

/// The clustering survey of the current feature space: candidate head
/// groups and their agent-facing representations.
pub struct Survey {
    /// Mutual-information feature clusters (index lists).
    pub clusters: Vec<Vec<usize>>,
    /// Statistical representation of each cluster.
    pub cluster_reps: Vec<Vec<f64>>,
    /// Head-agent candidate vectors, one per cluster.
    pub head_cands: Vec<Vec<f64>>,
    /// Overall feature-space representation the candidates were built on.
    pub overall: Vec<f64>,
}

/// The cascading agents' choice of head cluster, operation and (for binary
/// operations) tail cluster.
pub struct Selection {
    /// Chosen head-cluster index.
    pub head_idx: usize,
    /// Operation-agent candidate vectors (one per [`Op::ALL`] entry).
    pub op_cands: Vec<Vec<f64>>,
    /// Chosen operation index into [`Op::ALL`].
    pub op_idx: usize,
    /// Chosen operation.
    pub op: Op,
    /// Tail candidates and chosen index (binary operations only).
    pub tail: Option<(Vec<Vec<f64>>, usize)>,
}

/// Result of applying a selection to the feature set.
pub struct Crossing {
    /// Traceable expressions added this step.
    pub new_exprs: Vec<String>,
    /// Whether the crossing produced any new feature at all.
    pub produced: bool,
    /// Token encoding of the updated feature set.
    pub seq: Vec<usize>,
    /// Statistical representation of the updated feature space.
    pub next_state: Vec<f64>,
    /// Canonical (order-invariant) key of the updated feature set.
    pub key: String,
}

/// Inputs the reward model needs to value one candidate feature set.
pub struct ScoreInput<'s> {
    /// Episode index (the novelty bonus activates after cold start).
    pub episode: usize,
    /// Whether rewards come from real evaluation (Eq. 5) vs. the
    /// predictor (Eq. 6).
    pub cold: bool,
    /// The candidate's data.
    pub data: &'s Dataset,
    /// The candidate's canonical key (memo cache / quarantine).
    pub key: &'s str,
    /// The candidate's token sequence.
    pub seq: &'s [usize],
    /// The previous step's token sequence.
    pub prev_seq: &'s [usize],
    /// The previous step's performance.
    pub prev_v: f64,
}

/// The reward model's verdict on one candidate.
pub struct Scored {
    /// Performance associated with the step (predicted or evaluated).
    pub v: f64,
    /// Reward for the agents (before the unproductive-step penalty).
    pub reward: f64,
    /// Whether `v` came from the predictor rather than a downstream run.
    pub predicted: bool,
    /// Raw RND novelty of the sequence (0 when the estimator is off).
    pub novelty: f64,
}

/// Produces candidate transformations: surveys the feature space, lets the
/// policy pick, and applies the pick.
///
/// Split into three calls because the driver must interleave replay
/// learning between `survey` and `select` (the pending memory needs this
/// step's head candidates before it can be stored — and storing it samples
/// the replay buffer, which consumes RNG *before* the head selection).
pub trait CandidateSource {
    /// Cluster the current feature space and build candidate
    /// representations. Consumes no RNG.
    fn survey(&mut self, cx: &mut StageCx<'_>, fs: &FeatureSet, prev_state: &[f64]) -> Survey;

    /// Run the policy over the survey (head → op → tail).
    fn select(&mut self, cx: &mut StageCx<'_>, survey: &Survey) -> Selection;

    /// Apply the selection to `fs`: cross, extend, re-select top features,
    /// and re-encode.
    fn apply(
        &mut self,
        cx: &mut StageCx<'_>,
        fs: &mut FeatureSet,
        survey: &Survey,
        sel: &Selection,
    ) -> Crossing;
}

/// Values a candidate feature set and produces the step reward.
pub trait RewardModel {
    /// Score one candidate (see [`ScoreInput`] / [`Scored`]).
    fn score(&mut self, cx: &mut StageCx<'_>, input: ScoreInput<'_>) -> Scored;
}

/// Consumes experience: stores transition memories, optimises the agents,
/// and (re)trains the evaluation components.
pub trait Learner {
    /// Store a completed transition memory and optimise the agents from a
    /// replay sample (Alg. 1 line 9 / Alg. 2 line 17).
    fn absorb(&mut self, cx: &mut StageCx<'_>, mem: MemoryUnit);

    /// Alg. 1 lines 14–19: initial training of both components from the
    /// cold-start collection.
    fn train_cold_start(&mut self, cx: &mut StageCx<'_>);

    /// Alg. 2 lines 19–24: periodic fine-tuning from the memory buffer
    /// (uniform samples).
    fn finetune(&mut self, cx: &mut StageCx<'_>);
}

/// §III-B/C candidate source: MI clustering + cascading agent cascade +
/// group-wise crossing.
#[derive(Debug, Default, Clone, Copy)]
pub struct CascadeSource;

impl CandidateSource for CascadeSource {
    fn survey(&mut self, cx: &mut StageCx<'_>, fs: &FeatureSet, prev_state: &[f64]) -> Survey {
        let t_opt = Instant::now();
        let cache = MiCache::compute_with(cx.runtime, &fs.data, cx.cfg.mi_bins);
        let clusters = cluster_features(&fs.data, &cache, cx.cfg.cluster_threshold, 2);
        let overall = prev_state.to_vec();
        let cluster_reps: Vec<Vec<f64>> =
            clusters.iter().map(|c| state::rep_cluster(&fs.data, c)).collect();
        let head_cands: Vec<Vec<f64>> =
            cluster_reps.iter().map(|cr| state::head_candidate(cr, &overall)).collect();
        cx.state.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();
        Survey { clusters, cluster_reps, head_cands, overall }
    }

    fn select(&mut self, cx: &mut StageCx<'_>, survey: &Survey) -> Selection {
        let t_opt = Instant::now();
        let st = &mut *cx.state;
        let head_idx = st.agents.select(Role::Head, &survey.head_cands, &mut st.rng);
        let head_rep = &survey.cluster_reps[head_idx];
        let op_cands: Vec<Vec<f64>> =
            Op::ALL.iter().map(|&op| state::op_candidate(head_rep, &survey.overall, op)).collect();
        let op_idx = st.agents.select(Role::Op, &op_cands, &mut st.rng);
        let op = Op::ALL[op_idx];
        let tail = if op.is_binary() {
            let tail_cands: Vec<Vec<f64>> = survey
                .cluster_reps
                .iter()
                .map(|cr| state::tail_candidate(head_rep, &survey.overall, op, cr))
                .collect();
            let tail_idx = st.agents.select(Role::Tail, &tail_cands, &mut st.rng);
            Some((tail_cands, tail_idx))
        } else {
            None
        };
        st.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();
        Selection { head_idx, op_cands, op_idx, op, tail }
    }

    fn apply(
        &mut self,
        cx: &mut StageCx<'_>,
        fs: &mut FeatureSet,
        survey: &Survey,
        sel: &Selection,
    ) -> Crossing {
        let tail_members = sel.tail.as_ref().map(|(_, i)| survey.clusters[*i].as_slice());
        let generated = fs.cross(
            &survey.clusters[sel.head_idx],
            sel.op,
            tail_members,
            cx.cfg.max_new_per_step,
            &mut cx.state.rng,
        );
        let new_exprs: Vec<String> = generated.iter().map(|(e, _)| e.to_string()).collect();
        let produced = !generated.is_empty();
        fs.extend(generated);
        fs.select_top(cx.cfg.max_features(cx.original.n_features()), cx.cfg.mi_bins);

        let seq = encode_feature_set(&fs.exprs, &cx.state.vocab, cx.cfg.max_seq_len);
        let next_state = state::rep_overall(&fs.data);
        let key = canonical_key(&fs.exprs);
        Crossing { new_exprs, produced, seq, next_state, key }
    }
}

/// The paper's adaptive reward model: Eq. 5 cold / Eq. 6 warm scoring, the
/// normalised RND novelty bonus, §III-D percentile triggers, and the
/// quarantine fallback.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdaptiveRewardModel;

impl AdaptiveRewardModel {
    /// Fault-isolated downstream evaluation of a candidate feature set.
    ///
    /// Panics inside the evaluator, typed evaluation errors and non-finite
    /// scores all count as faults (`eval_faults`): the evaluation retries
    /// up to [`FastFtConfig::eval_retries`] more times and then the
    /// candidate is quarantined (`None`), leaving the step loop to fall
    /// back on the predictor. Quarantine shares the memo cache's canonical
    /// key, so a quarantined feature combination is never re-attempted
    /// while it remains in the bounded set. The *base* evaluation does not
    /// go through here — a dataset whose original features cannot be
    /// scored is a configuration problem and propagates as a typed error.
    fn evaluate_candidate(&self, cx: &mut StageCx<'_>, data: &Dataset, key: &str) -> Option<f64> {
        if cx.state.quarantine.get(key).is_some() {
            return None;
        }
        if let Some(&score) = cx.state.eval_cache.get(key) {
            cx.state.telemetry.cache_hits += 1;
            cx.emit(RunEvent::DownstreamEvaluated {
                cache_hit: true,
                evicted: false,
                faulted: false,
            });
            return Some(score);
        }
        for _attempt in 0..=cx.cfg.eval_retries {
            let t0 = Instant::now();
            let evaluator = &cx.cfg.evaluator;
            let runtime = cx.runtime;
            let outcome = catch_unwind(AssertUnwindSafe(|| evaluator.evaluate_with(runtime, data)));
            cx.state.telemetry.evaluation_secs += t0.elapsed().as_secs_f64();
            cx.state.telemetry.downstream_evals += 1;
            match outcome {
                Ok(Ok(score)) if score.is_finite() => {
                    let mut evicted = false;
                    if cx.state.eval_cache.insert(key.to_owned(), score) {
                        cx.state.telemetry.cache_evictions += 1;
                        evicted = true;
                    }
                    cx.emit(RunEvent::DownstreamEvaluated {
                        cache_hit: false,
                        evicted,
                        faulted: false,
                    });
                    return Some(score);
                }
                // Panic, typed evaluation error or non-finite score: count
                // the fault and retry.
                _ => {
                    cx.state.telemetry.eval_faults += 1;
                    cx.emit(RunEvent::DownstreamEvaluated {
                        cache_hit: false,
                        evicted: false,
                        faulted: true,
                    });
                }
            }
        }
        cx.state.telemetry.quarantined += 1;
        cx.state.quarantine.insert(key.to_owned(), ());
        cx.emit(RunEvent::CandidateQuarantined);
        None
    }

    /// Predictor-only score for a quarantined candidate, so the episode
    /// keeps moving with a finite reward.
    fn predict_fallback(&self, cx: &mut StageCx<'_>, seq: &[usize]) -> f64 {
        let t0 = Instant::now();
        let pred = if cx.cfg.batched_scoring {
            cx.state.predictor.predict_cached(seq)
        } else {
            cx.state.predictor.predict(seq)
        };
        let elapsed = t0.elapsed().as_secs_f64();
        cx.state.telemetry.predictor_secs += elapsed;
        cx.state.telemetry.estimation_secs += elapsed;
        cx.state.telemetry.predictor_calls += 1;
        cx.emit(RunEvent::PredictorCalled { calls: 1 });
        pred
    }

    /// Should this (predicted performance, novelty) pair trigger a real
    /// downstream evaluation? (§III-D "Adaptively Adopt Two Strategies".)
    fn trigger_downstream(&self, cx: &StageCx<'_>, pred: f64, nov: f64) -> bool {
        // Until enough history exists the percentiles are meaningless;
        // anchor with real evaluations.
        const WARMUP: usize = 8;
        if cx.state.pred_history.len() < WARMUP {
            return cx.cfg.alpha > 0.0 || cx.cfg.beta > 0.0;
        }
        // Strict inequality: sequences are often scored identically early
        // on, and `>=` against a tied percentile would fire on every step.
        let by_perf = cx.cfg.alpha > 0.0
            && pred > percentile(&cx.state.pred_history, 1.0 - cx.cfg.alpha / 100.0);
        let by_nov = cx.cfg.use_novelty
            && cx.cfg.beta > 0.0
            && nov > percentile(&cx.state.nov_history, 1.0 - cx.cfg.beta / 100.0);
        by_perf || by_nov
    }

    /// Normalise a raw RND novelty into a differential bonus: the running
    /// z-score, clamped to ±3. This keeps Eq. 6's novelty term on the same
    /// scale as performance differences regardless of the frozen target's
    /// output magnitude, and — unlike a raw magnitude — rewards *relative*
    /// novelty: above-average novelty earns a positive bonus, familiar
    /// territory a negative one (standard intrinsic-reward normalisation in
    /// the RND literature; DESIGN.md §4).
    fn normalize_novelty(&self, st: &mut SearchState, nov: f64) -> f64 {
        st.nov_count += 1;
        let delta = nov - st.nov_mean;
        st.nov_mean += delta / st.nov_count as f64;
        st.nov_m2 += delta * (nov - st.nov_mean);
        if st.nov_count < 5 {
            return 0.0;
        }
        let std = (st.nov_m2 / (st.nov_count - 1) as f64).sqrt();
        ((nov - st.nov_mean) / (std + 1e-8)).clamp(-3.0, 3.0)
    }
}

impl RewardModel for AdaptiveRewardModel {
    fn score(&mut self, cx: &mut StageCx<'_>, input: ScoreInput<'_>) -> Scored {
        let novelty_weight =
            ExpDecay { start: cx.cfg.eps_start, end: cx.cfg.eps_end, m: cx.cfg.decay_m };
        if input.cold {
            // Fault-isolated real evaluation; a quarantined candidate falls
            // back to the predictor (`predicted` keeps it out of best
            // tracking and training history).
            let (v, predicted) = match self.evaluate_candidate(cx, input.data, input.key) {
                Some(v) => {
                    cx.state.eval_history.push((input.seq.to_vec(), v));
                    (v, false)
                }
                None => (self.predict_fallback(cx, input.seq), true),
            };
            // Eq. 5 (plus the novelty bonus when the estimator is active
            // and trained; during true cold start the estimator is
            // untrained, so only the −PP path adds it).
            let mut r = v - input.prev_v;
            let mut nov = 0.0;
            if cx.cfg.use_novelty && input.episode >= cx.cfg.cold_start_episodes {
                let t_est = Instant::now();
                nov = if cx.cfg.batched_scoring {
                    cx.state.novelty.novelty_cached(input.seq)
                } else {
                    cx.state.novelty.novelty(input.seq)
                };
                let elapsed = t_est.elapsed().as_secs_f64();
                cx.state.telemetry.novelty_secs += elapsed;
                cx.state.telemetry.estimation_secs += elapsed;
                cx.state.telemetry.predictor_calls += 1;
                cx.emit(RunEvent::PredictorCalled { calls: 1 });
                let normed = self.normalize_novelty(cx.state, nov);
                r += novelty_weight.at(cx.state.global_step) * normed;
                cx.state.nov_history.push(nov);
            }
            Scored { v, reward: r, predicted, novelty: nov }
        } else {
            // Batched scoring runs the same fused kernels in the same
            // summation order as the per-sequence path, so both branches
            // are bitwise identical (`batched_scoring_matches_unbatched`).
            let t_pred = Instant::now();
            let (pred, pred_prev) = if cx.cfg.batched_scoring {
                let mut out = [0.0; 2];
                cx.state.predictor.predict_batch(&[input.seq, input.prev_seq], &mut out);
                (out[0], out[1])
            } else {
                (cx.state.predictor.predict(input.seq), cx.state.predictor.predict(input.prev_seq))
            };
            let pred_elapsed = t_pred.elapsed().as_secs_f64();
            cx.state.telemetry.predictor_secs += pred_elapsed;
            let t_nov = Instant::now();
            let nov = if !cx.cfg.use_novelty {
                0.0
            } else if cx.cfg.batched_scoring {
                cx.state.novelty.novelty_cached(input.seq)
            } else {
                cx.state.novelty.novelty(input.seq)
            };
            let nov_elapsed = t_nov.elapsed().as_secs_f64();
            cx.state.telemetry.novelty_secs += nov_elapsed;
            cx.state.telemetry.estimation_secs += pred_elapsed + nov_elapsed;
            cx.state.telemetry.predictor_calls += 2;
            cx.emit(RunEvent::PredictorCalled { calls: 2 });
            // Eq. 6, with the novelty bonus std-normalised so the two terms
            // share a scale.
            let mut r = pred - pred_prev;
            if cx.cfg.use_novelty {
                let normed = self.normalize_novelty(cx.state, nov);
                r += novelty_weight.at(cx.state.global_step) * normed;
                cx.state.nov_history.push(nov);
            }
            let trigger = self.trigger_downstream(cx, pred, nov);
            cx.state.pred_history.push(pred);
            if trigger {
                // Fault-isolated: a quarantined candidate falls back to its
                // already-computed prediction.
                match self.evaluate_candidate(cx, input.data, input.key) {
                    Some(v) => {
                        cx.state.eval_history.push((input.seq.to_vec(), v));
                        Scored { v, reward: r, predicted: false, novelty: nov }
                    }
                    None => Scored { v: pred, reward: r, predicted: true, novelty: nov },
                }
            } else {
                Scored { v: pred, reward: r, predicted: true, novelty: nov }
            }
        }
    }
}

/// Prioritized-replay learner with guarded component (re)training.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayLearner;

impl ReplayLearner {
    /// Train the components on `items` in order: one Adam step per sample
    /// when `cfg.minibatch == 0` (the paper's schedule), averaged-gradient
    /// steps over `cfg.minibatch`-sized chunks otherwise.
    fn train_components_on(cx: &mut StageCx<'_>, items: &[(Vec<usize>, f64)], train_novelty: bool) {
        if cx.cfg.minibatch > 0 {
            for chunk in items.chunks(cx.cfg.minibatch) {
                let batch: Vec<(&[usize], f64)> =
                    chunk.iter().map(|(s, v)| (s.as_slice(), *v)).collect();
                if cx.cfg.use_predictor {
                    cx.state.predictor.train_minibatch(&batch, cx.runtime);
                }
                if train_novelty && cx.cfg.use_novelty {
                    let seqs: Vec<&[usize]> = batch.iter().map(|&(s, _)| s).collect();
                    cx.state.novelty.train_minibatch(&seqs, cx.runtime);
                }
            }
        } else {
            for (seq, v) in items {
                if cx.cfg.use_predictor {
                    cx.state.predictor.train_step(seq, *v);
                }
                if train_novelty && cx.cfg.use_novelty {
                    cx.state.novelty.train_step(seq);
                }
            }
        }
    }

    /// Run a component-training round under a fault guard: the predictor
    /// and estimator weights are snapshotted first, and a round that
    /// panics or leaves non-finite parameters is rolled back to the
    /// snapshot (one `weight_rollbacks` count per restored component)
    /// instead of poisoning every score after it. Returns the number of
    /// rolled-back components.
    fn train_guarded(cx: &mut StageCx<'_>, round: impl FnOnce(&mut StageCx<'_>)) -> usize {
        let pred_backup = cx.cfg.use_predictor.then(|| cx.state.predictor.save_state());
        let nov_backup = cx.cfg.use_novelty.then(|| cx.state.novelty.save_state());
        let panicked = catch_unwind(AssertUnwindSafe(|| round(&mut *cx))).is_err();
        let mut rollbacks = 0;
        if let Some(b) = pred_backup {
            if panicked || !cx.state.predictor.params_finite() {
                let _ = cx.state.predictor.load_state(&b);
                cx.state.telemetry.weight_rollbacks += 1;
                rollbacks += 1;
            }
        }
        if let Some(b) = nov_backup {
            if panicked || !cx.state.novelty.params_finite() {
                let _ = cx.state.novelty.load_state(&b);
                cx.state.telemetry.weight_rollbacks += 1;
                rollbacks += 1;
            }
        }
        rollbacks
    }
}

impl Learner for ReplayLearner {
    fn absorb(&mut self, cx: &mut StageCx<'_>, mem: MemoryUnit) {
        let t_opt = Instant::now();
        let st = &mut *cx.state;
        let delta = st.agents.td_error(&mem);
        st.memory.push(mem, delta);
        // Alg. 1 line 9 / Alg. 2 line 17: sample from the priority
        // distribution and optimise the cascading agents.
        if st.memory.len() >= 2 {
            if let Some(sampled) = st.memory.sample(&mut st.rng) {
                let sampled = sampled.clone();
                st.agents.learn(&sampled);
            }
        }
        st.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();
    }

    fn train_cold_start(&mut self, cx: &mut StageCx<'_>) {
        let t_est = Instant::now();
        let passes = cx.cfg.retrain_epochs.max(1);
        let history = cx.state.eval_history.clone();
        let rollbacks = Self::train_guarded(cx, move |cx| {
            for _ in 0..passes {
                Self::train_components_on(cx, &history, true);
            }
        });
        cx.state.telemetry.estimation_secs += t_est.elapsed().as_secs_f64();
        cx.emit(RunEvent::ComponentsTrained { cold_start: true, rollbacks });
    }

    fn finetune(&mut self, cx: &mut StageCx<'_>) {
        let t_est = Instant::now();
        // Draw every uniform sample before training: sampling consumes the
        // run RNG identically whether the steps below are per-sample or
        // minibatched, so `cfg.minibatch` never shifts the decision stream.
        let mut sampled = Vec::with_capacity(cx.cfg.retrain_epochs);
        for _ in 0..cx.cfg.retrain_epochs {
            let st = &mut *cx.state;
            if let Some(mem) = st.memory.sample_uniform(&mut st.rng) {
                sampled.push((mem.seq.clone(), mem.perf));
            }
        }
        let use_predictor = cx.cfg.use_predictor;
        let recent = cx.state.eval_history.len().saturating_sub(cx.cfg.retrain_epochs);
        let tail: Vec<(Vec<usize>, f64)> = cx.state.eval_history[recent..].to_vec();
        let rollbacks = Self::train_guarded(cx, move |cx| {
            Self::train_components_on(cx, &sampled, true);
            // Anchor the predictor on real downstream results as well, so
            // estimated rewards cannot drift from evaluated ones.
            if use_predictor {
                Self::train_components_on(cx, &tail, false);
            }
        });
        cx.state.telemetry.estimation_secs += t_est.elapsed().as_secs_f64();
        cx.emit(RunEvent::ComponentsTrained { cold_start: false, rollbacks });
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_interpolates() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn percentile_of_empty_is_nan_and_never_triggers() {
        let p = percentile(&[], 0.9);
        assert!(p.is_nan());
        // The trigger comparisons are strict `>`, so NaN can never fire:
        // it is unordered against every value.
        assert_eq!(1.0_f64.partial_cmp(&p), None);
    }

    #[test]
    fn percentile_single_element_is_constant() {
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(percentile(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn percentile_is_order_invariant() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0, 2.0, 4.0], 0.5), 3.0);
    }
}
