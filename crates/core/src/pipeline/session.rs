//! Multi-dataset session over one shared worker pool.
//!
//! [`Session`] owns a validated [`FastFtConfig`] and a single
//! [`Runtime`]: every run launched through it shares the same worker
//! threads instead of spinning up a pool per `fit` call. One run per
//! dataset keeps runs independent (each gets a fresh
//! [`SearchState`](crate::pipeline::SearchState) from the same seed), so
//! results are identical to running each dataset alone.

use crate::config::FastFtConfig;
use crate::engine::validate_data;
use crate::pipeline::driver::Driver;
use crate::pipeline::event::{NullObserver, RunObserver};
use crate::pipeline::RunResult;
use fastft_runtime::Runtime;
use fastft_tabular::{Dataset, FastFtResult};

/// A validated configuration bound to one shared worker pool.
pub struct Session {
    cfg: FastFtConfig,
    runtime: Runtime,
}

impl Session {
    /// Validate `cfg` and build its worker pool (`cfg.threads`, or the
    /// environment default when 0).
    ///
    /// # Errors
    ///
    /// [`fastft_tabular::FastFtError::InvalidConfig`] if the configuration
    /// fails [`FastFtConfig::validate`].
    pub fn new(cfg: FastFtConfig) -> FastFtResult<Self> {
        cfg.validate()?;
        let runtime =
            if cfg.threads == 0 { Runtime::from_env() } else { Runtime::new(cfg.threads) };
        Ok(Session { cfg, runtime })
    }

    /// The session's configuration.
    pub fn cfg(&self) -> &FastFtConfig {
        &self.cfg
    }

    /// The shared worker pool.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Run the staged pipeline on one dataset.
    ///
    /// # Errors
    ///
    /// [`fastft_tabular::FastFtError::InvalidData`] if `data` is
    /// degenerate, [`fastft_tabular::FastFtError::Evaluation`] if the
    /// *original* feature set cannot be scored (mid-run candidate faults
    /// are quarantined instead), [`fastft_tabular::FastFtError::Io`] if a
    /// configured checkpoint cannot be written.
    pub fn run(&self, data: &Dataset) -> FastFtResult<RunResult> {
        self.run_observed(data, &mut NullObserver)
    }

    /// [`run`](Session::run) with a [`RunObserver`] attached. Observers
    /// are passive, so the result is identical with or without one.
    pub fn run_observed(
        &self,
        data: &Dataset,
        observer: &mut dyn RunObserver,
    ) -> FastFtResult<RunResult> {
        validate_data(data)?;
        Driver::new(&self.cfg, data, &self.runtime).execute(observer)
    }

    /// Run every dataset in order over the shared pool, collecting one
    /// result (or error) per dataset. A dataset that fails does not stop
    /// the rest.
    pub fn run_all(&self, datasets: &[Dataset]) -> Vec<FastFtResult<RunResult>> {
        datasets.iter().map(|d| self.run(d)).collect()
    }
}
