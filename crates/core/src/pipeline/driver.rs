//! The deterministic episode/step loop over composed stages.
//!
//! [`Driver`] owns a [`SearchState`] and three stage strategies, and runs
//! the paper's outer loop: survey → (absorb pending memory) → select →
//! cross → score → record, with component training, best tracking and
//! crash-safe checkpointing at episode boundaries. The loop itself makes
//! no learning decisions — those live in the stages — but it *is* the
//! single owner of RNG-consumption order, which is what makes every
//! composition of stages (full method, ablations, resumed runs) share one
//! decision stream.

use crate::agents::{Decision, MemoryUnit};
use crate::checkpoint;
use crate::config::FastFtConfig;
use crate::pipeline::event::{NullObserver, RunEvent, RunObserver};
use crate::pipeline::search_state::SearchState;
use crate::pipeline::stages::{
    AdaptiveRewardModel, CandidateSource, CascadeSource, Learner, ReplayLearner, RewardModel,
    ScoreInput, StageCx,
};
use crate::pipeline::{RunResult, StepRecord, StopReason};
use crate::sequence::{canonical_key, encode_feature_set};
use crate::state;
use crate::transform::FeatureSet;
use fastft_runtime::Runtime;
use fastft_tabular::{Dataset, FastFtResult};
use std::time::Instant;

/// Which run budget, if any, is exhausted at this step boundary. Pure
/// bookkeeping — no RNG is consumed — so a budget-stopped run stays on
/// the same decision stream as an uninterrupted one up to the stop.
fn budget_reason(
    cfg: &FastFtConfig,
    state: &SearchState,
    t_start: Instant,
    prior_secs: f64,
) -> Option<StopReason> {
    if cfg.max_downstream_evals > 0 && state.telemetry.downstream_evals >= cfg.max_downstream_evals
    {
        return Some(StopReason::EvalBudget);
    }
    if cfg.max_wall_secs > 0.0 && prior_secs + t_start.elapsed().as_secs_f64() >= cfg.max_wall_secs
    {
        return Some(StopReason::WallClock);
    }
    None
}

/// The staged FASTFT run loop.
///
/// Generic over its three stage roles with the paper's implementations as
/// defaults; `Driver::new` composes the full method, ablation and baseline
/// variants compose the same loop with different stages or configurations.
pub struct Driver<'a, S = CascadeSource, R = AdaptiveRewardModel, L = ReplayLearner> {
    cfg: &'a FastFtConfig,
    original: &'a Dataset,
    runtime: &'a Runtime,
    /// The run's mutable state (exposed so resume can load a checkpoint
    /// into it before the loop starts).
    pub state: SearchState,
    source: S,
    reward: R,
    learner: L,
}

impl<'a> Driver<'a> {
    /// Compose the paper's stages over a fresh [`SearchState`].
    pub fn new(cfg: &'a FastFtConfig, data: &'a Dataset, runtime: &'a Runtime) -> Self {
        Driver::with_stages(cfg, data, runtime, CascadeSource, AdaptiveRewardModel, ReplayLearner)
    }
}

impl<'a, S: CandidateSource, R: RewardModel, L: Learner> Driver<'a, S, R, L> {
    /// Compose custom stages over a fresh [`SearchState`].
    pub fn with_stages(
        cfg: &'a FastFtConfig,
        data: &'a Dataset,
        runtime: &'a Runtime,
        source: S,
        reward: R,
        learner: L,
    ) -> Self {
        Driver {
            cfg,
            original: data,
            runtime,
            state: SearchState::new(cfg, data),
            source,
            reward,
            learner,
        }
    }

    /// Run from scratch: evaluate the base score, then enter the episode
    /// loop at episode 0.
    pub fn execute(mut self, observer: &mut dyn RunObserver) -> FastFtResult<RunResult> {
        let t_start = Instant::now();
        let base_fs = FeatureSet::from_original(self.original);
        let base_key = canonical_key(&base_fs.exprs);
        let base_score = {
            let mut cx = StageCx {
                cfg: self.cfg,
                original: self.original,
                runtime: self.runtime,
                state: &mut self.state,
                observer,
            };
            cx.evaluate_downstream(self.original, Some(&base_key))?
        };
        self.execute_from(
            observer,
            t_start,
            0,
            base_score,
            base_score,
            base_fs,
            Vec::new(),
            Vec::new(),
        )
    }

    /// The episode loop, entered at `start_episode` — 0 for a fresh run,
    /// the checkpointed boundary for a resumed one. All best-so-far state
    /// arrives as arguments so both paths share one code path (and one
    /// decision stream).
    #[allow(clippy::too_many_arguments)]
    pub fn execute_from(
        self,
        observer: &mut dyn RunObserver,
        t_start: Instant,
        start_episode: usize,
        base_score: f64,
        mut best_score: f64,
        mut best_fs: FeatureSet,
        mut records: Vec<StepRecord>,
        mut episode_best: Vec<f64>,
    ) -> FastFtResult<RunResult> {
        let Driver { cfg, original, runtime, mut state, mut source, mut reward, mut learner } =
            self;
        let mut cx = StageCx { cfg, original, runtime, state: &mut state, observer };
        cx.emit(RunEvent::RunStarted { episode: start_episode });
        // Wall time accumulated before a resume; 0 for a fresh run.
        let prior_secs = cx.state.telemetry.total_secs;
        let mut stop = StopReason::Completed;

        'episodes: for episode in start_episode..cfg.episodes {
            let cold = episode < cfg.cold_start_episodes || !cfg.use_predictor;
            cx.emit(RunEvent::EpisodeStarted { episode, cold });
            let mut fs = FeatureSet::from_original(original);
            let mut prev_v = base_score;
            let mut prev_seq = encode_feature_set(&fs.exprs, &cx.state.vocab, cfg.max_seq_len);
            let mut prev_state = state::rep_overall(&fs.data);
            // Pending memory from the previous step, waiting for its
            // next-step head candidates before insertion.
            let mut pending: Option<MemoryUnit> = None;

            for step in 0..cfg.steps_per_episode {
                if let Some(reason) = budget_reason(cfg, cx.state, t_start, prior_secs) {
                    stop = reason;
                    break 'episodes;
                }
                cx.state.global_step += 1;

                // --- candidate source ----------------------------------
                let survey = source.survey(&mut cx, &fs, &prev_state);
                // Complete the previous step's memory with this step's head
                // candidates, then insert and learn — *before* the head
                // selection, so replay sampling and action selection keep
                // their relative order on the RNG stream.
                if let Some(mut mem) = pending.take() {
                    mem.next_head_candidates = survey.head_cands.clone();
                    learner.absorb(&mut cx, mem);
                }
                let sel = source.select(&mut cx, &survey);
                let crossing = source.apply(&mut cx, &mut fs, &survey, &sel);
                let (nov_dist, new_comb) =
                    cx.state.tracker.observe(crossing.next_state.clone(), &crossing.key);

                // --- reward model --------------------------------------
                let scored = reward.score(
                    &mut cx,
                    ScoreInput {
                        episode,
                        cold,
                        data: &fs.data,
                        key: &crossing.key,
                        seq: &crossing.seq,
                        prev_seq: &prev_seq,
                        prev_v,
                    },
                );
                // Penalise steps that generated nothing new.
                let reward_val =
                    if crossing.produced { scored.reward } else { scored.reward - 0.05 };

                // Best tracking: only real downstream evaluations count.
                if !scored.predicted && scored.v > best_score {
                    best_score = scored.v;
                    best_fs = fs.clone();
                }

                // --- memory --------------------------------------------
                let mem = MemoryUnit {
                    state: prev_state.clone(),
                    next_state: crossing.next_state.clone(),
                    reward: reward_val,
                    head: Decision { candidates: survey.head_cands, action: sel.head_idx },
                    op: Decision { candidates: sel.op_cands, action: sel.op_idx },
                    tail: sel.tail.map(|(cands, idx)| Decision { candidates: cands, action: idx }),
                    next_head_candidates: Vec::new(),
                    seq: crossing.seq.clone(),
                    perf: scored.v,
                };
                pending = Some(mem);

                let record = StepRecord {
                    episode,
                    step,
                    reward: reward_val,
                    score: scored.v,
                    predicted: scored.predicted,
                    novelty: scored.novelty,
                    novelty_distance: nov_dist,
                    new_combination: new_comb,
                    n_features: fs.n_features(),
                    new_exprs: crossing.new_exprs,
                };
                cx.emit(RunEvent::StepCompleted { record: &record });
                records.push(record);

                prev_v = scored.v;
                prev_seq = crossing.seq;
                prev_state = crossing.next_state;
            }
            // Episode end: flush the pending memory (terminal transition).
            if let Some(mem) = pending.take() {
                learner.absorb(&mut cx, mem);
            }

            // --- component training -------------------------------------
            let cold_start_end = episode + 1 == cfg.cold_start_episodes;
            let retrain_due = episode + 1 > cfg.cold_start_episodes
                && cfg.retrain_every > 0
                && (episode + 1 - cfg.cold_start_episodes).is_multiple_of(cfg.retrain_every);
            let components_active = cfg.use_predictor || cfg.use_novelty;
            if components_active && cold_start_end {
                learner.train_cold_start(&mut cx);
            } else if components_active && retrain_due {
                learner.finetune(&mut cx);
            }

            episode_best.push(best_score);
            cx.emit(RunEvent::EpisodeCompleted { episode, best_score });

            // Crash-safe checkpoint at the episode boundary. Absolute
            // episode numbering keeps the cadence stable across resumes.
            if cfg.checkpoint_every > 0 && (episode + 1).is_multiple_of(cfg.checkpoint_every) {
                if let Some(path) = cfg.checkpoint_path.clone() {
                    let total = prior_secs + t_start.elapsed().as_secs_f64();
                    let snap = cx.state.snapshot(
                        original,
                        episode + 1,
                        base_score,
                        best_score,
                        &best_fs,
                        &records,
                        &episode_best,
                        total,
                    );
                    checkpoint::write(&path, cfg, &snap)?;
                    cx.emit(RunEvent::CheckpointWritten { next_episode: episode + 1 });
                }
            }
        }

        let s = cx.state.merged_component_stats();
        let t = &mut cx.state.telemetry;
        t.prefix_hits = s.prefix_hits;
        t.prefix_misses = s.prefix_misses;
        t.prefix_evictions = s.evictions;
        t.score_batches = s.batches;
        t.batch_size_hist = s.batch_hist;
        t.total_secs = prior_secs + t_start.elapsed().as_secs_f64();
        let telemetry = cx.state.telemetry;
        cx.emit(RunEvent::RunCompleted { stop, best_score });
        Ok(RunResult {
            base_score,
            best_score,
            best_dataset: best_fs.data,
            best_exprs: best_fs.exprs,
            records,
            episode_best,
            telemetry,
            stop_reason: stop,
        })
    }

    /// [`execute`](Driver::execute) with no observer attached.
    pub fn run(self) -> FastFtResult<RunResult> {
        self.execute(&mut NullObserver)
    }
}
