//! Run lifecycle events and observers.
//!
//! The [`Driver`](crate::pipeline::Driver) and the stages it coordinates
//! narrate a run as a stream of [`RunEvent`]s delivered to a
//! [`RunObserver`]. Observers are strictly passive: they cannot influence
//! the decision stream, so attaching one never changes what a run computes.
//! [`TelemetryCollector`] is the first observer — it reconstructs the
//! deterministic [`Telemetry`] counters purely from events, which doubles
//! as a test that the event stream is complete.

use crate::pipeline::{StepRecord, StopReason, Telemetry};

/// One moment in a run's life, emitted by the driver or a stage.
///
/// Borrowed payloads (like [`StepRecord`]s) point into the run's live
/// state; observers that need them beyond the callback must clone.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunEvent<'a> {
    /// The episode loop is about to start (`episode` is 0 for a fresh run,
    /// the checkpointed boundary for a resumed one).
    RunStarted {
        /// First episode the loop will execute.
        episode: usize,
    },
    /// An episode began.
    EpisodeStarted {
        /// Episode index.
        episode: usize,
        /// Whether rewards come from real downstream evaluation (Eq. 5)
        /// rather than the Performance Predictor (Eq. 6).
        cold: bool,
    },
    /// A downstream evaluation was requested.
    DownstreamEvaluated {
        /// Answered from the canonical-key memo cache (no cross-validation
        /// ran).
        cache_hit: bool,
        /// Storing the fresh score evicted an older memo-cache entry.
        evicted: bool,
        /// The evaluation faulted (panic, typed error or non-finite score)
        /// and will retry or quarantine.
        faulted: bool,
    },
    /// A candidate exhausted its evaluation retries and joined the
    /// quarantine set; the step falls back to the predictor.
    CandidateQuarantined,
    /// The predictor/estimator networks ran inference.
    PredictorCalled {
        /// Number of inference calls issued.
        calls: usize,
    },
    /// A step finished; `record` is its full trace.
    StepCompleted {
        /// The step's trace (clone to retain).
        record: &'a StepRecord,
    },
    /// A component-training round ran (cold-start or periodic fine-tune).
    ComponentsTrained {
        /// Initial cold-start training (Alg. 1) vs. periodic fine-tuning
        /// (Alg. 2).
        cold_start: bool,
        /// Components rolled back because the round panicked or produced
        /// non-finite weights.
        rollbacks: usize,
    },
    /// An episode finished.
    EpisodeCompleted {
        /// Episode index.
        episode: usize,
        /// Best downstream-evaluated score so far.
        best_score: f64,
    },
    /// A crash-safe checkpoint was written at an episode boundary.
    CheckpointWritten {
        /// Episode the checkpoint will resume from.
        next_episode: usize,
    },
    /// The run returned.
    RunCompleted {
        /// Why the run returned.
        stop: StopReason,
        /// Final best downstream-evaluated score.
        best_score: f64,
    },
}

/// Passive receiver of [`RunEvent`]s.
pub trait RunObserver {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &RunEvent<'_>);
}

/// Observer that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn on_event(&mut self, _event: &RunEvent<'_>) {}
}

/// Rebuilds the deterministic [`Telemetry`] counters from the event stream
/// alone.
///
/// Wall-clock fields stay zero (events carry no timings); the counter
/// fields must agree exactly with the run's own telemetry — asserted by
/// `observer_counters_match_telemetry` in the engine tests.
#[derive(Debug, Default, Clone)]
pub struct TelemetryCollector {
    telemetry: Telemetry,
    steps: usize,
    episodes: usize,
    checkpoints: usize,
}

impl TelemetryCollector {
    /// Fresh collector with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters reconstructed so far (timing fields are always zero).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Steps completed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Episodes completed.
    pub fn episodes(&self) -> usize {
        self.episodes
    }

    /// Checkpoints written.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints
    }
}

impl RunObserver for TelemetryCollector {
    fn on_event(&mut self, event: &RunEvent<'_>) {
        match event {
            RunEvent::DownstreamEvaluated { cache_hit: true, .. } => {
                self.telemetry.cache_hits += 1;
            }
            RunEvent::DownstreamEvaluated { cache_hit: false, evicted, faulted } => {
                self.telemetry.downstream_evals += 1;
                if *evicted {
                    self.telemetry.cache_evictions += 1;
                }
                if *faulted {
                    self.telemetry.eval_faults += 1;
                }
            }
            RunEvent::CandidateQuarantined => self.telemetry.quarantined += 1,
            RunEvent::PredictorCalled { calls } => self.telemetry.predictor_calls += calls,
            RunEvent::ComponentsTrained { rollbacks, .. } => {
                self.telemetry.weight_rollbacks += rollbacks;
            }
            RunEvent::StepCompleted { .. } => self.steps += 1,
            RunEvent::EpisodeCompleted { .. } => self.episodes += 1,
            RunEvent::CheckpointWritten { .. } => self.checkpoints += 1,
            _ => {}
        }
    }
}
