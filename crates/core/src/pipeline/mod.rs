//! The staged FASTFT run pipeline (DESIGN.md §11).
//!
//! A run decomposes into explicit layers:
//!
//! * [`SearchState`] — every piece of mutable run state, in one struct.
//!   Checkpointing destructures it exhaustively, so state can't be added
//!   without deciding how it persists.
//! * Stage traits ([`CandidateSource`], [`RewardModel`], [`Learner`]) —
//!   the paper's three roles as stateless strategies over a [`StageCx`];
//!   [`CascadeSource`], [`AdaptiveRewardModel`] and [`ReplayLearner`] are
//!   the paper's implementations.
//! * [`Driver`] — the thin deterministic episode/step loop composing the
//!   stages. It owns RNG-consumption order, so every composition (full
//!   method, ablations, resumes) shares one decision stream.
//! * [`RunEvent`] / [`RunObserver`] — a passive narration of the run;
//!   [`TelemetryCollector`] reconstructs the deterministic telemetry
//!   counters purely from events.
//! * [`Session`] — a validated configuration bound to one shared
//!   [`Runtime`](fastft_runtime::Runtime), running any number of datasets
//!   over the same worker pool.
//!
//! [`FastFt`](crate::FastFt) is a thin façade over [`Session`]; the
//! refactor from the former monolithic engine is bitwise-invisible —
//! identical results, step records and checkpoint bytes for fixed seeds
//! (pinned by the `pipeline_parity` golden-trace test).

pub mod driver;
pub mod event;
pub mod search_state;
pub mod session;
pub mod stages;

pub use driver::Driver;
pub use event::{NullObserver, RunEvent, RunObserver, TelemetryCollector};
pub use search_state::SearchState;
pub use session::Session;
pub use stages::{
    AdaptiveRewardModel, CandidateSource, CascadeSource, Crossing, Learner, ReplayLearner,
    RewardModel, ScoreInput, Scored, Selection, StageCx, Survey,
};

use crate::expr::Expr;
use crate::scoring::BATCH_HIST_BUCKETS;
use fastft_tabular::Dataset;

/// Per-step trace of a run (Figs. 14–15, debugging, case studies).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Episode index.
    pub episode: usize,
    /// Step within the episode.
    pub step: usize,
    /// Reward fed to the agents.
    pub reward: f64,
    /// Performance associated with the step (predicted or evaluated).
    pub score: f64,
    /// Whether `score` came from the predictor rather than a downstream run.
    pub predicted: bool,
    /// RND novelty of the step's sequence (0 when the estimator is off).
    pub novelty: f64,
    /// §VI-H novelty distance of the feature-set embedding.
    pub novelty_distance: f64,
    /// Whether the feature combination was never generated before.
    pub new_combination: bool,
    /// Feature count after the step.
    pub n_features: usize,
    /// Traceable expressions added this step.
    pub new_exprs: Vec<String>,
}

impl fastft_tabular::persist::Persist for StepRecord {
    fn persist(&self, w: &mut fastft_tabular::persist::Writer) {
        let StepRecord {
            episode,
            step,
            reward,
            score,
            predicted,
            novelty,
            novelty_distance,
            new_combination,
            n_features,
            new_exprs,
        } = self;
        episode.persist(w);
        step.persist(w);
        reward.persist(w);
        score.persist(w);
        predicted.persist(w);
        novelty.persist(w);
        novelty_distance.persist(w);
        new_combination.persist(w);
        n_features.persist(w);
        new_exprs.persist(w);
    }

    fn restore(
        r: &mut fastft_tabular::persist::Reader,
    ) -> fastft_tabular::persist::PersistResult<Self> {
        use fastft_tabular::persist::Persist;
        Ok(StepRecord {
            episode: Persist::restore(r)?,
            step: Persist::restore(r)?,
            reward: Persist::restore(r)?,
            score: Persist::restore(r)?,
            predicted: Persist::restore(r)?,
            novelty: Persist::restore(r)?,
            novelty_distance: Persist::restore(r)?,
            new_combination: Persist::restore(r)?,
            n_features: Persist::restore(r)?,
            new_exprs: Persist::restore(r)?,
        })
    }
}

/// Wall-clock decomposition matching Table II's rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct Telemetry {
    /// Agent/critic updates ("Optimization").
    pub optimization_secs: f64,
    /// Predictor/estimator forward passes and training ("Estimation").
    pub estimation_secs: f64,
    /// Downstream-task evaluations ("Evaluation").
    pub evaluation_secs: f64,
    /// Whole `fit` duration ("Overall").
    pub total_secs: f64,
    /// Number of downstream evaluations performed.
    pub downstream_evals: usize,
    /// Number of predictor/estimator inference calls.
    pub predictor_calls: usize,
    /// Downstream evaluations answered from the canonical-key memo cache
    /// instead of re-running cross-validation.
    pub cache_hits: usize,
    /// Memo-cache entries evicted to respect
    /// [`FastFtConfig::eval_cache_capacity`](crate::FastFtConfig::eval_cache_capacity).
    pub cache_evictions: usize,
    /// Wall time inside Performance-Predictor inference (subset of
    /// `estimation_secs`).
    pub predictor_secs: f64,
    /// Wall time inside Novelty-Estimator inference (subset of
    /// `estimation_secs`).
    pub novelty_secs: f64,
    /// Scoring calls answered from a cached encoder prefix state.
    pub prefix_hits: u64,
    /// Scoring calls that encoded their sequence from scratch.
    pub prefix_misses: u64,
    /// Prefix-cache states evicted to respect
    /// [`FastFtConfig::prefix_cache_capacity`](crate::FastFtConfig::prefix_cache_capacity).
    pub prefix_evictions: u64,
    /// Batched scoring calls issued by the step loop.
    pub score_batches: u64,
    /// Histogram of scoring batch sizes (bucket `i` = size `i + 1`, last
    /// bucket = `≥ 8`).
    pub batch_size_hist: [u64; BATCH_HIST_BUCKETS],
    /// Downstream evaluations that faulted — panicked, returned a typed
    /// evaluation error, or produced a non-finite score — counting retries.
    pub eval_faults: usize,
    /// Candidates quarantined after exhausting
    /// [`FastFtConfig::eval_retries`](crate::FastFtConfig::eval_retries)
    /// attempts.
    pub quarantined: usize,
    /// Component-training rounds rolled back because they panicked or left
    /// non-finite weights (one count per rolled-back component).
    pub weight_rollbacks: usize,
}

impl fastft_tabular::persist::Persist for Telemetry {
    fn persist(&self, w: &mut fastft_tabular::persist::Writer) {
        let Telemetry {
            optimization_secs,
            estimation_secs,
            evaluation_secs,
            total_secs,
            downstream_evals,
            predictor_calls,
            cache_hits,
            cache_evictions,
            predictor_secs,
            novelty_secs,
            prefix_hits,
            prefix_misses,
            prefix_evictions,
            score_batches,
            batch_size_hist,
            eval_faults,
            quarantined,
            weight_rollbacks,
        } = self;
        optimization_secs.persist(w);
        estimation_secs.persist(w);
        evaluation_secs.persist(w);
        total_secs.persist(w);
        downstream_evals.persist(w);
        predictor_calls.persist(w);
        cache_hits.persist(w);
        cache_evictions.persist(w);
        predictor_secs.persist(w);
        novelty_secs.persist(w);
        prefix_hits.persist(w);
        prefix_misses.persist(w);
        prefix_evictions.persist(w);
        score_batches.persist(w);
        batch_size_hist.persist(w);
        eval_faults.persist(w);
        quarantined.persist(w);
        weight_rollbacks.persist(w);
    }

    fn restore(
        r: &mut fastft_tabular::persist::Reader,
    ) -> fastft_tabular::persist::PersistResult<Self> {
        use fastft_tabular::persist::Persist;
        Ok(Telemetry {
            optimization_secs: Persist::restore(r)?,
            estimation_secs: Persist::restore(r)?,
            evaluation_secs: Persist::restore(r)?,
            total_secs: Persist::restore(r)?,
            downstream_evals: Persist::restore(r)?,
            predictor_calls: Persist::restore(r)?,
            cache_hits: Persist::restore(r)?,
            cache_evictions: Persist::restore(r)?,
            predictor_secs: Persist::restore(r)?,
            novelty_secs: Persist::restore(r)?,
            prefix_hits: Persist::restore(r)?,
            prefix_misses: Persist::restore(r)?,
            prefix_evictions: Persist::restore(r)?,
            score_batches: Persist::restore(r)?,
            batch_size_hist: Persist::restore(r)?,
            eval_faults: Persist::restore(r)?,
            quarantined: Persist::restore(r)?,
            weight_rollbacks: Persist::restore(r)?,
        })
    }
}

/// Why a run returned (all variants return the best-so-far result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All configured episodes ran.
    Completed,
    /// [`FastFtConfig::max_wall_secs`](crate::FastFtConfig::max_wall_secs)
    /// was exhausted at a step boundary.
    WallClock,
    /// [`FastFtConfig::max_downstream_evals`](crate::FastFtConfig::max_downstream_evals)
    /// was exhausted at a step boundary.
    EvalBudget,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Completed => "completed",
            StopReason::WallClock => "wall-clock budget",
            StopReason::EvalBudget => "evaluation budget",
        })
    }
}

/// Result of a FASTFT run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Downstream score of the original feature set.
    pub base_score: f64,
    /// Best downstream-evaluated score found.
    pub best_score: f64,
    /// The dataset achieving `best_score`.
    pub best_dataset: Dataset,
    /// Traceable expressions of the best feature set.
    pub best_exprs: Vec<Expr>,
    /// Per-step trace.
    pub records: Vec<StepRecord>,
    /// Best-so-far downstream score after each episode (Fig. 7 curves).
    pub episode_best: Vec<f64>,
    /// Timing decomposition (Table II).
    pub telemetry: Telemetry,
    /// Why the run returned (completed, or which budget stopped it).
    pub stop_reason: StopReason,
}
