//! Parser for the traceable expression syntax produced by
//! [`Expr`]'s `Display` — so feature sets exported from a run (e.g. in a
//! report or CSV header) can be re-loaded and applied to new data.
//!
//! Grammar (exactly what `Display` emits):
//!
//! ```text
//! expr   := base | unary | binary
//! base   := 'f' digits
//! unary  := name '(' expr ')'          name ∈ {sq, sqrt, log, exp, sin, cos, tanh, recip}
//! binary := '(' expr op expr ')'       op ∈ {+, -, *, /}
//! ```

use crate::expr::Expr;
use crate::ops::Op;
use fastft_tabular::{FastFtError, FastFtResult};

/// Parse an expression string like `((f0*f1)+sq(f2))`.
///
/// Returns [`FastFtError::Parse`] on malformed input or trailing characters.
pub fn parse_expr(input: &str) -> FastFtResult<Expr> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let run = |p: &mut Parser| -> Result<Expr, String> {
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}: `{}`", p.pos, &input[p.pos..]));
        }
        Ok(e)
    };
    run(&mut p).map_err(FastFtError::Parse)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn expr(&mut self) -> Result<Expr, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => self.binary(),
            Some(b'f') if self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) => {
                self.base()
            }
            Some(c) if c.is_ascii_alphabetic() => self.unary(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn base(&mut self) -> Result<Expr, String> {
        self.expect(b'f')?;
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected feature index at byte {start}"));
        }
        let idx: usize = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad feature index: {e}"))?;
        Ok(Expr::base(idx))
    }

    fn unary(&mut self) -> Result<Expr, String> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let op = Op::unary()
            .find(|o| o.symbol() == name)
            .ok_or_else(|| format!("unknown unary op `{name}` at byte {start}"))?;
        self.expect(b'(')?;
        let inner = self.expr()?;
        self.skip_ws();
        self.expect(b')')?;
        Ok(Expr::unary(op, inner))
    }

    fn binary(&mut self) -> Result<Expr, String> {
        self.expect(b'(')?;
        let left = self.expr()?;
        self.skip_ws();
        let op = match self.peek() {
            Some(b'+') => Op::Plus,
            Some(b'-') => Op::Minus,
            Some(b'*') => Op::Multiply,
            Some(b'/') => Op::Divide,
            other => {
                return Err(format!(
                    "expected binary operator at byte {}, found {:?}",
                    self.pos,
                    other.map(|c| c as char)
                ))
            }
        };
        self.pos += 1;
        let right = self.expr()?;
        self.skip_ws();
        self.expect(b')')?;
        Ok(Expr::binary(op, left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_base() {
        assert_eq!(parse_expr("f0").unwrap(), Expr::base(0));
        assert_eq!(parse_expr("f42").unwrap(), Expr::base(42));
    }

    #[test]
    fn parses_unary() {
        assert_eq!(parse_expr("sq(f1)").unwrap(), Expr::unary(Op::Square, Expr::base(1)));
        assert_eq!(
            parse_expr("log(sqrt(f2))").unwrap(),
            Expr::unary(Op::Log, Expr::unary(Op::Sqrt, Expr::base(2)))
        );
    }

    #[test]
    fn parses_binary() {
        assert_eq!(
            parse_expr("(f0*f1)").unwrap(),
            Expr::binary(Op::Multiply, Expr::base(0), Expr::base(1))
        );
    }

    #[test]
    fn parses_nested_paper_style() {
        let s = "((f3*f9)+sq(f4))";
        let e = parse_expr(s).unwrap();
        assert_eq!(e.to_string(), s);
    }

    #[test]
    fn display_parse_round_trip_samples() {
        let exprs = [
            Expr::base(7),
            Expr::unary(Op::Reciprocal, Expr::base(0)),
            Expr::binary(
                Op::Divide,
                Expr::binary(Op::Plus, Expr::base(1), Expr::unary(Op::Exp, Expr::base(2))),
                Expr::unary(Op::Tanh, Expr::binary(Op::Minus, Expr::base(3), Expr::base(4))),
            ),
        ];
        for e in exprs {
            let back = parse_expr(&e.to_string()).unwrap();
            assert_eq!(back, e, "{e}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let e = parse_expr("( f0 + f1 )").unwrap();
        assert_eq!(e, Expr::binary(Op::Plus, Expr::base(0), Expr::base(1)));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "f", "(f0+)", "(f0 f1)", "sq(f0", "f0)", "zzz(f0)", "(f0%f1)"] {
            assert!(parse_expr(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_expr("f0 extra").is_err());
    }
}
