//! The Novelty Estimator (§III-C): random network distillation over
//! transformation sequences.
//!
//! A frozen, orthogonally-initialised target network `ψ⊥` (gain 16.0 per
//! §V) maps sequences to scalars; the estimator `ψ` is trained to match it
//! on every sequence the framework has seen (Eq. 4). Sequences the
//! estimator has never trained on produce large prediction errors, so the
//! squared distillation error is the novelty score feeding Eq. 6's reward
//! bonus.

use crate::predictor::PredictorConfig;
use crate::scoring::{PrefixCache, ScoreStats};
use fastft_nn::SequenceRegressor;
use fastft_runtime::Runtime;

/// RND novelty estimator: trained estimator + frozen orthogonal target.
#[derive(Debug, Clone)]
pub struct NoveltyEstimator {
    estimator: SequenceRegressor,
    target: SequenceRegressor,
    est_cache: PrefixCache,
    tgt_cache: PrefixCache,
}

impl NoveltyEstimator {
    /// Paper's orthogonal-initialisation scaling factor for the target net.
    pub const TARGET_GAIN: f64 = 16.0;

    /// Build for a vocabulary of `vocab` token ids. The estimator head is
    /// FC 16 → 4 → 1, the target head a single FC (both per §V).
    pub fn new(vocab: usize, cfg: PredictorConfig, seed: u64) -> Self {
        let estimator =
            SequenceRegressor::new(vocab, cfg.dim, cfg.dim, cfg.encoder, &[16, 4, 1], cfg.lr, seed);
        let layers = match cfg.encoder {
            fastft_nn::EncoderKind::Lstm { layers }
            | fastft_nn::EncoderKind::Rnn { layers }
            | fastft_nn::EncoderKind::Gru { layers } => layers,
            fastft_nn::EncoderKind::Transformer { blocks, .. } => blocks.max(1),
        };
        let target = SequenceRegressor::new_orthogonal_target(
            vocab,
            cfg.dim,
            cfg.dim,
            layers,
            &[1],
            Self::TARGET_GAIN,
            seed.wrapping_add(0x5eed),
        );
        NoveltyEstimator {
            estimator,
            target,
            est_cache: PrefixCache::new(cfg.prefix_cache),
            tgt_cache: PrefixCache::new(cfg.prefix_cache),
        }
    }

    /// Novelty score of a sequence: squared distillation error
    /// `(ψ(T) − ψ⊥(T))²`. High on unseen structures, low on familiar ones.
    pub fn novelty(&self, seq: &[usize]) -> f64 {
        let mut e = [0.0];
        let mut t = [0.0];
        self.estimator.predict_into(seq, &mut e);
        self.target.predict_into(seq, &mut t);
        (e[0] - t[0]) * (e[0] - t[0])
    }

    /// [`novelty`], but reusing cached encoder prefix states for both
    /// networks. Bitwise identical to the uncached path.
    ///
    /// [`novelty`]: NoveltyEstimator::novelty
    pub fn novelty_cached(&mut self, seq: &[usize]) -> f64 {
        let mut e = [0.0];
        let mut t = [0.0];
        self.est_cache.score_into(&self.estimator, seq, &mut e);
        self.tgt_cache.score_into(&self.target, seq, &mut t);
        (e[0] - t[0]) * (e[0] - t[0])
    }

    /// One distillation step on a seen sequence (Eq. 4); returns the
    /// pre-update squared error.
    pub fn train_step(&mut self, seq: &[usize]) -> f64 {
        // The target is frozen, so its cache survives training; only the
        // estimator's states go stale.
        let mut t = [0.0];
        self.tgt_cache.score_into(&self.target, seq, &mut t);
        let loss = self.estimator.train_step(seq, &t);
        self.est_cache.invalidate();
        loss
    }

    /// One averaged-gradient distillation step over a minibatch of seen
    /// sequences; returns the mean pre-update squared error. Deterministic
    /// for any worker count.
    pub fn train_minibatch(&mut self, seqs: &[&[usize]], runtime: &Runtime) -> f64 {
        let targets: Vec<[f64; 1]> = seqs
            .iter()
            .map(|s| {
                let mut t = [0.0];
                self.tgt_cache.score_into(&self.target, s, &mut t);
                t
            })
            .collect();
        let batch: Vec<(&[usize], &[f64])> =
            seqs.iter().zip(targets.iter()).map(|(&s, t)| (s, t.as_slice())).collect();
        let loss = self.estimator.train_minibatch(&batch, runtime);
        self.est_cache.invalidate();
        loss
    }

    /// Prefix-cache / batching counters, merged across both networks.
    pub fn stats(&self) -> ScoreStats {
        self.est_cache.stats().merge(&self.tgt_cache.stats())
    }

    /// Capture the estimator's weights + optimiser state (checkpoint
    /// export). The frozen target network is a pure function of the
    /// construction seed and is rebuilt, not captured; the prefix caches
    /// are wall-time optimisations and are likewise skipped.
    pub fn save_state(&mut self) -> fastft_nn::NetState {
        self.estimator.save_state()
    }

    /// Restore a snapshot taken on an identically-configured estimator.
    pub fn load_state(&mut self, state: &fastft_nn::NetState) -> Result<(), String> {
        self.estimator.load_state(state)?;
        self.est_cache.invalidate();
        Ok(())
    }

    /// Whether every trainable parameter is finite (NaN-gradient guard;
    /// the frozen target is finite by construction).
    pub fn params_finite(&mut self) -> bool {
        self.estimator.params_finite()
    }

    /// Parameter count of both networks.
    pub fn n_params(&self) -> usize {
        self.estimator.n_params() + self.target.n_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(seed: u64, n: usize, vocab: usize) -> Vec<Vec<usize>> {
        let mut rng = fastft_nn::init::rng(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(4..10);
                (0..len).map(|_| rng.gen_range(0..vocab / 2)).collect()
            })
            .collect()
    }

    #[test]
    fn training_reduces_novelty_of_seen_sequences() {
        let mut ne = NoveltyEstimator::new(
            20,
            PredictorConfig { dim: 16, lr: 5e-3, ..PredictorConfig::default() },
            1,
        );
        let seen = seqs(2, 12, 20);
        let before: f64 = seen.iter().map(|s| ne.novelty(s)).sum();
        for _ in 0..50 {
            for s in &seen {
                ne.train_step(s);
            }
        }
        let after: f64 = seen.iter().map(|s| ne.novelty(s)).sum();
        assert!(after < 0.2 * before, "before {before}, after {after}");
    }

    #[test]
    fn unseen_sequences_stay_more_novel() {
        let mut ne = NoveltyEstimator::new(
            20,
            PredictorConfig { dim: 16, lr: 5e-3, ..PredictorConfig::default() },
            3,
        );
        let seen = seqs(4, 12, 20);
        for _ in 0..60 {
            for s in &seen {
                ne.train_step(s);
            }
        }
        let seen_nov: f64 = seen.iter().map(|s| ne.novelty(s)).sum::<f64>() / seen.len() as f64;
        // Unseen sequences use the *other half* of the vocabulary, which the
        // estimator never trained on.
        let mut rng = fastft_nn::init::rng(5);
        let unseen: Vec<Vec<usize>> =
            (0..12).map(|_| (0..8).map(|_| rng.gen_range(10..20usize)).collect()).collect();
        let unseen_nov: f64 =
            unseen.iter().map(|s| ne.novelty(s)).sum::<f64>() / unseen.len() as f64;
        assert!(unseen_nov > 2.0 * seen_nov, "seen {seen_nov}, unseen {unseen_nov}");
    }

    #[test]
    fn save_load_round_trips_with_rebuilt_target() {
        let cfg = PredictorConfig { dim: 16, ..PredictorConfig::default() };
        let mut trained = NoveltyEstimator::new(20, cfg, 3);
        for s in seqs(4, 8, 20) {
            trained.train_step(&s);
        }
        let state = trained.save_state();
        // Same construction seed rebuilds the identical frozen target.
        let mut fresh = NoveltyEstimator::new(20, cfg, 3);
        fresh.load_state(&state).unwrap();
        let probe = vec![1, 2, 3, 4];
        assert_eq!(fresh.novelty(&probe), trained.novelty(&probe));
        assert_eq!(fresh.train_step(&probe), trained.train_step(&probe));
        assert_eq!(fresh.novelty(&probe), trained.novelty(&probe));
        assert!(fresh.params_finite());
    }

    #[test]
    fn novelty_is_nonnegative_and_deterministic() {
        let ne = NoveltyEstimator::new(10, PredictorConfig::default(), 7);
        let s = vec![1, 2, 3, 4];
        assert!(ne.novelty(&s) >= 0.0);
        assert_eq!(ne.novelty(&s), ne.novelty(&s));
    }
}
