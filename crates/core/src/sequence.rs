//! Feature-transformation token sequences (Definition 4, Fig. 2).
//!
//! A transformed feature set is serialised as a flat token stream: each
//! feature's expression in postfix order, features separated by `Sep`,
//! bracketed by `Start` / `End`. These sequences are the inputs of the
//! Performance Predictor and Novelty Estimator.

use crate::expr::Expr;
use crate::ops::Op;

/// A transformation-sequence token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// Sequence start marker.
    Start,
    /// Sequence end marker.
    End,
    /// Separator between features.
    Sep,
    /// A base feature reference.
    Feat(usize),
    /// An operation.
    Op(Op),
}

/// Maps tokens to dense embedding ids for a dataset with `n_base` original
/// features. Layout: `[Start, End, Sep, Pad | ops… | feats…]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenVocab {
    /// Number of base features the vocabulary covers.
    pub n_base: usize,
}

const N_SPECIALS: usize = 4;

impl TokenVocab {
    /// Vocabulary for `n_base` base features.
    pub fn new(n_base: usize) -> Self {
        TokenVocab { n_base }
    }

    /// Total vocabulary size (embedding-table rows).
    pub fn size(&self) -> usize {
        N_SPECIALS + Op::COUNT + self.n_base
    }

    /// Dense id of a token.
    ///
    /// # Panics
    /// Panics on a feature index `>= n_base`.
    pub fn id(&self, tok: Token) -> usize {
        match tok {
            Token::Start => 0,
            Token::End => 1,
            Token::Sep => 2,
            Token::Feat(i) => {
                assert!(i < self.n_base, "feature {i} outside vocab of {}", self.n_base);
                N_SPECIALS + Op::COUNT + i
            }
            Token::Op(op) => N_SPECIALS + op.index(),
        }
    }
}

/// Serialise a feature set (list of expressions) into token ids, truncated
/// to `max_len` (keeping the `End` marker) so predictor inputs stay bounded.
pub fn encode_feature_set(exprs: &[Expr], vocab: &TokenVocab, max_len: usize) -> Vec<usize> {
    assert!(max_len >= 2, "need room for Start/End");
    let mut ids = Vec::with_capacity(max_len.min(64));
    ids.push(vocab.id(Token::Start));
    'outer: for (k, e) in exprs.iter().enumerate() {
        if k > 0 {
            // Need room for the separator plus the trailing End marker.
            if ids.len() + 2 > max_len {
                break;
            }
            ids.push(vocab.id(Token::Sep));
        }
        for tok in postfix_tokens(e) {
            if ids.len() + 1 >= max_len {
                break 'outer;
            }
            ids.push(vocab.id(tok));
        }
    }
    ids.push(vocab.id(Token::End));
    ids
}

/// Postfix token stream of one expression.
pub fn postfix_tokens(e: &Expr) -> Vec<Token> {
    fn collect(e: &Expr, out: &mut Vec<Token>) {
        match e {
            Expr::Base(i) => out.push(Token::Feat(*i)),
            Expr::Unary(op, inner) => {
                collect(inner, out);
                out.push(Token::Op(*op));
            }
            Expr::Binary(op, l, r) => {
                collect(l, out);
                collect(r, out);
                out.push(Token::Op(*op));
            }
        }
    }
    let mut out = Vec::with_capacity(e.size());
    collect(e, &mut out);
    out
}

/// Canonical string key of a feature set — used to count "unencountered
/// feature combinations" (Fig. 14b) and for novelty bookkeeping. Expression
/// order within the set is normalised by sorting.
pub fn canonical_key(exprs: &[Expr]) -> String {
    let mut parts: Vec<String> = exprs.iter().map(Expr::to_string).collect();
    parts.sort_unstable();
    parts.join("|")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exprs() -> Vec<Expr> {
        vec![Expr::binary(Op::Plus, Expr::base(0), Expr::base(1)), Expr::base(2)]
    }

    #[test]
    fn vocab_ids_are_unique_and_in_range() {
        let v = TokenVocab::new(5);
        let mut seen = std::collections::HashSet::new();
        let mut all = vec![Token::Start, Token::End, Token::Sep];
        all.extend(Op::ALL.map(Token::Op));
        all.extend((0..5).map(Token::Feat));
        for t in all {
            let id = v.id(t);
            assert!(id < v.size(), "{t:?} -> {id}");
            assert!(seen.insert(id), "duplicate id for {t:?}");
        }
    }

    #[test]
    fn encoding_structure() {
        let v = TokenVocab::new(3);
        let ids = encode_feature_set(&exprs(), &v, 64);
        assert_eq!(ids[0], v.id(Token::Start));
        assert_eq!(*ids.last().unwrap(), v.id(Token::End));
        // f0 f1 + Sep f2
        assert_eq!(
            ids[1..ids.len() - 1],
            [
                v.id(Token::Feat(0)),
                v.id(Token::Feat(1)),
                v.id(Token::Op(Op::Plus)),
                v.id(Token::Sep),
                v.id(Token::Feat(2)),
            ]
        );
    }

    #[test]
    fn truncation_respects_max_len() {
        let v = TokenVocab::new(3);
        let many: Vec<Expr> = (0..50).map(|_| exprs()[0].clone()).collect();
        let ids = encode_feature_set(&many, &v, 16);
        assert!(ids.len() <= 16);
        assert_eq!(*ids.last().unwrap(), v.id(Token::End));
    }

    #[test]
    fn different_sets_encode_differently() {
        let v = TokenVocab::new(3);
        let a = encode_feature_set(&exprs(), &v, 64);
        let b = encode_feature_set(&[Expr::base(0)], &v, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn canonical_key_is_order_invariant() {
        let mut e = exprs();
        let k1 = canonical_key(&e);
        e.reverse();
        assert_eq!(k1, canonical_key(&e));
        assert_ne!(k1, canonical_key(&[Expr::base(0)]));
    }

    #[test]
    #[should_panic]
    fn oov_feature_panics() {
        let v = TokenVocab::new(2);
        let _ = v.id(Token::Feat(2));
    }
}
