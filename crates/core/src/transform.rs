//! Group-wise feature crossing (§III-B) and MI-based feature selection.
//!
//! An exploration step selects `(head cluster, operation[, tail cluster])`;
//! crossing applies the operation to every member (unary) or member pair
//! (binary), appending `|a_h|` or `|a_h| × |a_t|` new columns. To keep the
//! feature space bounded — as the GRFG line this paper builds on does — the
//! set is then truncated to the most label-relevant columns by mutual
//! information.

use crate::expr::Expr;
use crate::ops::Op;
use fastft_tabular::dataset::{Column, Dataset};
use fastft_tabular::mi;
use fastft_tabular::rngx::StdRng;
use std::collections::HashSet;

/// A working feature set: the current dataset plus one expression per
/// column, tracing every feature back to the original columns.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// Current dataset (columns evolve; targets fixed).
    pub data: Dataset,
    /// Expression of each column over the base features.
    pub exprs: Vec<Expr>,
    /// Base (original) columns, kept for re-evaluation of expressions.
    base: Vec<Vec<f64>>,
}

impl FeatureSet {
    /// Start from an original dataset: every column is its own base
    /// expression.
    pub fn from_original(data: &Dataset) -> Self {
        let exprs = (0..data.n_features()).map(Expr::base).collect();
        let base = data.features.iter().map(|c| c.values.clone()).collect();
        FeatureSet { data: data.clone(), exprs, base }
    }

    /// Number of current features.
    pub fn n_features(&self) -> usize {
        self.data.n_features()
    }

    /// Number of base features.
    pub fn n_base(&self) -> usize {
        self.base.len()
    }

    /// The original (base) columns every expression is defined over.
    pub fn base_columns(&self) -> &[Vec<f64>] {
        &self.base
    }

    /// Canonical strings of current expressions (dedup key set).
    pub fn expr_keys(&self) -> HashSet<String> {
        self.exprs.iter().map(Expr::to_string).collect()
    }

    /// Apply group-wise crossing: generate new `(expr, column)` pairs for
    /// `(head, op[, tail])`, skipping expressions already present, capping
    /// the number of generated features at `max_new` (random subsample of
    /// the member pairs, as the full cross product can explode).
    pub fn cross(
        &self,
        head: &[usize],
        op: Op,
        tail: Option<&[usize]>,
        max_new: usize,
        rng: &mut StdRng,
    ) -> Vec<(Expr, Vec<f64>)> {
        let existing = self.expr_keys();
        let mut candidates: Vec<Expr> = match (op.is_binary(), tail) {
            (false, _) => head.iter().map(|&i| Expr::unary(op, self.exprs[i].clone())).collect(),
            (true, Some(tail)) => {
                let mut v = Vec::with_capacity(head.len() * tail.len());
                for &i in head {
                    for &j in tail {
                        v.push(Expr::binary(op, self.exprs[i].clone(), self.exprs[j].clone()));
                    }
                }
                v
            }
            (true, None) => panic!("binary op {op:?} needs a tail cluster"),
        };
        // Subsample if the cross product is too large.
        if candidates.len() > max_new {
            for i in 0..max_new {
                let j = rng.gen_range(i..candidates.len());
                candidates.swap(i, j);
            }
            candidates.truncate(max_new);
        }
        candidates
            .into_iter()
            .filter(|e| !existing.contains(&e.to_string()))
            .filter_map(|e| {
                let mut col = e.eval(&self.base);
                sanitize_column(&mut col);
                // Constant columns carry no information; skip them.
                let first = col[0];
                if col.iter().all(|&v| v == first) {
                    None
                } else {
                    Some((e, col))
                }
            })
            .collect()
    }

    /// Append generated features to the working set.
    pub fn extend(&mut self, generated: Vec<(Expr, Vec<f64>)>) {
        for (e, col) in generated {
            self.data.push_feature(Column::new(e.to_string(), col));
            self.exprs.push(e);
        }
    }

    /// Truncate to the `max_features` most label-relevant columns (MI with
    /// the target). No-op when already within bounds.
    pub fn select_top(&mut self, max_features: usize, n_bins: usize) {
        if self.n_features() <= max_features {
            return;
        }
        let scores = mi::relevance_scores(&self.data, n_bins);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(max_features);
        order.sort_unstable();
        self.data = self.data.select_features(&order);
        self.exprs = order.iter().map(|&i| self.exprs[i].clone()).collect();
    }
}

/// Replace non-finite values and clamp extremes (mirrors
/// `Dataset::sanitize` for a single column).
pub fn sanitize_column(col: &mut [f64]) {
    const LIM: f64 = 1e12;
    for v in col {
        if !v.is_finite() {
            *v = 0.0;
        } else {
            *v = v.clamp(-LIM, LIM);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;
    use fastft_tabular::TaskType;

    fn toy() -> Dataset {
        let mut rng = rngx::rng(1);
        let n = 200;
        let a = rngx::normal_vec(&mut rng, n);
        let b = rngx::normal_vec(&mut rng, n);
        let c = rngx::normal_vec(&mut rng, n);
        let y: Vec<f64> =
            a.iter().zip(&b).map(|(&x, &z)| f64::from(u8::from(x * z > 0.0))).collect();
        Dataset::new(
            "toy",
            vec![Column::new("f0", a), Column::new("f1", b), Column::new("f2", c)],
            y,
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn from_original_has_base_exprs() {
        let fs = FeatureSet::from_original(&toy());
        assert_eq!(fs.n_features(), 3);
        assert!(fs.exprs.iter().all(Expr::is_base));
    }

    #[test]
    fn unary_cross_size() {
        let fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(2);
        let new = fs.cross(&[0, 1], Op::Square, None, 16, &mut rng);
        assert_eq!(new.len(), 2);
        assert_eq!(new[0].0.to_string(), "sq(f0)");
    }

    #[test]
    fn binary_cross_is_cartesian() {
        let fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(3);
        let new = fs.cross(&[0, 1], Op::Multiply, Some(&[1, 2]), 16, &mut rng);
        // 2 × 2 pairs, all distinct expressions.
        assert_eq!(new.len(), 4);
    }

    #[test]
    fn cross_caps_generation() {
        let fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(4);
        let new = fs.cross(&[0, 1, 2], Op::Plus, Some(&[0, 1, 2]), 4, &mut rng);
        assert!(new.len() <= 4);
    }

    #[test]
    fn cross_skips_duplicates() {
        let mut fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(5);
        let new = fs.cross(&[0], Op::Square, None, 16, &mut rng);
        fs.extend(new);
        let again = fs.cross(&[0], Op::Square, None, 16, &mut rng);
        assert!(again.is_empty(), "duplicate sq(f0) regenerated");
    }

    #[test]
    fn generated_columns_match_expressions() {
        let fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(6);
        let new = fs.cross(&[0], Op::Multiply, Some(&[1]), 16, &mut rng);
        let (e, col) = &new[0];
        let expect: Vec<f64> = fs.data.features[0]
            .values
            .iter()
            .zip(&fs.data.features[1].values)
            .map(|(a, b)| a * b)
            .collect();
        assert_eq!(e.to_string(), "(f0*f1)");
        for (x, y) in col.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn extend_then_select_keeps_informative() {
        let mut fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(7);
        // f0*f1 is the planted signal; it should survive aggressive
        // truncation.
        let new = fs.cross(&[0], Op::Multiply, Some(&[1]), 16, &mut rng);
        fs.extend(new);
        assert_eq!(fs.n_features(), 4);
        fs.select_top(2, 8);
        assert_eq!(fs.n_features(), 2);
        assert!(
            fs.exprs.iter().any(|e| e.to_string() == "(f0*f1)"),
            "informative crossing dropped: {:?}",
            fs.exprs.iter().map(Expr::to_string).collect::<Vec<_>>()
        );
        // Dataset and exprs stay aligned.
        assert_eq!(fs.data.n_features(), fs.exprs.len());
        for (c, e) in fs.data.features.iter().zip(&fs.exprs) {
            assert_eq!(c.name, e.to_string());
        }
    }

    #[test]
    fn composed_expressions_reference_base() {
        let mut fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(8);
        let new = fs.cross(&[0], Op::Multiply, Some(&[1]), 16, &mut rng);
        fs.extend(new);
        // Cross the generated feature (index 3) with a base feature.
        let deeper = fs.cross(&[3], Op::Plus, Some(&[2]), 16, &mut rng);
        assert_eq!(deeper[0].0.to_string(), "((f0*f1)+f2)");
        assert_eq!(deeper[0].0.base_features(), vec![0, 1, 2]);
    }

    #[test]
    fn sanitize_column_fixes_nonfinite() {
        let mut col = vec![1.0, f64::NAN, f64::INFINITY, -1e300];
        sanitize_column(&mut col);
        assert!(col.iter().all(|v| v.is_finite()));
        assert_eq!(col[1], 0.0);
    }

    #[test]
    #[should_panic]
    fn binary_without_tail_panics() {
        let fs = FeatureSet::from_original(&toy());
        let mut rng = rngx::rng(9);
        let _ = fs.cross(&[0], Op::Plus, None, 16, &mut rng);
    }
}
