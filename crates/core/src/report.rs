//! Run reporting: human-readable summaries and CSV traces of a
//! [`RunResult`](crate::engine::RunResult), plus re-application of a saved
//! feature set to new data via the expression parser.

use crate::engine::RunResult;
use crate::expr::Expr;
use crate::parse::parse_expr;
use crate::transform::sanitize_column;
use fastft_tabular::dataset::{Column, Dataset};
use fastft_tabular::{FastFtError, FastFtResult};
use std::fmt::Write as _;

/// Multi-line human-readable summary of a run.
pub fn summary(result: &RunResult) -> String {
    let t = result.telemetry;
    let mut s = String::new();
    let _ = writeln!(s, "base score : {:.4}", result.base_score);
    let _ = writeln!(
        s,
        "best score : {:.4} ({:+.4})",
        result.best_score,
        result.best_score - result.base_score
    );
    let _ = writeln!(s, "features   : {}", result.best_exprs.len());
    let _ = writeln!(s, "stopped    : {}", result.stop_reason);
    let _ = writeln!(
        s,
        "evals      : {} downstream, {} predictor calls",
        t.downstream_evals, t.predictor_calls
    );
    let _ = writeln!(
        s,
        "time       : {:.2}s total = {:.2}s evaluation + {:.2}s estimation + {:.2}s optimization (+ rest)",
        t.total_secs, t.evaluation_secs, t.estimation_secs, t.optimization_secs
    );
    let _ = writeln!(
        s,
        "scoring    : {:.2}s predictor + {:.2}s novelty; {} batches, prefix cache {} hits / {} misses / {} evictions",
        t.predictor_secs,
        t.novelty_secs,
        t.score_batches,
        t.prefix_hits,
        t.prefix_misses,
        t.prefix_evictions
    );
    if t.eval_faults > 0 || t.quarantined > 0 || t.weight_rollbacks > 0 {
        let _ = writeln!(
            s,
            "faults     : {} eval faults, {} candidates quarantined, {} weight rollbacks",
            t.eval_faults, t.quarantined, t.weight_rollbacks
        );
    }
    if t.score_batches > 0 {
        let _ = write!(s, "batch sizes:");
        for (i, n) in t.batch_size_hist.iter().enumerate() {
            if *n > 0 {
                let label = if i + 1 == t.batch_size_hist.len() {
                    format!("≥{}", i + 1)
                } else {
                    format!("{}", i + 1)
                };
                let _ = write!(s, " {label}×{n}");
            }
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "feature set:");
    for e in &result.best_exprs {
        let _ = writeln!(s, "  {e}");
    }
    s
}

/// CSV header + rows of the per-step trace (for offline plotting).
pub fn trace_csv(result: &RunResult) -> String {
    let mut s = String::from(
        "episode,step,reward,score,predicted,novelty,novelty_distance,new_combination,n_features\n",
    );
    for r in &result.records {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{}",
            r.episode,
            r.step,
            r.reward,
            r.score,
            r.predicted,
            r.novelty,
            r.novelty_distance,
            r.new_combination,
            r.n_features
        );
    }
    s
}

/// Export the best feature set as one expression per line (re-loadable with
/// [`load_feature_set`]).
pub fn save_feature_set(exprs: &[Expr]) -> String {
    exprs.iter().map(|e| format!("{e}\n")).collect()
}

/// Parse a feature set saved by [`save_feature_set`].
pub fn load_feature_set(text: &str) -> FastFtResult<Vec<Expr>> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_expr)
        .collect()
}

/// Apply a saved feature set to a (new) dataset with the same base schema,
/// producing the transformed dataset. Expressions referencing features
/// beyond the dataset's width are rejected.
pub fn apply_feature_set(data: &Dataset, exprs: &[Expr]) -> FastFtResult<Dataset> {
    let d = data.n_features();
    let base: Vec<Vec<f64>> = data.features.iter().map(|c| c.values.clone()).collect();
    let mut columns = Vec::with_capacity(exprs.len());
    for e in exprs {
        if let Some(&bad) = e.base_features().iter().find(|&&i| i >= d) {
            return Err(FastFtError::InvalidData(format!(
                "expression `{e}` references f{bad} but dataset has {d} features"
            )));
        }
        let mut col = e.eval(&base);
        sanitize_column(&mut col);
        columns.push(Column::new(e.to_string(), col));
    }
    data.with_features(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use fastft_tabular::TaskType;

    fn toy() -> Dataset {
        Dataset::new(
            "t",
            vec![
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", vec![2.0, 2.0, 1.0, 1.0]),
            ],
            vec![0.0, 1.0, 0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn feature_set_text_round_trip() {
        let exprs = vec![
            Expr::base(0),
            Expr::binary(Op::Multiply, Expr::base(0), Expr::base(1)),
            Expr::unary(Op::Log, Expr::base(1)),
        ];
        let text = save_feature_set(&exprs);
        let back = load_feature_set(&text).unwrap();
        assert_eq!(back, exprs);
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let text = "# header\n\nf0\n  (f0+f1)  \n";
        let back = load_feature_set(text).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn apply_feature_set_transforms_new_data() {
        let data = toy();
        let exprs = vec![Expr::binary(Op::Multiply, Expr::base(0), Expr::base(1))];
        let out = apply_feature_set(&data, &exprs).unwrap();
        assert_eq!(out.n_features(), 1);
        assert_eq!(out.features[0].values, vec![2.0, 4.0, 3.0, 4.0]);
        assert_eq!(out.targets, data.targets);
    }

    #[test]
    fn apply_rejects_out_of_range_feature() {
        let data = toy();
        let exprs = vec![Expr::base(5)];
        assert!(apply_feature_set(&data, &exprs).is_err());
    }

    #[test]
    fn trace_csv_has_row_per_record() {
        use crate::config::FastFtConfig;
        use crate::engine::FastFt;
        use fastft_ml::Evaluator;
        let cfg = FastFtConfig {
            episodes: 2,
            steps_per_episode: 2,
            cold_start_episodes: 1,
            evaluator: Evaluator { folds: 3, ..Evaluator::default() },
            ..FastFtConfig::default()
        };
        let spec = fastft_tabular::datagen::by_name("pima_indian").unwrap();
        let mut d = fastft_tabular::datagen::generate_capped(spec, 80, 0);
        d.sanitize();
        let result = FastFt::new(cfg).fit(&d).unwrap();
        let csv = trace_csv(&result);
        assert_eq!(csv.lines().count(), 1 + result.records.len());
        let s = summary(&result);
        assert!(s.contains("best score"));
        assert!(s.contains("scoring"), "summary should report scoring counters:\n{s}");
        assert!(
            s.contains("stopped    : completed"),
            "summary should report the stop reason:\n{s}"
        );
    }
}
