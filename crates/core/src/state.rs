//! State representations for the cascading agents (Fig. 4).
//!
//! Clusters and the overall feature set are represented by the fixed
//! 49-dimensional "stats of stats" descriptor of
//! [`fastft_tabular::stats::rep_of_columns`]; operations by a one-hot over
//! the operation set. Candidate vectors for each agent are concatenations
//! of these blocks exactly as Definition 3 prescribes.

use crate::ops::Op;
use fastft_tabular::stats::{rep_of_columns, REP_DIM};
use fastft_tabular::Dataset;

/// Dimensionality of a cluster / feature-set representation.
pub const CLUSTER_REP_DIM: usize = REP_DIM;

/// Representation of a feature cluster (subset of columns).
pub fn rep_cluster(data: &Dataset, members: &[usize]) -> Vec<f64> {
    rep_of_columns(members.iter().map(|&i| data.features[i].values.as_slice()))
}

/// Representation of the whole current feature set `Rep(F̂)`.
pub fn rep_overall(data: &Dataset) -> Vec<f64> {
    rep_of_columns(data.features.iter().map(|c| c.values.as_slice()))
}

/// One-hot representation of an operation.
pub fn rep_op(op: Op) -> Vec<f64> {
    let mut v = vec![0.0; Op::COUNT];
    v[op.index()] = 1.0;
    v
}

/// Head-agent candidate vector: `Rep(C_i) ⊕ Rep(F̂)`.
pub fn head_candidate(cluster_rep: &[f64], overall_rep: &[f64]) -> Vec<f64> {
    let mut v = Vec::with_capacity(cluster_rep.len() + overall_rep.len());
    v.extend_from_slice(cluster_rep);
    v.extend_from_slice(overall_rep);
    v
}

/// Input dimension of the head agent.
pub const HEAD_DIM: usize = 2 * CLUSTER_REP_DIM;

/// Operation-agent candidate vector: `Rep(a_h) ⊕ Rep(F̂) ⊕ onehot(op)`.
pub fn op_candidate(head_rep: &[f64], overall_rep: &[f64], op: Op) -> Vec<f64> {
    let mut v = Vec::with_capacity(head_rep.len() + overall_rep.len() + Op::COUNT);
    v.extend_from_slice(head_rep);
    v.extend_from_slice(overall_rep);
    v.extend_from_slice(&rep_op(op));
    v
}

/// Input dimension of the operation agent.
pub const OP_DIM: usize = 2 * CLUSTER_REP_DIM + Op::COUNT;

/// Tail-agent candidate vector:
/// `Rep(a_h) ⊕ Rep(F̂) ⊕ onehot(a_o) ⊕ Rep(C_i)`.
pub fn tail_candidate(
    head_rep: &[f64],
    overall_rep: &[f64],
    op: Op,
    cluster_rep: &[f64],
) -> Vec<f64> {
    let mut v =
        Vec::with_capacity(head_rep.len() + overall_rep.len() + Op::COUNT + cluster_rep.len());
    v.extend_from_slice(head_rep);
    v.extend_from_slice(overall_rep);
    v.extend_from_slice(&rep_op(op));
    v.extend_from_slice(cluster_rep);
    v
}

/// Input dimension of the tail agent.
pub const TAIL_DIM: usize = 3 * CLUSTER_REP_DIM + Op::COUNT;

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::{Column, TaskType};

    fn toy() -> Dataset {
        Dataset::new(
            "t",
            vec![
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", vec![5.0, 6.0, 7.0, 8.0]),
            ],
            vec![0.0, 1.0, 0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn dims_are_consistent() {
        let d = toy();
        let cr = rep_cluster(&d, &[0]);
        let or = rep_overall(&d);
        assert_eq!(cr.len(), CLUSTER_REP_DIM);
        assert_eq!(or.len(), CLUSTER_REP_DIM);
        assert_eq!(head_candidate(&cr, &or).len(), HEAD_DIM);
        assert_eq!(op_candidate(&cr, &or, Op::Plus).len(), OP_DIM);
        assert_eq!(tail_candidate(&cr, &or, Op::Plus, &cr).len(), TAIL_DIM);
    }

    #[test]
    fn op_onehot_is_exact() {
        let v = rep_op(Op::Multiply);
        assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
        assert_eq!(v.iter().filter(|&&x| x == 0.0).count(), Op::COUNT - 1);
        assert_eq!(v[Op::Multiply.index()], 1.0);
    }

    #[test]
    fn different_clusters_different_reps() {
        let d = toy();
        assert_ne!(rep_cluster(&d, &[0]), rep_cluster(&d, &[1]));
    }

    #[test]
    fn overall_rep_changes_when_features_change() {
        let mut d = toy();
        let before = rep_overall(&d);
        d.push_feature(Column::new("c", vec![100.0, 200.0, 300.0, 400.0]));
        assert_ne!(before, rep_overall(&d));
    }
}
