//! The operation set `O` (Definition 1): unary and binary mathematical
//! transformations applied to feature columns.
//!
//! All operations are **total** on finite inputs — divides, logs and roots
//! are guarded so generated columns stay finite, matching the sanitisation
//! downstream models require.

/// A mathematical operation from the paper's operation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    // --- unary ---
    /// `x²`
    Square,
    /// Sign-preserving square root: `sign(x)·√|x|`.
    Sqrt,
    /// `ln(|x| + 1)`
    Log,
    /// `exp(clamp(x, −20, 20))`
    Exp,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tanh(x)`
    Tanh,
    /// Guarded reciprocal: `sign(x) / (|x| + 1e−6)`.
    Reciprocal,
    // --- binary ---
    /// `a + b`
    Plus,
    /// `a − b`
    Minus,
    /// `a × b`
    Multiply,
    /// Guarded division: `a · sign(b) / (|b| + 1e−6)`.
    Divide,
}

impl Op {
    /// Every operation, unary first — index order defines the op-token ids.
    pub const ALL: [Op; 12] = [
        Op::Square,
        Op::Sqrt,
        Op::Log,
        Op::Exp,
        Op::Sin,
        Op::Cos,
        Op::Tanh,
        Op::Reciprocal,
        Op::Plus,
        Op::Minus,
        Op::Multiply,
        Op::Divide,
    ];

    /// Number of operations in the set.
    pub const COUNT: usize = Op::ALL.len();

    /// Stable index of this op inside [`Op::ALL`].
    pub fn index(self) -> usize {
        Op::ALL.iter().position(|&o| o == self).expect("op in ALL")
    }

    /// Whether the op takes a single operand.
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            Op::Square
                | Op::Sqrt
                | Op::Log
                | Op::Exp
                | Op::Sin
                | Op::Cos
                | Op::Tanh
                | Op::Reciprocal
        )
    }

    /// Whether the op takes two operands.
    pub fn is_binary(self) -> bool {
        !self.is_unary()
    }

    /// All unary ops.
    pub fn unary() -> impl Iterator<Item = Op> {
        Op::ALL.into_iter().filter(|o| o.is_unary())
    }

    /// All binary ops.
    pub fn binary() -> impl Iterator<Item = Op> {
        Op::ALL.into_iter().filter(|o| o.is_binary())
    }

    /// Rendering symbol (used by the traceable expression strings).
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Square => "sq",
            Op::Sqrt => "sqrt",
            Op::Log => "log",
            Op::Exp => "exp",
            Op::Sin => "sin",
            Op::Cos => "cos",
            Op::Tanh => "tanh",
            Op::Reciprocal => "recip",
            Op::Plus => "+",
            Op::Minus => "-",
            Op::Multiply => "*",
            Op::Divide => "/",
        }
    }

    /// Apply a unary op to a scalar.
    ///
    /// # Panics
    /// Panics if the op is binary.
    pub fn apply_unary_scalar(self, x: f64) -> f64 {
        match self {
            Op::Square => x * x,
            Op::Sqrt => x.signum() * x.abs().sqrt(),
            Op::Log => (x.abs() + 1.0).ln(),
            Op::Exp => x.clamp(-20.0, 20.0).exp(),
            Op::Sin => x.sin(),
            Op::Cos => x.cos(),
            Op::Tanh => x.tanh(),
            Op::Reciprocal => x.signum() / (x.abs() + 1e-6),
            _ => panic!("{self:?} is binary"),
        }
    }

    /// Apply a binary op to scalars.
    ///
    /// # Panics
    /// Panics if the op is unary.
    pub fn apply_binary_scalar(self, a: f64, b: f64) -> f64 {
        match self {
            Op::Plus => a + b,
            Op::Minus => a - b,
            Op::Multiply => a * b,
            Op::Divide => a * (if b < 0.0 { -1.0 } else { 1.0 }) / (b.abs() + 1e-6),
            _ => panic!("{self:?} is unary"),
        }
    }

    /// Apply a unary op columnwise.
    pub fn apply_unary(self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.apply_unary_scalar(v)).collect()
    }

    /// Apply a binary op columnwise.
    pub fn apply_binary(self, a: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.apply_binary_scalar(x, y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_partition() {
        assert_eq!(Op::unary().count(), 8);
        assert_eq!(Op::binary().count(), 4);
        assert_eq!(Op::COUNT, 12);
        for op in Op::ALL {
            assert_ne!(op.is_unary(), op.is_binary());
        }
    }

    #[test]
    fn indices_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Op::ALL {
            assert_eq!(Op::ALL[op.index()], op);
            assert!(seen.insert(op.index()));
        }
    }

    #[test]
    fn unary_totality_on_hostile_inputs() {
        for op in Op::unary() {
            for &x in &[0.0, -0.0, 1e15, -1e15, 1e-300, -1.0] {
                let y = op.apply_unary_scalar(x);
                assert!(y.is_finite(), "{op:?}({x}) = {y}");
            }
        }
    }

    #[test]
    fn binary_totality_on_hostile_inputs() {
        for op in Op::binary() {
            for &(a, b) in &[(1.0, 0.0), (0.0, 0.0), (-1e10, 1e-300), (5.0, -0.0)] {
                let y = op.apply_binary_scalar(a, b);
                assert!(y.is_finite(), "{op:?}({a}, {b}) = {y}");
            }
        }
    }

    #[test]
    fn sqrt_preserves_sign() {
        assert!((Op::Sqrt.apply_unary_scalar(-4.0) + 2.0).abs() < 1e-12);
        assert!((Op::Sqrt.apply_unary_scalar(9.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn divide_approximates_true_division() {
        let y = Op::Divide.apply_binary_scalar(6.0, 2.0);
        assert!((y - 3.0).abs() < 1e-5);
        let y = Op::Divide.apply_binary_scalar(6.0, -2.0);
        assert!((y + 3.0).abs() < 1e-5);
    }

    #[test]
    fn columnwise_matches_scalar() {
        let a = vec![1.0, -2.0, 3.0];
        let b = vec![4.0, 5.0, -6.0];
        let col = Op::Multiply.apply_binary(&a, &b);
        for i in 0..3 {
            assert_eq!(col[i], Op::Multiply.apply_binary_scalar(a[i], b[i]));
        }
        let u = Op::Square.apply_unary(&a);
        assert_eq!(u, vec![1.0, 4.0, 9.0]);
    }

    #[test]
    #[should_panic]
    fn unary_apply_on_binary_panics() {
        Op::Plus.apply_unary_scalar(1.0);
    }
}
