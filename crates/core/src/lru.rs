//! A small least-recently-used cache with a hard capacity cap.
//!
//! Backs the engine's downstream-evaluation memo cache
//! ([`crate::engine`]): long runs revisit feature combinations often
//! enough that memoisation pays, but an unbounded `HashMap` grows without
//! limit over thousands of episodes. This cache bounds memory with an
//! O(1) slot-arena doubly-linked recency list — no external crates.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// LRU cache. `capacity == 0` means unbounded (plain memoisation).
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted to respect the capacity so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drop every entry, keeping the configured capacity and the cumulative
    /// eviction counter (a `clear` is an invalidation, not an eviction).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let slot = *self.map.get(key)?;
        self.touch(slot);
        Some(&self.entries[slot].value)
    }

    /// Insert or update `key`. Marks it most recently used; evicts the
    /// least recently used entry when at capacity and returns `true` when
    /// an eviction happened.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.entries[slot].value = value;
            self.touch(slot);
            return false;
        }
        let mut evicted = false;
        let slot = if self.capacity > 0 && self.map.len() >= self.capacity {
            // Recycle the least-recently-used slot.
            let slot = self.tail;
            self.unlink(slot);
            self.map.remove(&self.entries[slot].key);
            self.entries[slot].key = key.clone();
            self.entries[slot].value = value;
            self.evictions += 1;
            evicted = true;
            slot
        } else {
            self.entries.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
            self.entries.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        evicted
    }

    /// Detach `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.entries[slot].prev, self.entries[slot].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[slot].prev = NIL;
        self.entries[slot].next = NIL;
    }

    /// Attach `slot` as the most recently used entry.
    fn push_front(&mut self, slot: usize) {
        self.entries[slot].prev = NIL;
        self.entries[slot].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Entries in recency order, least recently used first. Re-`insert`ing
    /// them in this order into an empty cache reproduces the exact recency
    /// chain, which is how checkpoints round-trip the memo cache.
    pub fn entries_lru_to_mru(&self) -> Vec<(&K, &V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut slot = self.tail;
        while slot != NIL {
            let e = &self.entries[slot];
            out.push((&e.key, &e.value));
            slot = e.prev;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_and_miss() {
        let mut c: LruCache<String, f64> = LruCache::new(4);
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
        c.insert("a".into(), 1.0);
        assert_eq!(c.get("a"), Some(&1.0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert!(!c.insert(1, 10));
        assert!(!c.insert(2, 20));
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(&10));
        assert!(c.insert(3, 30));
        assert_eq!(c.len(), 2);
        assert!(c.get(&2).is_none(), "LRU entry should be evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn update_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(!c.insert(1, 11));
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        for i in 0..1000 {
            assert!(!c.insert(i, i));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&0), Some(&0));
    }

    #[test]
    fn capacity_one_churns() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        assert!(c.insert(2, 20));
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30); // evicts 1
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.evictions(), 1, "clear is not an eviction");
        assert!(c.get(&2).is_none());
        // Reusable after clearing.
        c.insert(4, 40);
        assert_eq!(c.get(&4), Some(&40));
    }

    #[test]
    fn export_reimport_round_trips_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        c.get(&1); // order (MRU→LRU): 1, 3, 2
        let exported: Vec<(u32, u32)> =
            c.entries_lru_to_mru().into_iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(exported, vec![(2, 2), (3, 3), (1, 1)]);
        let mut r: LruCache<u32, u32> = LruCache::new(3);
        for (k, v) in exported {
            r.insert(k, v);
        }
        // Same recency chain: inserting one more evicts the same victim.
        c.insert(9, 9);
        r.insert(9, 9);
        assert!(c.get(&2).is_none() && r.get(&2).is_none());
        assert_eq!(c.get(&1), r.get(&1));
    }

    #[test]
    fn updating_a_key_marks_it_most_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Re-inserting 1 must move it to the front: 2 becomes the victim.
        c.insert(1, 11);
        assert!(c.insert(3, 30));
        assert!(c.get(&2).is_none(), "2 was the LRU entry after 1's update");
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn borrowed_key_lookup_touches_recency() {
        let mut c: LruCache<String, u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        // `get` by `&str` against `String` keys, as the engine's memo cache
        // does, must also refresh recency.
        assert_eq!(c.get("a"), Some(&1));
        c.insert("c".into(), 3);
        assert!(c.get("b").is_none());
        assert_eq!(c.get("a"), Some(&1));
    }

    #[test]
    fn eviction_order_follows_recency_chain() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        c.get(&1); // order (MRU→LRU): 1, 3, 2
        c.insert(4, 4); // evicts 2
        assert!(c.get(&2).is_none());
        c.insert(5, 5); // evicts 3
        assert!(c.get(&3).is_none());
        assert_eq!(c.get(&1), Some(&1));
        assert_eq!(c.get(&4), Some(&4));
        assert_eq!(c.get(&5), Some(&5));
        assert_eq!(c.evictions(), 2);
    }
}
