//! The cascading multi-agent system (Definition 3, Fig. 3d).
//!
//! Three agents act in sequence — head cluster, operation, tail cluster —
//! each conditioning on the previous selections through its candidate
//! vectors (see [`crate::state`]). The default learner is actor-critic with
//! a shared critic over `Rep(F̂)` (Eq. 9); the DQN family backs the Fig. 7
//! ablation.

use crate::state::{HEAD_DIM, OP_DIM, TAIL_DIM};
use fastft_nn::NetState;
use fastft_rl::actor_critic::{Actor, Critic};
use fastft_rl::dqn::{QAgent, QAgentState, QKind};
use fastft_rl::schedule::LinearDecay;
use fastft_tabular::persist::{Persist, PersistResult, Reader, Writer};
use fastft_tabular::rngx::StdRng;

/// Which reinforcement-learning framework drives the cascading agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlKind {
    /// Actor-critic (the paper's framework).
    ActorCritic,
    /// One of the Q-learning variants (Fig. 7 ablation).
    Q(QKind),
}

/// Which of the three cascading decisions a candidate set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Head feature-cluster selection.
    Head,
    /// Operation selection.
    Op,
    /// Tail feature-cluster selection (binary ops only).
    Tail,
}

/// One remembered decision: the candidate set shown to an agent and the
/// index it chose.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Candidate vectors at selection time.
    pub candidates: Vec<Vec<f64>>,
    /// Chosen index.
    pub action: usize,
}

/// A full memory unit `m = <s, a, r, s', T, v>` (§III-D "Memory
/// Collection") — the three decisions plus reward, state pair, the token
/// sequence and its (estimated or evaluated) performance.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryUnit {
    /// `Rep(F̂)` before the step.
    pub state: Vec<f64>,
    /// `Rep(F̂)` after the step.
    pub next_state: Vec<f64>,
    /// Step reward (Eq. 5 or Eq. 6).
    pub reward: f64,
    /// Head decision.
    pub head: Decision,
    /// Operation decision.
    pub op: Decision,
    /// Tail decision (binary ops only).
    pub tail: Option<Decision>,
    /// Head-agent candidates of the *next* step (empty at episode end) —
    /// used by the Q-family bootstrap.
    pub next_head_candidates: Vec<Vec<f64>>,
    /// Transformation token sequence after the step.
    pub seq: Vec<usize>,
    /// Performance associated with the sequence.
    pub perf: f64,
}

impl Persist for RlKind {
    fn persist(&self, w: &mut Writer) {
        // Fixed-width two-byte encoding: framework tag + Q-variant tag
        // (zero for actor-critic).
        match self {
            RlKind::ActorCritic => {
                w.u8(0);
                w.u8(0);
            }
            RlKind::Q(q) => {
                w.u8(1);
                q.persist(w);
            }
        }
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        let tag = r.u8()?;
        match tag {
            0 => {
                r.u8()?;
                Ok(RlKind::ActorCritic)
            }
            1 => Ok(RlKind::Q(fastft_rl::QKind::restore(r)?)),
            t => Err(format!("unknown rl tag {t}")),
        }
    }
}

impl Persist for Decision {
    fn persist(&self, w: &mut Writer) {
        let Decision { candidates, action } = self;
        candidates.persist(w);
        action.persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(Decision { candidates: Persist::restore(r)?, action: Persist::restore(r)? })
    }
}

impl Persist for MemoryUnit {
    fn persist(&self, w: &mut Writer) {
        let MemoryUnit {
            state,
            next_state,
            reward,
            head,
            op,
            tail,
            next_head_candidates,
            seq,
            perf,
        } = self;
        state.persist(w);
        next_state.persist(w);
        reward.persist(w);
        head.persist(w);
        op.persist(w);
        tail.persist(w);
        next_head_candidates.persist(w);
        seq.persist(w);
        perf.persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(MemoryUnit {
            state: Persist::restore(r)?,
            next_state: Persist::restore(r)?,
            reward: Persist::restore(r)?,
            head: Persist::restore(r)?,
            op: Persist::restore(r)?,
            tail: Persist::restore(r)?,
            next_head_candidates: Persist::restore(r)?,
            seq: Persist::restore(r)?,
            perf: Persist::restore(r)?,
        })
    }
}

impl Persist for AgentsState {
    fn persist(&self, w: &mut Writer) {
        match self {
            AgentsState::Ac { head, op, tail, critic } => {
                w.u8(0);
                head.persist(w);
                op.persist(w);
                tail.persist(w);
                critic.persist(w);
            }
            AgentsState::Q { head, op, tail, eps_step } => {
                w.u8(1);
                head.persist(w);
                op.persist(w);
                tail.persist(w);
                eps_step.persist(w);
            }
        }
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(match r.u8()? {
            0 => AgentsState::Ac {
                head: Persist::restore(r)?,
                op: Persist::restore(r)?,
                tail: Persist::restore(r)?,
                critic: Persist::restore(r)?,
            },
            1 => AgentsState::Q {
                head: Persist::restore(r)?,
                op: Persist::restore(r)?,
                tail: Persist::restore(r)?,
                eps_step: Persist::restore(r)?,
            },
            t => return Err(format!("unknown agents tag {t}")),
        })
    }
}

// One instance per engine run; the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Learner {
    Ac { head: Actor, op: Actor, tail: Actor, critic: Critic },
    Q(Box<QTriple>),
}

struct QTriple {
    head: QAgent,
    op: QAgent,
    tail: QAgent,
    eps: LinearDecay,
    step: usize,
}

/// The cascading agent system.
pub struct CascadingAgents {
    learner: Learner,
    /// Discount factor γ.
    pub gamma: f64,
}

/// Snapshot of every learnable parameter of the cascading system, matching
/// the active [`RlKind`] (checkpoint/resume support).
#[derive(Debug, Clone, PartialEq)]
pub enum AgentsState {
    /// Actor-critic weights: three actors plus the shared critic.
    Ac {
        /// Head-actor network.
        head: NetState,
        /// Operation-actor network.
        op: NetState,
        /// Tail-actor network.
        tail: NetState,
        /// Shared critic network.
        critic: NetState,
    },
    /// Q-family weights plus the ε-greedy schedule position.
    Q {
        /// Head Q-agent (online + target nets).
        head: QAgentState,
        /// Operation Q-agent.
        op: QAgentState,
        /// Tail Q-agent.
        tail: QAgentState,
        /// ε-decay schedule step.
        eps_step: u64,
    },
}

impl CascadingAgents {
    /// Build a system with the given framework and hidden width.
    pub fn new(kind: RlKind, hidden: usize, lr: f64, seed: u64) -> Self {
        let learner = match kind {
            RlKind::ActorCritic => Learner::Ac {
                head: Actor::new(HEAD_DIM, hidden, lr, seed),
                op: Actor::new(OP_DIM, hidden, lr, seed.wrapping_add(1)),
                tail: Actor::new(TAIL_DIM, hidden, lr, seed.wrapping_add(2)),
                critic: Critic::new(
                    crate::state::CLUSTER_REP_DIM,
                    hidden,
                    lr,
                    seed.wrapping_add(3),
                ),
            },
            RlKind::Q(q) => Learner::Q(Box::new(QTriple {
                head: QAgent::new(q, HEAD_DIM, hidden, lr, seed),
                op: QAgent::new(q, OP_DIM, hidden, lr, seed.wrapping_add(1)),
                tail: QAgent::new(q, TAIL_DIM, hidden, lr, seed.wrapping_add(2)),
                eps: LinearDecay { start: 1.0, end: 0.05, steps: 600 },
                step: 0,
            })),
        };
        CascadingAgents { learner, gamma: 0.99 }
    }

    /// Which framework is active.
    pub fn kind(&self) -> RlKind {
        match &self.learner {
            Learner::Ac { .. } => RlKind::ActorCritic,
            Learner::Q(q) => RlKind::Q(q.head.kind),
        }
    }

    /// Select an action for `role` from its candidate set. Q-family agents
    /// advance their ε-greedy schedule on head selections (one per step).
    pub fn select(&mut self, role: Role, candidates: &[Vec<f64>], rng: &mut StdRng) -> usize {
        match &mut self.learner {
            Learner::Ac { head, op, tail, .. } => match role {
                Role::Head => head.select(candidates, rng),
                Role::Op => op.select(candidates, rng),
                Role::Tail => tail.select(candidates, rng),
            },
            Learner::Q(q) => {
                let e = q.eps.at(q.step);
                match role {
                    Role::Head => {
                        q.step += 1;
                        q.head.select(candidates, e, rng)
                    }
                    Role::Op => q.op.select(candidates, e, rng),
                    Role::Tail => q.tail.select(candidates, e, rng),
                }
            }
        }
    }

    /// State value used for TD errors. Q-family agents bootstrap from the
    /// head Q-network, so pass the next head candidates; actor-critic uses
    /// the shared critic on `Rep(F̂)`.
    pub fn state_value(&self, state: &[f64], head_candidates: &[Vec<f64>]) -> f64 {
        match &self.learner {
            Learner::Ac { critic, .. } => critic.value(state),
            Learner::Q(q) => {
                if head_candidates.is_empty() {
                    0.0
                } else {
                    let qs = q.head.q_values(head_candidates);
                    qs.iter().cloned().fold(f64::MIN, f64::max)
                }
            }
        }
    }

    /// TD error `δ = r + γ·V(s') − V(s)` for a memory unit (the Eq. 10
    /// priority).
    pub fn td_error(&self, mem: &MemoryUnit) -> f64 {
        let v_next = self.state_value(&mem.next_state, &mem.next_head_candidates);
        let v = self.state_value(&mem.state, &mem.head.candidates);
        mem.reward + self.gamma * v_next - v
    }

    /// One optimisation step from a (replayed) memory unit: actor-critic
    /// updates all three actors with the shared advantage and regresses the
    /// critic (Eq. 9); Q agents update toward their TD targets, with the
    /// head network bootstrapping from the next step's head candidates and
    /// the op/tail networks treated one-step (their "next state" is the
    /// *within-step* cascade, whose value the shared reward already
    /// reflects — a simplification documented in DESIGN.md).
    pub fn learn(&mut self, mem: &MemoryUnit) {
        match &mut self.learner {
            Learner::Ac { head, op, tail, critic } => {
                let v_next = critic.value(&mem.next_state);
                let target = mem.reward + self.gamma * v_next;
                let advantage = target - critic.value(&mem.state);
                head.update(&mem.head.candidates, mem.head.action, advantage);
                op.update(&mem.op.candidates, mem.op.action, advantage);
                if let Some(t) = &mem.tail {
                    tail.update(&t.candidates, t.action, advantage);
                }
                critic.update(&mem.state, target);
            }
            Learner::Q(q) => {
                let target = q.head.td_target(mem.reward, &mem.next_head_candidates);
                q.head.update(&mem.head.candidates, mem.head.action, target);
                q.op.update(&mem.op.candidates, mem.op.action, mem.reward);
                if let Some(t) = &mem.tail {
                    q.tail.update(&t.candidates, t.action, mem.reward);
                }
            }
        }
    }

    /// Capture every learnable parameter (checkpoint export).
    pub fn save_state(&mut self) -> AgentsState {
        match &mut self.learner {
            Learner::Ac { head, op, tail, critic } => AgentsState::Ac {
                head: head.save_state(),
                op: op.save_state(),
                tail: tail.save_state(),
                critic: critic.save_state(),
            },
            Learner::Q(q) => AgentsState::Q {
                head: q.head.save_state(),
                op: q.op.save_state(),
                tail: q.tail.save_state(),
                eps_step: q.step as u64,
            },
        }
    }

    /// Restore from a snapshot taken on an identically-configured system.
    /// Fails when the snapshot's framework or any network shape does not
    /// match (each network validates shapes before writing).
    pub fn load_state(&mut self, state: &AgentsState) -> Result<(), String> {
        match (&mut self.learner, state) {
            (
                Learner::Ac { head, op, tail, critic },
                AgentsState::Ac { head: h, op: o, tail: t, critic: c },
            ) => {
                head.load_state(h)?;
                op.load_state(o)?;
                tail.load_state(t)?;
                critic.load_state(c)
            }
            (Learner::Q(q), AgentsState::Q { head: h, op: o, tail: t, eps_step }) => {
                q.head.load_state(h)?;
                q.op.load_state(o)?;
                q.tail.load_state(t)?;
                q.step = *eps_step as usize;
                Ok(())
            }
            _ => Err("agents snapshot does not match the configured RL framework".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    fn dummy_mem(reward: f64) -> MemoryUnit {
        let head =
            Decision { candidates: vec![vec![0.1; HEAD_DIM], vec![0.2; HEAD_DIM]], action: 1 };
        let op = Decision { candidates: vec![vec![0.1; OP_DIM]; 3], action: 0 };
        let tail = Some(Decision { candidates: vec![vec![0.3; TAIL_DIM]; 2], action: 0 });
        MemoryUnit {
            state: vec![0.0; crate::state::CLUSTER_REP_DIM],
            next_state: vec![1.0; crate::state::CLUSTER_REP_DIM],
            reward,
            head,
            op,
            tail,
            next_head_candidates: vec![vec![0.1; HEAD_DIM]],
            seq: vec![0, 1],
            perf: 0.5,
        }
    }

    #[test]
    fn select_returns_valid_indices_for_all_kinds() {
        let mut rng = rngx::rng(1);
        for kind in [RlKind::ActorCritic, RlKind::Q(QKind::Dqn), RlKind::Q(QKind::DuelingDoubleDqn)]
        {
            let mut agents = CascadingAgents::new(kind, 16, 0.01, 2);
            assert_eq!(agents.kind(), kind);
            let cands = vec![vec![0.1; HEAD_DIM]; 4];
            for _ in 0..20 {
                let a = agents.select(Role::Head, &cands, &mut rng);
                assert!(a < 4);
            }
            let cands = vec![vec![0.1; OP_DIM]; 3];
            assert!(agents.select(Role::Op, &cands, &mut rng) < 3);
            let cands = vec![vec![0.1; TAIL_DIM]; 2];
            assert!(agents.select(Role::Tail, &cands, &mut rng) < 2);
        }
    }

    #[test]
    fn learn_runs_for_all_kinds() {
        for kind in [RlKind::ActorCritic, RlKind::Q(QKind::DoubleDqn), RlKind::Q(QKind::DuelingDqn)]
        {
            let mut agents = CascadingAgents::new(kind, 8, 0.01, 3);
            let mem = dummy_mem(1.0);
            for _ in 0..5 {
                agents.learn(&mem);
            }
            // TD error stays finite after updates.
            assert!(agents.td_error(&mem).is_finite());
        }
    }

    #[test]
    fn positive_reward_increases_action_probability() {
        let mut agents = CascadingAgents::new(RlKind::ActorCritic, 16, 0.05, 4);
        let mem = dummy_mem(5.0);
        let before = match &agents.learner {
            Learner::Ac { head, .. } => head.policy(&mem.head.candidates)[mem.head.action],
            _ => unreachable!(),
        };
        for _ in 0..30 {
            agents.learn(&mem);
        }
        let after = match &agents.learner {
            Learner::Ac { head, .. } => head.policy(&mem.head.candidates)[mem.head.action],
            _ => unreachable!(),
        };
        assert!(after > before, "π(a) before {before}, after {after}");
    }

    #[test]
    fn save_load_round_trips_for_all_kinds() {
        for kind in [RlKind::ActorCritic, RlKind::Q(QKind::DoubleDqn)] {
            let mut trained = CascadingAgents::new(kind, 8, 0.01, 7);
            let mem = dummy_mem(2.0);
            for _ in 0..10 {
                trained.learn(&mem);
            }
            let state = trained.save_state();
            let mut fresh = CascadingAgents::new(kind, 8, 0.01, 99);
            assert_ne!(fresh.td_error(&mem), trained.td_error(&mem));
            fresh.load_state(&state).unwrap();
            assert_eq!(fresh.td_error(&mem), trained.td_error(&mem));
            assert_eq!(fresh.save_state(), state);
            // Restored agents select identically under the same RNG stream.
            let mut r1 = rngx::rng(11);
            let mut r2 = rngx::rng(11);
            let cands = vec![vec![0.2; HEAD_DIM]; 4];
            for _ in 0..10 {
                assert_eq!(
                    trained.select(Role::Head, &cands, &mut r1),
                    fresh.select(Role::Head, &cands, &mut r2)
                );
            }
        }
    }

    #[test]
    fn load_rejects_framework_mismatch() {
        let mut ac = CascadingAgents::new(RlKind::ActorCritic, 8, 0.01, 1);
        let mut q = CascadingAgents::new(RlKind::Q(QKind::Dqn), 8, 0.01, 1);
        let qs = q.save_state();
        assert!(ac.load_state(&qs).is_err());
        assert!(q.load_state(&ac.save_state()).is_err());
    }

    #[test]
    fn td_error_uses_reward() {
        let agents = CascadingAgents::new(RlKind::ActorCritic, 8, 0.01, 5);
        let lo = agents.td_error(&dummy_mem(0.0));
        let hi = agents.td_error(&dummy_mem(10.0));
        assert!((hi - lo - 10.0).abs() < 1e-9);
    }
}
