//! # FASTFT — accelerating reinforced feature transformation
//!
//! A from-scratch Rust implementation of the ICDE 2025 paper "FASTFT:
//! Accelerating Reinforced Feature Transformation via Advanced Exploration
//! Strategies".
//!
//! Three cascading reinforcement-learning agents ([`agents`]) select a head
//! feature cluster, a mathematical operation and a tail cluster each step,
//! producing traceable feature crossings ([`expr`], [`transform`]). The
//! expensive downstream-task reward is replaced after a cold start by a
//! **Performance Predictor** ([`predictor`]) and a **Novelty Estimator**
//! ([`novelty`], random network distillation), with real evaluation
//! triggered only for top-percentile candidates; critical transformations
//! replay from a prioritized buffer. [`engine::FastFt`] ties it all
//! together.
//!
//! ```no_run
//! use fastft_core::{FastFt, FastFtConfig};
//! use fastft_tabular::{datagen, FastFtResult};
//!
//! fn main() -> FastFtResult<()> {
//!     let spec = datagen::by_name("pima_indian").unwrap();
//!     let data = datagen::generate(spec, 0);
//!     let cfg = FastFtConfig::builder().episodes(20).threads(4).build()?;
//!     let result = FastFt::new(cfg).fit(&data)?;
//!     println!("{} -> {}", result.base_score, result.best_score);
//!     for e in &result.best_exprs {
//!         println!("  {e}");
//!     }
//!     Ok(())
//! }
//! ```

pub mod agents;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod expr;
pub mod lru;
pub mod novelty;
pub mod novelty_metric;
pub mod ops;
pub mod parse;
pub mod pipeline;
pub mod predictor;
pub mod report;
pub mod scoring;
pub mod search_stats;
pub mod sequence;
pub mod state;
pub mod transform;

pub use agents::RlKind;
pub use config::FastFtConfig;
pub use engine::{FastFt, RunResult, StepRecord, StopReason, Telemetry};
pub use expr::Expr;
pub use fastft_tabular::{FastFtError, FastFtResult};
pub use ops::Op;
pub use parse::parse_expr;
pub use pipeline::Session;
pub use transform::FeatureSet;
