//! Traceable feature expressions.
//!
//! Every generated feature carries an expression tree over the *base*
//! features, so the framework can always print the exact mathematical
//! relationship between original and generated columns — the traceability
//! the paper demonstrates in Table IV and Fig. 15.

use crate::ops::Op;
use std::fmt;

/// An expression over base features.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A base (original) feature, by index.
    Base(usize),
    /// A unary operation.
    Unary(Op, Box<Expr>),
    /// A binary operation.
    Binary(Op, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Wrap a base feature index.
    pub fn base(i: usize) -> Expr {
        Expr::Base(i)
    }

    /// Apply a unary op.
    ///
    /// # Panics
    /// Panics if `op` is binary.
    pub fn unary(op: Op, inner: Expr) -> Expr {
        assert!(op.is_unary(), "{op:?} is not unary");
        Expr::Unary(op, Box::new(inner))
    }

    /// Apply a binary op.
    ///
    /// # Panics
    /// Panics if `op` is unary.
    pub fn binary(op: Op, left: Expr, right: Expr) -> Expr {
        assert!(op.is_binary(), "{op:?} is not binary");
        Expr::Binary(op, Box::new(left), Box::new(right))
    }

    /// Evaluate against base columns (column-major, indexed by
    /// `Expr::Base`).
    pub fn eval(&self, base: &[Vec<f64>]) -> Vec<f64> {
        match self {
            Expr::Base(i) => base[*i].clone(),
            Expr::Unary(op, inner) => op.apply_unary(&inner.eval(base)),
            Expr::Binary(op, l, r) => op.apply_binary(&l.eval(base), &r.eval(base)),
        }
    }

    /// Evaluate one row.
    pub fn eval_row(&self, row: &[f64]) -> f64 {
        match self {
            Expr::Base(i) => row[*i],
            Expr::Unary(op, inner) => op.apply_unary_scalar(inner.eval_row(row)),
            Expr::Binary(op, l, r) => op.apply_binary_scalar(l.eval_row(row), r.eval_row(row)),
        }
    }

    /// Tree depth (`Base` = 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Base(_) => 1,
            Expr::Unary(_, inner) => 1 + inner.depth(),
            Expr::Binary(_, l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Node count (complexity measure for selection tie-breaking).
    pub fn size(&self) -> usize {
        match self {
            Expr::Base(_) => 1,
            Expr::Unary(_, inner) => 1 + inner.size(),
            Expr::Binary(_, l, r) => 1 + l.size() + r.size(),
        }
    }

    /// Indices of all base features the expression reads.
    pub fn base_features(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_bases(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Base(i) => out.push(*i),
            Expr::Unary(_, inner) => inner.collect_bases(out),
            Expr::Binary(_, l, r) => {
                l.collect_bases(out);
                r.collect_bases(out);
            }
        }
    }

    /// Whether this is a bare base feature.
    pub fn is_base(&self) -> bool {
        matches!(self, Expr::Base(_))
    }

    /// Postfix token walk: calls `on_feat` for leaves and `on_op` for
    /// operators in evaluation order. This ordering defines the
    /// transformation-sequence tokens (Definition 4).
    pub fn walk_postfix(&self, on_feat: &mut impl FnMut(usize), on_op: &mut impl FnMut(Op)) {
        match self {
            Expr::Base(i) => on_feat(*i),
            Expr::Unary(op, inner) => {
                inner.walk_postfix(on_feat, on_op);
                on_op(*op);
            }
            Expr::Binary(op, l, r) => {
                l.walk_postfix(on_feat, on_op);
                r.walk_postfix(on_feat, on_op);
                on_op(*op);
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Human-readable infix rendering, e.g. `((f3*f9)+sq(f4))` — the
    /// traceable form printed in Table IV / Fig. 15.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(i) => write!(f, "f{i}"),
            Expr::Unary(op, inner) => write!(f, "{}({inner})", op.symbol()),
            Expr::Binary(op, l, r) => write!(f, "({l}{}{r})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // (f0 * f1) + sq(f2)
        Expr::binary(
            Op::Plus,
            Expr::binary(Op::Multiply, Expr::base(0), Expr::base(1)),
            Expr::unary(Op::Square, Expr::base(2)),
        )
    }

    #[test]
    fn display_is_traceable() {
        assert_eq!(sample().to_string(), "((f0*f1)+sq(f2))");
    }

    #[test]
    fn eval_matches_hand_computation() {
        let base = vec![vec![2.0, -1.0], vec![3.0, 4.0], vec![5.0, 0.5]];
        let v = sample().eval(&base);
        assert_eq!(v, vec![2.0 * 3.0 + 25.0, -4.0 + 0.25]);
    }

    #[test]
    fn eval_row_matches_eval() {
        let base = vec![vec![2.0], vec![3.0], vec![5.0]];
        let col = sample().eval(&base);
        let row = sample().eval_row(&[2.0, 3.0, 5.0]);
        assert_eq!(col[0], row);
    }

    #[test]
    fn depth_and_size() {
        let e = sample();
        assert_eq!(e.depth(), 3);
        assert_eq!(e.size(), 6);
        assert_eq!(Expr::base(0).depth(), 1);
    }

    #[test]
    fn base_features_deduped_sorted() {
        let e = Expr::binary(Op::Multiply, sample(), Expr::base(1));
        assert_eq!(e.base_features(), vec![0, 1, 2]);
    }

    #[test]
    fn postfix_walk_order() {
        let mut feats = Vec::new();
        let mut ops = Vec::new();
        sample().walk_postfix(&mut |i| feats.push(i), &mut |op| ops.push(op.symbol()));
        assert_eq!(feats, vec![0, 1, 2]);
        assert_eq!(ops, vec!["*", "sq", "+"]);
    }

    #[test]
    fn equal_exprs_hash_equal() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(sample());
        assert!(set.contains(&sample()));
        assert!(!set.contains(&Expr::base(0)));
    }

    #[test]
    #[should_panic]
    fn unary_constructor_rejects_binary_op() {
        let _ = Expr::unary(Op::Plus, Expr::base(0));
    }

    #[test]
    #[should_panic]
    fn binary_constructor_rejects_unary_op() {
        let _ = Expr::binary(Op::Log, Expr::base(0), Expr::base(1));
    }
}
