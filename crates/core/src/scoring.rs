//! Batched + prefix-cached sequence scoring for the predictor/estimator
//! hot path.
//!
//! The engine scores token sequences that grow by suffix extension: each
//! episode step appends a few tokens to the previous step's sequence and
//! re-scores it. [`PrefixCache`] memoises recurrent encoder states
//! ([`EncoderState`]) keyed on token prefixes in an [`LruCache`], so an
//! extended sequence only runs the encoder over the new suffix. Because the
//! fused kernels in `fastft-nn` use one fixed summation order everywhere,
//! prefix-resumed scoring is **bitwise identical** to a cold
//! [`SequenceRegressor::predict`] — caching changes wall time, never
//! results.

use crate::lru::LruCache;
use fastft_nn::{EncoderState, SequenceRegressor};

/// Number of buckets in the batch-size histogram: sizes 1..=7 land in their
/// own bucket, everything ≥ 8 in the last.
pub const BATCH_HIST_BUCKETS: usize = 8;

/// Counters describing prefix-cache and batching behaviour. `Copy` so the
/// engine can fold it into its `Telemetry` snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScoreStats {
    /// Scoring calls that reused a cached (full or partial) prefix state.
    pub prefix_hits: u64,
    /// Scoring calls that ran the encoder from scratch.
    pub prefix_misses: u64,
    /// Encoder states dropped to respect the cache capacity.
    pub evictions: u64,
    /// Batched scoring calls issued.
    pub batches: u64,
    /// Histogram of batch sizes (bucket `i` = size `i + 1`, last = `≥ 8`).
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
}

impl ScoreStats {
    /// Record one batched scoring call of `size` sequences.
    pub fn record_batch(&mut self, size: usize) {
        self.batches += 1;
        let bucket = size.clamp(1, BATCH_HIST_BUCKETS) - 1;
        self.batch_hist[bucket] += 1;
    }

    /// Element-wise sum of two counter sets.
    pub fn merge(&self, other: &ScoreStats) -> ScoreStats {
        let mut hist = self.batch_hist;
        for (h, o) in hist.iter_mut().zip(other.batch_hist.iter()) {
            *h += o;
        }
        ScoreStats {
            prefix_hits: self.prefix_hits + other.prefix_hits,
            prefix_misses: self.prefix_misses + other.prefix_misses,
            evictions: self.evictions + other.evictions,
            batches: self.batches + other.batches,
            batch_hist: hist,
        }
    }
}

impl fastft_tabular::persist::Persist for ScoreStats {
    fn persist(&self, w: &mut fastft_tabular::persist::Writer) {
        let ScoreStats { prefix_hits, prefix_misses, evictions, batches, batch_hist } = self;
        prefix_hits.persist(w);
        prefix_misses.persist(w);
        evictions.persist(w);
        batches.persist(w);
        batch_hist.persist(w);
    }

    fn restore(
        r: &mut fastft_tabular::persist::Reader,
    ) -> fastft_tabular::persist::PersistResult<Self> {
        use fastft_tabular::persist::Persist;
        Ok(ScoreStats {
            prefix_hits: Persist::restore(r)?,
            prefix_misses: Persist::restore(r)?,
            evictions: Persist::restore(r)?,
            batches: Persist::restore(r)?,
            batch_hist: Persist::restore(r)?,
        })
    }
}

/// Bounded cache of recurrent encoder states keyed by token prefix.
///
/// `capacity == 0` disables caching entirely (every call falls through to
/// `SequenceRegressor::predict_into`); Transformer encoders are never
/// cached because their attention states are not suffix-resumable.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    states: LruCache<Vec<usize>, EncoderState>,
    enabled: bool,
    stats: ScoreStats,
}

impl PrefixCache {
    /// Cache holding at most `capacity` encoder states (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        // `LruCache::new(0)` means *unbounded*; a disabled cache never
        // inserts, so any nonzero backing capacity works.
        let states = LruCache::new(capacity.max(1));
        PrefixCache { states, enabled: capacity > 0, stats: ScoreStats::default() }
    }

    /// Score `tokens` with `net` into `out`, reusing the longest cached
    /// prefix when possible. Bitwise identical to `net.predict_into`.
    pub fn score_into(&mut self, net: &SequenceRegressor, tokens: &[usize], out: &mut [f64]) {
        if !self.enabled || !net.supports_incremental() || tokens.is_empty() {
            net.predict_into(tokens, out);
            return;
        }
        // Longest cached prefix wins; a full-length hit skips the encoder
        // entirely.
        let mut hit_len = 0;
        for l in (1..=tokens.len()).rev() {
            if let Some(state) = self.states.get(&tokens[..l]) {
                if l == tokens.len() {
                    self.stats.prefix_hits += 1;
                    net.predict_state_into(state, out);
                    self.stats.evictions = self.states.evictions();
                    return;
                }
                hit_len = l;
                break;
            }
        }
        let state = if hit_len > 0 {
            self.stats.prefix_hits += 1;
            let prefix = self.states.get(&tokens[..hit_len]).cloned().expect("probed above");
            net.encode_state(Some(&prefix), &tokens[hit_len..])
        } else {
            self.stats.prefix_misses += 1;
            net.encode_state(None, tokens)
        };
        net.predict_state_into(&state, out);
        self.states.insert(tokens.to_vec(), state);
        self.stats.evictions = self.states.evictions();
    }

    /// Score a batch of equal-output sequences into `out` (row-major,
    /// `net.out_dim()` values per sequence).
    ///
    /// With the cache enabled each sequence goes through [`score_into`]
    /// (the engine's sequences are suffix extensions of each other, so
    /// prefix reuse beats lane-packing); with it disabled the sequences are
    /// packed into length-bucketed minibatches via
    /// `SequenceRegressor::predict_batch`.
    ///
    /// [`score_into`]: PrefixCache::score_into
    pub fn score_batch_into(
        &mut self,
        net: &SequenceRegressor,
        seqs: &[&[usize]],
        out: &mut [f64],
    ) {
        let d = net.out_dim();
        assert_eq!(out.len(), seqs.len() * d, "output buffer size mismatch");
        self.stats.record_batch(seqs.len());
        if self.enabled && net.supports_incremental() {
            for (seq, chunk) in seqs.iter().zip(out.chunks_mut(d)) {
                self.score_into(net, seq, chunk);
            }
        } else {
            for (row, chunk) in net.predict_batch(seqs).iter().zip(out.chunks_mut(d)) {
                chunk.copy_from_slice(row);
            }
        }
    }

    /// Drop every cached state. Call after the underlying network's weights
    /// change — stale states would silently poison future scores.
    pub fn invalidate(&mut self) {
        self.states.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ScoreStats {
        self.stats
    }

    /// Number of cached encoder states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the cache holds no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_nn::EncoderKind;

    fn net(kind: EncoderKind) -> SequenceRegressor {
        SequenceRegressor::new(12, 8, 8, kind, &[6, 1], 1e-3, 9)
    }

    #[test]
    fn cached_scoring_is_bitwise_identical_to_predict() {
        for kind in [
            EncoderKind::Lstm { layers: 2 },
            EncoderKind::Gru { layers: 2 },
            EncoderKind::Rnn { layers: 1 },
        ] {
            let n = net(kind);
            let mut cache = PrefixCache::new(16);
            let seqs: Vec<Vec<usize>> =
                vec![vec![1, 2, 3], vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5, 6], vec![7, 8]];
            for seq in &seqs {
                let mut got = [0.0];
                cache.score_into(&n, seq, &mut got);
                assert_eq!(got[0], n.predict(seq)[0], "{kind:?} {seq:?}");
                // Second call is a full-length hit and must agree too.
                let mut again = [0.0];
                cache.score_into(&n, seq, &mut again);
                assert_eq!(again[0], got[0]);
            }
            let s = cache.stats();
            assert!(s.prefix_hits > 0, "suffix extensions should hit");
            assert!(s.prefix_misses > 0);
        }
    }

    #[test]
    fn disabled_cache_scores_without_counting() {
        let n = net(EncoderKind::Lstm { layers: 2 });
        let mut cache = PrefixCache::new(0);
        let mut out = [0.0];
        cache.score_into(&n, &[1, 2, 3], &mut out);
        assert_eq!(out[0], n.predict(&[1, 2, 3])[0]);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().prefix_hits + cache.stats().prefix_misses, 0);
    }

    #[test]
    fn batch_scoring_matches_predict_for_both_modes() {
        let n = net(EncoderKind::Lstm { layers: 2 });
        let seqs: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![1, 2, 3, 4], vec![5, 6]];
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        let expect: Vec<f64> = seqs.iter().map(|s| n.predict(s)[0]).collect();
        for capacity in [0, 8] {
            let mut cache = PrefixCache::new(capacity);
            let mut out = vec![0.0; seqs.len()];
            cache.score_batch_into(&n, &refs, &mut out);
            assert_eq!(out, expect, "capacity {capacity}");
            assert_eq!(cache.stats().batches, 1);
            assert_eq!(cache.stats().batch_hist[2], 1, "batch of 3 → bucket 2");
        }
    }

    #[test]
    fn invalidate_forces_fresh_encoding() {
        let n = net(EncoderKind::Gru { layers: 1 });
        let mut cache = PrefixCache::new(8);
        let mut out = [0.0];
        cache.score_into(&n, &[1, 2, 3], &mut out);
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
        cache.score_into(&n, &[1, 2, 3], &mut out);
        assert_eq!(out[0], n.predict(&[1, 2, 3])[0]);
        assert_eq!(cache.stats().prefix_misses, 2);
    }

    #[test]
    fn transformer_encoder_bypasses_cache() {
        let n = net(EncoderKind::Transformer { blocks: 1, heads: 2 });
        let mut cache = PrefixCache::new(8);
        let mut out = [0.0];
        cache.score_into(&n, &[1, 2, 3], &mut out);
        assert_eq!(out[0], n.predict(&[1, 2, 3])[0]);
        assert!(cache.is_empty(), "non-incremental encoders are never cached");
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = ScoreStats::default();
        a.record_batch(2);
        a.prefix_hits = 3;
        let mut b = ScoreStats::default();
        b.record_batch(20);
        b.prefix_misses = 5;
        let m = a.merge(&b);
        assert_eq!(m.batches, 2);
        assert_eq!(m.prefix_hits, 3);
        assert_eq!(m.prefix_misses, 5);
        assert_eq!(m.batch_hist[1], 1);
        assert_eq!(m.batch_hist[BATCH_HIST_BUCKETS - 1], 1, "oversize batches clamp");
    }
}
