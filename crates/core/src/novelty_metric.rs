//! The novelty-distance metric of §VI-H (Fig. 14).
//!
//! "Novelty distance" is the minimum cosine distance between the current
//! feature-set embedding and all collected historical embeddings; the
//! "unencountered feature number" counts canonical feature combinations
//! never generated before.

use std::collections::HashSet;

/// Tracks feature-set embeddings and canonical keys across a run.
#[derive(Debug, Clone, Default)]
pub struct NoveltyTracker {
    history: Vec<Vec<f64>>,
    seen: HashSet<String>,
}

/// Cosine distance `1 − cos(a, b)`; zero vectors are treated as maximally
/// distant from everything except other zero vectors.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 && nb == 0.0 {
        return 0.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    (1.0 - dot / (na * nb)).clamp(0.0, 2.0)
}

impl NoveltyTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded embeddings.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Minimum cosine distance of `embedding` to the recorded history
    /// (§VI-H's novelty distance). The first observation is maximally novel
    /// by convention (distance 1).
    pub fn novelty_distance(&self, embedding: &[f64]) -> f64 {
        self.history
            .iter()
            .map(|h| cosine_distance(h, embedding))
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Record a step: returns `(novelty_distance, is_new_combination)` and
    /// adds the embedding/key to the history.
    pub fn observe(&mut self, embedding: Vec<f64>, canonical_key: &str) -> (f64, bool) {
        let dist = self.novelty_distance(&embedding);
        let is_new = self.seen.insert(canonical_key.to_owned());
        self.history.push(embedding);
        (dist, is_new)
    }

    /// Number of distinct feature combinations encountered so far.
    pub fn unencountered_count(&self) -> usize {
        self.seen.len()
    }

    /// Recorded embeddings in observation order (checkpoint export).
    pub fn history(&self) -> &[Vec<f64>] {
        &self.history
    }

    /// Canonical keys seen so far, sorted for a deterministic checkpoint
    /// encoding (the set itself is unordered).
    pub fn seen_keys_sorted(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.seen.iter().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }

    /// Rebuild a tracker from exported parts (checkpoint import).
    pub fn from_parts(history: Vec<Vec<f64>>, seen: Vec<String>) -> Self {
        NoveltyTracker { history, seen: seen.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_distance_basics() {
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        let d1 = cosine_distance(&[1.0, 2.0], &[3.0, 1.0]);
        let d2 = cosine_distance(&[10.0, 20.0], &[3.0, 1.0]);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn zero_vectors() {
        assert_eq!(cosine_distance(&[0.0], &[0.0]), 0.0);
        assert_eq!(cosine_distance(&[0.0], &[1.0]), 1.0);
    }

    #[test]
    fn first_observation_is_fully_novel() {
        let mut t = NoveltyTracker::new();
        let (d, new) = t.observe(vec![1.0, 2.0], "a");
        assert_eq!(d, 1.0);
        assert!(new);
    }

    #[test]
    fn repeat_embedding_is_not_novel() {
        let mut t = NoveltyTracker::new();
        t.observe(vec![1.0, 2.0], "a");
        let (d, new) = t.observe(vec![1.0, 2.0], "a");
        assert!(d.abs() < 1e-12);
        assert!(!new);
        assert_eq!(t.unencountered_count(), 1);
    }

    #[test]
    fn distinct_keys_counted() {
        let mut t = NoveltyTracker::new();
        t.observe(vec![1.0, 0.0], "a");
        t.observe(vec![0.0, 1.0], "b");
        t.observe(vec![1.0, 1.0], "a");
        assert_eq!(t.unencountered_count(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn export_import_round_trips() {
        let mut t = NoveltyTracker::new();
        t.observe(vec![1.0, 0.0], "b");
        t.observe(vec![0.0, 1.0], "a");
        t.observe(vec![1.0, 1.0], "a");
        let history = t.history().to_vec();
        let seen: Vec<String> = t.seen_keys_sorted().into_iter().map(str::to_owned).collect();
        assert_eq!(seen, vec!["a".to_string(), "b".to_string()]);
        let r = NoveltyTracker::from_parts(history, seen);
        assert_eq!(r.len(), 3);
        assert_eq!(r.unencountered_count(), 2);
        assert_eq!(r.novelty_distance(&[0.9, 0.1]), t.novelty_distance(&[0.9, 0.1]));
    }

    #[test]
    fn novelty_distance_is_min_over_history() {
        let mut t = NoveltyTracker::new();
        t.observe(vec![1.0, 0.0], "a");
        t.observe(vec![0.0, 1.0], "b");
        // Closer to the first entry.
        let d = t.novelty_distance(&[0.9, 0.1]);
        assert!(d < cosine_distance(&[0.9, 0.1], &[0.0, 1.0]));
    }
}
