//! The Performance Predictor `φ(T) → ℝ` (§III-C).
//!
//! A token-embedding + 2-layer-LSTM + feed-forward regressor that maps a
//! transformation sequence to predicted downstream performance, replacing
//! the expensive `A(T(F), y)` evaluation after the cold start. The paper's
//! architecture (§V): embedding dim 32, 2 stacked LSTM layers, FC head
//! 16 → 1.

use crate::scoring::{PrefixCache, ScoreStats};
use fastft_nn::{EncoderKind, SequenceRegressor};
use fastft_runtime::Runtime;

/// Architecture hyperparameters for the predictor (and estimator encoder).
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Token-embedding / LSTM hidden width (paper: 32).
    pub dim: usize,
    /// Encoder variant (paper default: 2-layer LSTM; Fig. 8 swaps this).
    pub encoder: EncoderKind,
    /// Adam learning rate.
    pub lr: f64,
    /// Prefix-state cache capacity for cached scoring (0 = disabled).
    pub prefix_cache: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            dim: 32,
            encoder: EncoderKind::Lstm { layers: 2 },
            lr: 1e-3,
            prefix_cache: 256,
        }
    }
}

/// LSTM performance predictor.
#[derive(Debug, Clone)]
pub struct PerformancePredictor {
    net: SequenceRegressor,
    cache: PrefixCache,
}

impl PerformancePredictor {
    /// Build for a vocabulary of `vocab` token ids.
    pub fn new(vocab: usize, cfg: PredictorConfig, seed: u64) -> Self {
        // FC head 16 → 1 per the paper.
        let net =
            SequenceRegressor::new(vocab, cfg.dim, cfg.dim, cfg.encoder, &[16, 1], cfg.lr, seed);
        PerformancePredictor { net, cache: PrefixCache::new(cfg.prefix_cache) }
    }

    /// Predicted downstream performance ("pseudo-performance") of a token
    /// sequence.
    pub fn predict(&self, seq: &[usize]) -> f64 {
        let mut out = [0.0];
        self.net.predict_into(seq, &mut out);
        out[0]
    }

    /// [`predict`], but reusing cached encoder prefix states. Bitwise
    /// identical to the uncached path; only wall time changes.
    ///
    /// [`predict`]: PerformancePredictor::predict
    pub fn predict_cached(&mut self, seq: &[usize]) -> f64 {
        let mut out = [0.0];
        self.cache.score_into(&self.net, seq, &mut out);
        out[0]
    }

    /// Score several sequences in one call (`out[i]` ← prediction for
    /// `seqs[i]`), through the prefix cache when enabled.
    pub fn predict_batch(&mut self, seqs: &[&[usize]], out: &mut [f64]) {
        self.cache.score_batch_into(&self.net, seqs, out);
    }

    /// One MSE training step toward an observed performance; returns the
    /// pre-update loss (Eq. 3 summand).
    pub fn train_step(&mut self, seq: &[usize], performance: f64) -> f64 {
        let loss = self.net.train_step(seq, &[performance]);
        // Weights moved: every cached encoder state is stale.
        self.cache.invalidate();
        loss
    }

    /// One averaged-gradient Adam step over a minibatch of
    /// (sequence, performance) pairs; returns the mean pre-update loss.
    /// Deterministic for any worker count.
    pub fn train_minibatch(&mut self, items: &[(&[usize], f64)], runtime: &Runtime) -> f64 {
        let targets: Vec<[f64; 1]> = items.iter().map(|&(_, p)| [p]).collect();
        let batch: Vec<(&[usize], &[f64])> =
            items.iter().zip(targets.iter()).map(|(&(s, _), t)| (s, t.as_slice())).collect();
        let loss = self.net.train_minibatch(&batch, runtime);
        self.cache.invalidate();
        loss
    }

    /// Prefix-cache / batching counters.
    pub fn stats(&self) -> ScoreStats {
        self.cache.stats()
    }

    /// Capture network weights + optimiser state (checkpoint export). The
    /// prefix cache is a pure wall-time optimisation and is not captured.
    pub fn save_state(&mut self) -> fastft_nn::NetState {
        self.net.save_state()
    }

    /// Restore a snapshot taken on an identically-configured predictor.
    pub fn load_state(&mut self, state: &fastft_nn::NetState) -> Result<(), String> {
        self.net.load_state(state)?;
        self.cache.invalidate();
        Ok(())
    }

    /// Whether every network parameter is finite (NaN-gradient guard).
    pub fn params_finite(&mut self) -> bool {
        self.net.params_finite()
    }

    /// Parameter count (Fig. 11 memory accounting).
    pub fn n_params(&self) -> usize {
        self.net.n_params()
    }

    /// Parameter + activation memory estimate in bytes for a sequence of
    /// `seq_len` tokens (Fig. 11).
    pub fn memory_bytes(&self, seq_len: usize) -> usize {
        self.net.memory_bytes(seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic ground truth: performance = fraction of a marker token.
    fn perf_of(seq: &[usize]) -> f64 {
        seq.iter().filter(|&&t| t == 3).count() as f64 / seq.len() as f64
    }

    fn training_data(seed: u64) -> Vec<Vec<usize>> {
        let mut rng = fastft_nn::init::rng(seed);
        (0..30)
            .map(|_| {
                let len = rng.gen_range(4..12);
                (0..len).map(|_| rng.gen_range(0..10usize)).collect()
            })
            .collect()
    }

    #[test]
    fn predictor_learns_sequence_scores() {
        let mut p = PerformancePredictor::new(
            10,
            PredictorConfig { dim: 16, lr: 5e-3, ..PredictorConfig::default() },
            1,
        );
        let data = training_data(2);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..40 {
            let mut total = 0.0;
            for seq in &data {
                total += p.train_step(seq, perf_of(seq));
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < 0.3 * first, "first {first}, last {last}");
    }

    #[test]
    fn predict_is_deterministic() {
        let p = PerformancePredictor::new(8, PredictorConfig::default(), 3);
        assert_eq!(p.predict(&[1, 2, 3]), p.predict(&[1, 2, 3]));
    }

    #[test]
    fn save_load_round_trips() {
        let cfg = PredictorConfig { dim: 16, ..PredictorConfig::default() };
        let mut trained = PerformancePredictor::new(10, cfg, 1);
        for seq in training_data(2).iter().take(10) {
            trained.train_step(seq, perf_of(seq));
        }
        let state = trained.save_state();
        let mut fresh = PerformancePredictor::new(10, cfg, 9);
        assert_ne!(fresh.predict(&[1, 2, 3]), trained.predict(&[1, 2, 3]));
        fresh.load_state(&state).unwrap();
        assert_eq!(fresh.predict(&[1, 2, 3]), trained.predict(&[1, 2, 3]));
        // Subsequent training stays bitwise aligned (optimiser state too).
        assert_eq!(fresh.train_step(&[1, 2, 3], 0.5), trained.train_step(&[1, 2, 3], 0.5));
        assert_eq!(fresh.predict(&[3, 3]), trained.predict(&[3, 3]));
        assert!(fresh.params_finite());
    }

    #[test]
    fn memory_reporting_positive_and_monotone() {
        let p = PerformancePredictor::new(20, PredictorConfig::default(), 4);
        assert!(p.n_params() > 0);
        assert!(p.memory_bytes(50) > p.memory_bytes(5));
    }
}
