//! Crash-safe run checkpoints: a versioned, dependency-free binary
//! snapshot of every piece of engine state that influences the remainder
//! of a run.
//!
//! The engine writes a checkpoint at episode boundaries
//! ([`FastFtConfig::checkpoint_every`]) and
//! [`FastFt::resume`](crate::engine::FastFt::resume) continues a killed
//! run **bitwise identically** to an uninterrupted one: agent/predictor/
//! estimator weights and optimiser moments, the replay buffer (slot
//! order, priorities, write cursor), the RNG stream position, the memo-cache
//! contents in recency order, percentile histories and Welford novelty
//! stats, the best-so-far feature set and the full telemetry counters all
//! round-trip through the file. Wall-time-only state (the encoder prefix
//! caches) is deliberately *not* captured — it is rebuilt cold, which
//! changes `prefix_hits`/`prefix_misses` but never a score.
//!
//! Format: magic `FFTCKPT1`, a `u32` version, then the configuration and
//! snapshot in a little-endian binary layout (`f64` as IEEE-754 bits, so
//! floats survive exactly). Files are written to a temporary sibling and
//! atomically renamed into place, so a crash mid-write never corrupts the
//! previous checkpoint.
//!
//! [`FastFtConfig::checkpoint_every`]: crate::config::FastFtConfig::checkpoint_every

use crate::agents::{AgentsState, Decision, MemoryUnit};
use crate::config::FastFtConfig;
use crate::engine::{StepRecord, Telemetry};
use crate::scoring::{ScoreStats, BATCH_HIST_BUCKETS};
use fastft_ml::{Evaluator, ModelKind, SplitMethod};
use fastft_nn::{EncoderKind, NetState};
use fastft_rl::{QAgentState, QKind};
use fastft_tabular::metrics::Metric;
use fastft_tabular::{Dataset, FastFtError, FastFtResult, TaskType};
use std::path::Path;

/// File magic: identifies a FASTFT checkpoint.
pub const MAGIC: [u8; 8] = *b"FFTCKPT1";
/// Current format version. Bumped on any layout change; older readers
/// reject newer files with a typed error instead of misparsing them.
pub const VERSION: u32 = 1;

/// Replay-buffer contents in slot order, matching the configured variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayState {
    /// Prioritized ring buffer (the paper's default).
    Prioritized {
        /// Buffer capacity.
        capacity: usize,
        /// Ring write cursor.
        write: usize,
        /// Stored memories in slot order.
        items: Vec<MemoryUnit>,
        /// Slot priorities (`|δ| + ε`), parallel to `items`.
        priorities: Vec<f64>,
    },
    /// Uniform FIFO buffer (FASTFT⁻ᴿᶜᵀ).
    Uniform {
        /// Buffer capacity.
        capacity: usize,
        /// Ring write cursor.
        write: usize,
        /// Stored memories in slot order.
        items: Vec<MemoryUnit>,
    },
}

/// Everything the engine needs to continue a run from an episode boundary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Fingerprint of the dataset the run was fitted on (shape, task,
    /// column names, value bits) — resume rejects a different dataset.
    pub data_fingerprint: u64,
    /// First episode the resumed run should execute.
    pub next_episode: usize,
    /// Global step counter (novelty-weight decay position).
    pub global_step: usize,
    /// Downstream score of the original feature set.
    pub base_score: f64,
    /// Best downstream-evaluated score so far.
    pub best_score: f64,
    /// Expressions of the best feature set (re-parsed on load).
    pub best_exprs: Vec<String>,
    /// Column values of the best feature set, parallel to `best_exprs`.
    pub best_columns: Vec<Vec<f64>>,
    /// Per-step trace so far.
    pub records: Vec<StepRecord>,
    /// Best-so-far score after each completed episode.
    pub episode_best: Vec<f64>,
    /// Telemetry counters and accumulated wall times at the boundary.
    pub telemetry: Telemetry,
    /// xoshiro256++ state of the run RNG.
    pub rng: [u64; 4],
    /// Cascading-agent weights (framework-matched).
    pub agents: AgentsState,
    /// Performance-predictor weights + optimiser state.
    pub predictor: NetState,
    /// Novelty-estimator weights (the frozen target is rebuilt from the
    /// seed).
    pub novelty: NetState,
    /// Replay-buffer contents.
    pub replay: ReplayState,
    /// Novelty-tracker embeddings in observation order.
    pub tracker_history: Vec<Vec<f64>>,
    /// Novelty-tracker canonical keys (sorted for determinism).
    pub tracker_seen: Vec<String>,
    /// Downstream memo cache, least recently used first.
    pub eval_cache: Vec<(String, f64)>,
    /// Downstream-evaluated (sequence, score) training pairs.
    pub eval_history: Vec<(Vec<usize>, f64)>,
    /// Predicted-performance history (α-percentile trigger).
    pub pred_history: Vec<f64>,
    /// Raw-novelty history (β-percentile trigger).
    pub nov_history: Vec<f64>,
    /// Welford count of raw novelty observations.
    pub nov_count: usize,
    /// Welford running mean.
    pub nov_mean: f64,
    /// Welford running sum of squared deviations.
    pub nov_m2: f64,
    /// Prefix-cache/batching counters accumulated before the boundary
    /// (fresh caches start from zero after resume and are merged on top).
    pub stats_baseline: ScoreStats,
    /// Quarantined candidate keys, least recently used first.
    pub quarantine: Vec<String>,
}

/// FNV-1a fingerprint of a dataset's identity: shape, task, class count,
/// column names and the exact bits of every value and target. The dataset
/// *name* is deliberately excluded so a renamed copy still resumes.
pub fn dataset_fingerprint(data: &Dataset) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(data.n_rows() as u64);
    h.write_u64(data.n_features() as u64);
    h.write_u64(match data.task {
        TaskType::Classification => 0,
        TaskType::Regression => 1,
        TaskType::Detection => 2,
    });
    h.write_u64(data.n_classes as u64);
    for c in &data.features {
        h.write_bytes(c.name.as_bytes());
        for &v in &c.values {
            h.write_u64(v.to_bits());
        }
    }
    for &t in &data.targets {
        h.write_u64(t.to_bits());
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Binary primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    fn vec_vec_f64(&mut self, v: &[Vec<f64>]) {
        self.usize(v.len());
        for x in v {
            self.vec_f64(x);
        }
    }

    fn vec_usize(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Res<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Res<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {} (wanted {} more)", self.pos, n))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Res<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Res<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Res<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Res<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} exceeds platform usize"))
    }

    /// A length that bounds an upcoming allocation. Each element occupies
    /// at least one byte in the stream, so any honest length is bounded by
    /// the remaining input — rejecting larger values stops a corrupt
    /// header from triggering a huge allocation.
    fn len(&mut self) -> Res<usize> {
        let v = self.usize()?;
        if v > self.buf.len() - self.pos {
            return Err(format!("length {v} exceeds remaining input"));
        }
        Ok(v)
    }

    fn f64(&mut self) -> Res<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Res<bool> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> Res<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    fn vec_f64(&mut self) -> Res<Vec<f64>> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn vec_vec_f64(&mut self) -> Res<Vec<Vec<f64>>> {
        let n = self.len()?;
        (0..n).map(|_| self.vec_f64()).collect()
    }

    fn vec_usize(&mut self) -> Res<Vec<usize>> {
        let n = self.len()?;
        (0..n).map(|_| self.usize()).collect()
    }
}

// ---------------------------------------------------------------------------
// Component encodings
// ---------------------------------------------------------------------------

fn put_config(w: &mut Writer, cfg: &FastFtConfig) {
    w.usize(cfg.episodes);
    w.usize(cfg.steps_per_episode);
    w.usize(cfg.cold_start_episodes);
    w.usize(cfg.retrain_every);
    w.usize(cfg.retrain_epochs);
    w.f64(cfg.alpha);
    w.f64(cfg.beta);
    w.f64(cfg.eps_start);
    w.f64(cfg.eps_end);
    w.f64(cfg.decay_m);
    w.usize(cfg.memory_size);
    w.f64(cfg.gamma);
    w.f64(cfg.lr);
    w.f64(cfg.agent_lr);
    w.usize(cfg.agent_hidden);
    w.f64(cfg.max_features_factor);
    w.usize(cfg.max_features_cap);
    w.usize(cfg.max_new_per_step);
    w.usize(cfg.max_seq_len);
    w.f64(cfg.cluster_threshold);
    w.usize(cfg.mi_bins);
    put_evaluator(w, &cfg.evaluator);
    w.usize(cfg.eval_cache_capacity);
    w.bool(cfg.batched_scoring);
    w.usize(cfg.prefix_cache_capacity);
    w.usize(cfg.minibatch);
    w.u64(cfg.seed);
    w.bool(cfg.use_predictor);
    w.bool(cfg.use_novelty);
    w.bool(cfg.prioritized_replay);
    put_encoder(w, cfg.encoder);
    put_rl(w, cfg.rl);
    w.usize(cfg.threads);
    w.usize(cfg.checkpoint_every);
    match &cfg.checkpoint_path {
        Some(p) => {
            w.bool(true);
            w.str(&p.display().to_string());
        }
        None => w.bool(false),
    }
    w.f64(cfg.max_wall_secs);
    w.usize(cfg.max_downstream_evals);
    w.usize(cfg.eval_retries);
}

fn get_config(r: &mut Reader) -> Res<FastFtConfig> {
    Ok(FastFtConfig {
        episodes: r.usize()?,
        steps_per_episode: r.usize()?,
        cold_start_episodes: r.usize()?,
        retrain_every: r.usize()?,
        retrain_epochs: r.usize()?,
        alpha: r.f64()?,
        beta: r.f64()?,
        eps_start: r.f64()?,
        eps_end: r.f64()?,
        decay_m: r.f64()?,
        memory_size: r.usize()?,
        gamma: r.f64()?,
        lr: r.f64()?,
        agent_lr: r.f64()?,
        agent_hidden: r.usize()?,
        max_features_factor: r.f64()?,
        max_features_cap: r.usize()?,
        max_new_per_step: r.usize()?,
        max_seq_len: r.usize()?,
        cluster_threshold: r.f64()?,
        mi_bins: r.usize()?,
        evaluator: get_evaluator(r)?,
        eval_cache_capacity: r.usize()?,
        batched_scoring: r.bool()?,
        prefix_cache_capacity: r.usize()?,
        minibatch: r.usize()?,
        seed: r.u64()?,
        use_predictor: r.bool()?,
        use_novelty: r.bool()?,
        prioritized_replay: r.bool()?,
        encoder: get_encoder(r)?,
        rl: get_rl(r)?,
        threads: r.usize()?,
        checkpoint_every: r.usize()?,
        checkpoint_path: if r.bool()? { Some(r.str()?.into()) } else { None },
        max_wall_secs: r.f64()?,
        max_downstream_evals: r.usize()?,
        eval_retries: r.usize()?,
    })
}

fn put_evaluator(w: &mut Writer, ev: &Evaluator) {
    w.u8(match ev.model {
        ModelKind::RandomForest => 0,
        ModelKind::GradientBoosting => 1,
        ModelKind::DecisionTree => 2,
        ModelKind::Logistic => 3,
        ModelKind::Ridge => 4,
        ModelKind::LinearSvm => 5,
        ModelKind::Knn => 6,
    });
    match ev.metric {
        None => w.u8(255),
        Some(m) => w.u8(match m {
            Metric::F1 => 0,
            Metric::Precision => 1,
            Metric::Recall => 2,
            Metric::Accuracy => 3,
            Metric::OneMinusRae => 4,
            Metric::OneMinusMae => 5,
            Metric::OneMinusMse => 6,
            Metric::Auc => 7,
        }),
    }
    w.usize(ev.folds);
    w.u64(ev.seed);
    match ev.split_method {
        SplitMethod::Exact => {
            w.u8(0);
            w.u32(0);
        }
        SplitMethod::Histogram { max_bins } => {
            w.u8(1);
            w.u32(u32::from(max_bins));
        }
    }
    // `fault_plan` is a test-only hook with process-local state; it is
    // never persisted. `FastFt::resume_with` can reattach one.
}

fn get_evaluator(r: &mut Reader) -> Res<Evaluator> {
    let model = match r.u8()? {
        0 => ModelKind::RandomForest,
        1 => ModelKind::GradientBoosting,
        2 => ModelKind::DecisionTree,
        3 => ModelKind::Logistic,
        4 => ModelKind::Ridge,
        5 => ModelKind::LinearSvm,
        6 => ModelKind::Knn,
        t => return Err(format!("unknown model tag {t}")),
    };
    let metric = match r.u8()? {
        255 => None,
        0 => Some(Metric::F1),
        1 => Some(Metric::Precision),
        2 => Some(Metric::Recall),
        3 => Some(Metric::Accuracy),
        4 => Some(Metric::OneMinusRae),
        5 => Some(Metric::OneMinusMae),
        6 => Some(Metric::OneMinusMse),
        7 => Some(Metric::Auc),
        t => return Err(format!("unknown metric tag {t}")),
    };
    let folds = r.usize()?;
    let seed = r.u64()?;
    let split_method = match (r.u8()?, r.u32()?) {
        (0, _) => SplitMethod::Exact,
        (1, bins) => SplitMethod::Histogram {
            max_bins: u16::try_from(bins).map_err(|_| format!("max_bins {bins} out of range"))?,
        },
        (t, _) => return Err(format!("unknown split-method tag {t}")),
    };
    Ok(Evaluator { model, metric, folds, seed, split_method, fault_plan: None })
}

fn put_encoder(w: &mut Writer, e: EncoderKind) {
    match e {
        EncoderKind::Lstm { layers } => {
            w.u8(0);
            w.usize(layers);
            w.usize(0);
        }
        EncoderKind::Rnn { layers } => {
            w.u8(1);
            w.usize(layers);
            w.usize(0);
        }
        EncoderKind::Gru { layers } => {
            w.u8(2);
            w.usize(layers);
            w.usize(0);
        }
        EncoderKind::Transformer { heads, blocks } => {
            w.u8(3);
            w.usize(heads);
            w.usize(blocks);
        }
    }
}

fn get_encoder(r: &mut Reader) -> Res<EncoderKind> {
    let (tag, a, b) = (r.u8()?, r.usize()?, r.usize()?);
    Ok(match tag {
        0 => EncoderKind::Lstm { layers: a },
        1 => EncoderKind::Rnn { layers: a },
        2 => EncoderKind::Gru { layers: a },
        3 => EncoderKind::Transformer { heads: a, blocks: b },
        t => return Err(format!("unknown encoder tag {t}")),
    })
}

fn put_rl(w: &mut Writer, rl: crate::agents::RlKind) {
    use crate::agents::RlKind;
    match rl {
        RlKind::ActorCritic => {
            w.u8(0);
            w.u8(0);
        }
        RlKind::Q(q) => {
            w.u8(1);
            w.u8(match q {
                QKind::Dqn => 0,
                QKind::DoubleDqn => 1,
                QKind::DuelingDqn => 2,
                QKind::DuelingDoubleDqn => 3,
            });
        }
    }
}

fn get_rl(r: &mut Reader) -> Res<crate::agents::RlKind> {
    use crate::agents::RlKind;
    let (tag, q) = (r.u8()?, r.u8()?);
    Ok(match tag {
        0 => RlKind::ActorCritic,
        1 => RlKind::Q(match q {
            0 => QKind::Dqn,
            1 => QKind::DoubleDqn,
            2 => QKind::DuelingDqn,
            3 => QKind::DuelingDoubleDqn,
            t => return Err(format!("unknown q-kind tag {t}")),
        }),
        t => return Err(format!("unknown rl tag {t}")),
    })
}

fn put_net(w: &mut Writer, n: &NetState) {
    w.vec_vec_f64(&n.params);
    w.u64(n.opt_t);
    w.vec_vec_f64(&n.opt_m);
    w.vec_vec_f64(&n.opt_v);
}

fn get_net(r: &mut Reader) -> Res<NetState> {
    Ok(NetState {
        params: r.vec_vec_f64()?,
        opt_t: r.u64()?,
        opt_m: r.vec_vec_f64()?,
        opt_v: r.vec_vec_f64()?,
    })
}

fn put_qagent(w: &mut Writer, q: &QAgentState) {
    put_net(w, &q.online);
    w.vec_vec_f64(&q.target);
    w.u64(q.updates);
}

fn get_qagent(r: &mut Reader) -> Res<QAgentState> {
    Ok(QAgentState { online: get_net(r)?, target: r.vec_vec_f64()?, updates: r.u64()? })
}

fn put_agents(w: &mut Writer, a: &AgentsState) {
    match a {
        AgentsState::Ac { head, op, tail, critic } => {
            w.u8(0);
            put_net(w, head);
            put_net(w, op);
            put_net(w, tail);
            put_net(w, critic);
        }
        AgentsState::Q { head, op, tail, eps_step } => {
            w.u8(1);
            put_qagent(w, head);
            put_qagent(w, op);
            put_qagent(w, tail);
            w.u64(*eps_step);
        }
    }
}

fn get_agents(r: &mut Reader) -> Res<AgentsState> {
    Ok(match r.u8()? {
        0 => AgentsState::Ac {
            head: get_net(r)?,
            op: get_net(r)?,
            tail: get_net(r)?,
            critic: get_net(r)?,
        },
        1 => AgentsState::Q {
            head: get_qagent(r)?,
            op: get_qagent(r)?,
            tail: get_qagent(r)?,
            eps_step: r.u64()?,
        },
        t => return Err(format!("unknown agents tag {t}")),
    })
}

fn put_decision(w: &mut Writer, d: &Decision) {
    w.vec_vec_f64(&d.candidates);
    w.usize(d.action);
}

fn get_decision(r: &mut Reader) -> Res<Decision> {
    Ok(Decision { candidates: r.vec_vec_f64()?, action: r.usize()? })
}

fn put_memory_unit(w: &mut Writer, m: &MemoryUnit) {
    w.vec_f64(&m.state);
    w.vec_f64(&m.next_state);
    w.f64(m.reward);
    put_decision(w, &m.head);
    put_decision(w, &m.op);
    match &m.tail {
        Some(t) => {
            w.bool(true);
            put_decision(w, t);
        }
        None => w.bool(false),
    }
    w.vec_vec_f64(&m.next_head_candidates);
    w.vec_usize(&m.seq);
    w.f64(m.perf);
}

fn get_memory_unit(r: &mut Reader) -> Res<MemoryUnit> {
    Ok(MemoryUnit {
        state: r.vec_f64()?,
        next_state: r.vec_f64()?,
        reward: r.f64()?,
        head: get_decision(r)?,
        op: get_decision(r)?,
        tail: if r.bool()? { Some(get_decision(r)?) } else { None },
        next_head_candidates: r.vec_vec_f64()?,
        seq: r.vec_usize()?,
        perf: r.f64()?,
    })
}

fn put_replay(w: &mut Writer, rep: &ReplayState) {
    match rep {
        ReplayState::Prioritized { capacity, write, items, priorities } => {
            w.u8(0);
            w.usize(*capacity);
            w.usize(*write);
            w.usize(items.len());
            for m in items {
                put_memory_unit(w, m);
            }
            w.vec_f64(priorities);
        }
        ReplayState::Uniform { capacity, write, items } => {
            w.u8(1);
            w.usize(*capacity);
            w.usize(*write);
            w.usize(items.len());
            for m in items {
                put_memory_unit(w, m);
            }
        }
    }
}

fn get_replay(r: &mut Reader) -> Res<ReplayState> {
    let tag = r.u8()?;
    let capacity = r.usize()?;
    let write = r.usize()?;
    let n = r.len()?;
    let items: Vec<MemoryUnit> = (0..n).map(|_| get_memory_unit(r)).collect::<Res<_>>()?;
    let rep = match tag {
        0 => ReplayState::Prioritized { capacity, write, items, priorities: r.vec_f64()? },
        1 => ReplayState::Uniform { capacity, write, items },
        t => return Err(format!("unknown replay tag {t}")),
    };
    // Catch internal inconsistencies here so `from_parts` never panics on
    // a corrupt file.
    let (cap, wr, len, prios) = match &rep {
        ReplayState::Prioritized { capacity, write, items, priorities } => {
            (*capacity, *write, items.len(), Some(priorities.len()))
        }
        ReplayState::Uniform { capacity, write, items } => (*capacity, *write, items.len(), None),
    };
    if cap == 0 || len > cap || wr >= cap || prios.is_some_and(|p| p != len) {
        return Err(format!("inconsistent replay buffer (capacity {cap}, write {wr}, len {len})"));
    }
    Ok(rep)
}

fn put_step_record(w: &mut Writer, rec: &StepRecord) {
    w.usize(rec.episode);
    w.usize(rec.step);
    w.f64(rec.reward);
    w.f64(rec.score);
    w.bool(rec.predicted);
    w.f64(rec.novelty);
    w.f64(rec.novelty_distance);
    w.bool(rec.new_combination);
    w.usize(rec.n_features);
    w.usize(rec.new_exprs.len());
    for e in &rec.new_exprs {
        w.str(e);
    }
}

fn get_step_record(r: &mut Reader) -> Res<StepRecord> {
    Ok(StepRecord {
        episode: r.usize()?,
        step: r.usize()?,
        reward: r.f64()?,
        score: r.f64()?,
        predicted: r.bool()?,
        novelty: r.f64()?,
        novelty_distance: r.f64()?,
        new_combination: r.bool()?,
        n_features: r.usize()?,
        new_exprs: {
            let n = r.len()?;
            (0..n).map(|_| r.str()).collect::<Res<_>>()?
        },
    })
}

fn put_telemetry(w: &mut Writer, t: &Telemetry) {
    w.f64(t.optimization_secs);
    w.f64(t.estimation_secs);
    w.f64(t.evaluation_secs);
    w.f64(t.total_secs);
    w.usize(t.downstream_evals);
    w.usize(t.predictor_calls);
    w.usize(t.cache_hits);
    w.usize(t.cache_evictions);
    w.f64(t.predictor_secs);
    w.f64(t.novelty_secs);
    w.u64(t.prefix_hits);
    w.u64(t.prefix_misses);
    w.u64(t.prefix_evictions);
    w.u64(t.score_batches);
    for &b in &t.batch_size_hist {
        w.u64(b);
    }
    w.usize(t.eval_faults);
    w.usize(t.quarantined);
    w.usize(t.weight_rollbacks);
}

fn get_telemetry(r: &mut Reader) -> Res<Telemetry> {
    let mut t = Telemetry {
        optimization_secs: r.f64()?,
        estimation_secs: r.f64()?,
        evaluation_secs: r.f64()?,
        total_secs: r.f64()?,
        downstream_evals: r.usize()?,
        predictor_calls: r.usize()?,
        cache_hits: r.usize()?,
        cache_evictions: r.usize()?,
        predictor_secs: r.f64()?,
        novelty_secs: r.f64()?,
        prefix_hits: r.u64()?,
        prefix_misses: r.u64()?,
        prefix_evictions: r.u64()?,
        score_batches: r.u64()?,
        ..Telemetry::default()
    };
    for b in &mut t.batch_size_hist {
        *b = r.u64()?;
    }
    t.eval_faults = r.usize()?;
    t.quarantined = r.usize()?;
    t.weight_rollbacks = r.usize()?;
    Ok(t)
}

fn put_stats(w: &mut Writer, s: &ScoreStats) {
    w.u64(s.prefix_hits);
    w.u64(s.prefix_misses);
    w.u64(s.evictions);
    w.u64(s.batches);
    for &b in &s.batch_hist {
        w.u64(b);
    }
}

fn get_stats(r: &mut Reader) -> Res<ScoreStats> {
    let mut s = ScoreStats {
        prefix_hits: r.u64()?,
        prefix_misses: r.u64()?,
        evictions: r.u64()?,
        batches: r.u64()?,
        batch_hist: [0; BATCH_HIST_BUCKETS],
    };
    for b in &mut s.batch_hist {
        *b = r.u64()?;
    }
    Ok(s)
}

fn put_snapshot(w: &mut Writer, s: &Snapshot) {
    w.u64(s.data_fingerprint);
    w.usize(s.next_episode);
    w.usize(s.global_step);
    w.f64(s.base_score);
    w.f64(s.best_score);
    w.usize(s.best_exprs.len());
    for e in &s.best_exprs {
        w.str(e);
    }
    w.vec_vec_f64(&s.best_columns);
    w.usize(s.records.len());
    for rec in &s.records {
        put_step_record(w, rec);
    }
    w.vec_f64(&s.episode_best);
    put_telemetry(w, &s.telemetry);
    for &x in &s.rng {
        w.u64(x);
    }
    put_agents(w, &s.agents);
    put_net(w, &s.predictor);
    put_net(w, &s.novelty);
    put_replay(w, &s.replay);
    w.vec_vec_f64(&s.tracker_history);
    w.usize(s.tracker_seen.len());
    for k in &s.tracker_seen {
        w.str(k);
    }
    w.usize(s.eval_cache.len());
    for (k, v) in &s.eval_cache {
        w.str(k);
        w.f64(*v);
    }
    w.usize(s.eval_history.len());
    for (seq, v) in &s.eval_history {
        w.vec_usize(seq);
        w.f64(*v);
    }
    w.vec_f64(&s.pred_history);
    w.vec_f64(&s.nov_history);
    w.usize(s.nov_count);
    w.f64(s.nov_mean);
    w.f64(s.nov_m2);
    put_stats(w, &s.stats_baseline);
    w.usize(s.quarantine.len());
    for k in &s.quarantine {
        w.str(k);
    }
}

fn get_snapshot(r: &mut Reader) -> Res<Snapshot> {
    Ok(Snapshot {
        data_fingerprint: r.u64()?,
        next_episode: r.usize()?,
        global_step: r.usize()?,
        base_score: r.f64()?,
        best_score: r.f64()?,
        best_exprs: {
            let n = r.len()?;
            (0..n).map(|_| r.str()).collect::<Res<_>>()?
        },
        best_columns: r.vec_vec_f64()?,
        records: {
            let n = r.len()?;
            (0..n).map(|_| get_step_record(r)).collect::<Res<_>>()?
        },
        episode_best: r.vec_f64()?,
        telemetry: get_telemetry(r)?,
        rng: {
            let mut s = [0u64; 4];
            for x in &mut s {
                *x = r.u64()?;
            }
            s
        },
        agents: get_agents(r)?,
        predictor: get_net(r)?,
        novelty: get_net(r)?,
        replay: get_replay(r)?,
        tracker_history: r.vec_vec_f64()?,
        tracker_seen: {
            let n = r.len()?;
            (0..n).map(|_| r.str()).collect::<Res<_>>()?
        },
        eval_cache: {
            let n = r.len()?;
            (0..n).map(|_| Ok((r.str()?, r.f64()?))).collect::<Res<_>>()?
        },
        eval_history: {
            let n = r.len()?;
            (0..n).map(|_| Ok((r.vec_usize()?, r.f64()?))).collect::<Res<_>>()?
        },
        pred_history: r.vec_f64()?,
        nov_history: r.vec_f64()?,
        nov_count: r.usize()?,
        nov_mean: r.f64()?,
        nov_m2: r.f64()?,
        stats_baseline: get_stats(r)?,
        quarantine: {
            let n = r.len()?;
            (0..n).map(|_| r.str()).collect::<Res<_>>()?
        },
    })
}

// ---------------------------------------------------------------------------
// Public file API
// ---------------------------------------------------------------------------

/// Serialise a configuration + snapshot to the versioned binary format.
pub fn encode(cfg: &FastFtConfig, snap: &Snapshot) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(VERSION);
    put_config(&mut w, cfg);
    put_snapshot(&mut w, snap);
    w.buf
}

/// Parse bytes produced by [`encode`], verifying magic and version.
pub fn decode(bytes: &[u8]) -> FastFtResult<(FastFtConfig, Snapshot)> {
    let mut r = Reader::new(bytes);
    let run = |r: &mut Reader| -> Res<(FastFtConfig, Snapshot)> {
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err("not a FASTFT checkpoint (bad magic)".into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version} (expected {VERSION})"));
        }
        let cfg = get_config(r)?;
        let snap = get_snapshot(r)?;
        if r.pos != r.buf.len() {
            return Err(format!("{} trailing bytes after snapshot", r.buf.len() - r.pos));
        }
        Ok((cfg, snap))
    };
    run(&mut r).map_err(|e| FastFtError::Parse(format!("checkpoint: {e}")))
}

/// Write a checkpoint atomically: encode, write to a `.tmp` sibling, then
/// rename over `path`. A crash mid-write leaves any previous checkpoint
/// intact.
pub fn write(path: &Path, cfg: &FastFtConfig, snap: &Snapshot) -> FastFtResult<()> {
    let bytes = encode(cfg, snap);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| FastFtError::io(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| FastFtError::io(path, &e))
}

/// Read and parse a checkpoint file.
pub fn read(path: &Path) -> FastFtResult<(FastFtConfig, Snapshot)> {
    let bytes = std::fs::read(path).map_err(|e| FastFtError::io(path, &e))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{CLUSTER_REP_DIM, HEAD_DIM, OP_DIM};

    fn sample_net() -> NetState {
        NetState {
            params: vec![vec![0.5, -0.25], vec![1.0]],
            opt_t: 3,
            opt_m: vec![vec![0.1, 0.2], vec![0.3]],
            opt_v: vec![vec![0.01, 0.02], vec![0.03]],
        }
    }

    fn sample_snapshot() -> Snapshot {
        let mem = MemoryUnit {
            state: vec![0.0; CLUSTER_REP_DIM],
            next_state: vec![1.0; CLUSTER_REP_DIM],
            reward: 0.25,
            head: Decision { candidates: vec![vec![0.1; HEAD_DIM]], action: 0 },
            op: Decision { candidates: vec![vec![0.2; OP_DIM]; 2], action: 1 },
            tail: None,
            next_head_candidates: vec![],
            seq: vec![1, 2, 3],
            perf: 0.75,
        };
        Snapshot {
            data_fingerprint: 0xDEAD_BEEF,
            next_episode: 2,
            global_step: 8,
            base_score: 0.6,
            best_score: 0.7,
            best_exprs: vec!["f0".into(), "(f0*f1)".into()],
            best_columns: vec![vec![1.0, 2.0], vec![2.0, 6.0]],
            records: vec![StepRecord {
                episode: 0,
                step: 0,
                reward: 0.1,
                score: 0.65,
                predicted: false,
                novelty: 0.3,
                novelty_distance: 1.0,
                new_combination: true,
                n_features: 3,
                new_exprs: vec!["sq(f0)".into()],
            }],
            episode_best: vec![0.65, 0.7],
            telemetry: Telemetry {
                downstream_evals: 9,
                cache_hits: 2,
                eval_faults: 1,
                quarantined: 1,
                total_secs: 1.25,
                ..Telemetry::default()
            },
            rng: [1, 2, 3, 4],
            agents: AgentsState::Ac {
                head: sample_net(),
                op: sample_net(),
                tail: sample_net(),
                critic: sample_net(),
            },
            predictor: sample_net(),
            novelty: sample_net(),
            replay: ReplayState::Prioritized {
                capacity: 16,
                write: 1,
                items: vec![mem],
                priorities: vec![0.251],
            },
            tracker_history: vec![vec![0.1, 0.2]],
            tracker_seen: vec!["a".into(), "b".into()],
            eval_cache: vec![("k1".into(), 0.6), ("k2".into(), 0.7)],
            eval_history: vec![(vec![1, 2], 0.6)],
            pred_history: vec![0.5, 0.6],
            nov_history: vec![0.2],
            nov_count: 3,
            nov_mean: 0.4,
            nov_m2: 0.02,
            stats_baseline: ScoreStats { batches: 4, ..ScoreStats::default() },
            quarantine: vec!["bad-key".into()],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cfg = FastFtConfig::quick();
        let snap = sample_snapshot();
        let bytes = encode(&cfg, &snap);
        let (cfg2, snap2) = decode(&bytes).unwrap();
        assert_eq!(cfg2.episodes, cfg.episodes);
        assert_eq!(cfg2.seed, cfg.seed);
        assert_eq!(cfg2.evaluator.folds, cfg.evaluator.folds);
        assert_eq!(snap2.data_fingerprint, snap.data_fingerprint);
        assert_eq!(snap2.best_exprs, snap.best_exprs);
        assert_eq!(snap2.best_columns, snap.best_columns);
        assert_eq!(snap2.rng, snap.rng);
        assert_eq!(snap2.agents, snap.agents);
        assert_eq!(snap2.predictor, snap.predictor);
        assert_eq!(snap2.replay, snap.replay);
        assert_eq!(snap2.eval_cache, snap.eval_cache);
        assert_eq!(snap2.quarantine, snap.quarantine);
        assert_eq!(snap2.telemetry.downstream_evals, 9);
        assert_eq!(snap2.telemetry.eval_faults, 1);
        assert_eq!(snap2.stats_baseline, snap.stats_baseline);
        assert_eq!(snap2.nov_m2.to_bits(), snap.nov_m2.to_bits());
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let cfg = FastFtConfig::quick();
        let snap = sample_snapshot();
        let mut bytes = encode(&cfg, &snap);
        assert!(matches!(decode(b"not a checkpoint"), Err(FastFtError::Parse(_))));
        bytes[8] = 99; // clobber the version field
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn decode_rejects_truncation_anywhere() {
        let bytes = encode(&FastFtConfig::quick(), &sample_snapshot());
        // Every strict prefix must fail cleanly, never panic.
        for cut in [10, 50, 200, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode(&long).is_err());
    }

    #[test]
    fn fingerprint_tracks_content_not_name() {
        use fastft_tabular::dataset::Column;
        let d1 = Dataset::new(
            "a",
            vec![Column::new("x", vec![1.0, 2.0])],
            vec![0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap();
        let mut renamed = d1.clone();
        renamed.name = "b".into();
        assert_eq!(dataset_fingerprint(&d1), dataset_fingerprint(&renamed));
        let mut changed = d1.clone();
        changed.features[0].values[1] = 2.0000001;
        assert_ne!(dataset_fingerprint(&d1), dataset_fingerprint(&changed));
        let mut recol = d1.clone();
        recol.features[0].name = "y".into();
        assert_ne!(dataset_fingerprint(&d1), dataset_fingerprint(&recol));
    }

    #[test]
    fn q_and_uniform_variants_round_trip() {
        let mut cfg = FastFtConfig::quick();
        cfg.rl = crate::agents::RlKind::Q(QKind::DuelingDoubleDqn);
        cfg.prioritized_replay = false;
        cfg.encoder = EncoderKind::Transformer { heads: 2, blocks: 1 };
        cfg.evaluator.metric = Some(Metric::Auc);
        cfg.evaluator.split_method = SplitMethod::Exact;
        cfg.checkpoint_path = Some("x.ckpt".into());
        let mut snap = sample_snapshot();
        snap.agents = AgentsState::Q {
            head: QAgentState { online: sample_net(), target: vec![vec![1.0]], updates: 5 },
            op: QAgentState::default(),
            tail: QAgentState::default(),
            eps_step: 17,
        };
        snap.replay = ReplayState::Uniform { capacity: 8, write: 0, items: vec![] };
        let (cfg2, snap2) = decode(&encode(&cfg, &snap)).unwrap();
        assert_eq!(cfg2.rl, cfg.rl);
        assert_eq!(cfg2.encoder, cfg.encoder);
        assert_eq!(cfg2.evaluator.metric, Some(Metric::Auc));
        assert_eq!(cfg2.checkpoint_path.as_deref(), Some(std::path::Path::new("x.ckpt")));
        assert_eq!(snap2.agents, snap.agents);
        assert_eq!(snap2.replay, snap.replay);
    }

    #[test]
    fn write_read_round_trips_on_disk() {
        let path =
            std::env::temp_dir().join(format!("fastft-ckpt-test-{}.bin", std::process::id()));
        let cfg = FastFtConfig::quick();
        let snap = sample_snapshot();
        write(&path, &cfg, &snap).unwrap();
        let (_, snap2) = read(&path).unwrap();
        assert_eq!(snap2.best_exprs, snap.best_exprs);
        // The temporary sibling is gone after the rename.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
