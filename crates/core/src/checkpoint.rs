//! Crash-safe run checkpoints: a versioned, dependency-free binary
//! snapshot of every piece of engine state that influences the remainder
//! of a run.
//!
//! The engine writes a checkpoint at episode boundaries
//! ([`FastFtConfig::checkpoint_every`]) and
//! [`FastFt::resume`](crate::engine::FastFt::resume) continues a killed
//! run **bitwise identically** to an uninterrupted one: agent/predictor/
//! estimator weights and optimiser moments, the replay buffer (slot
//! order, priorities, write cursor), the RNG stream position, the memo-cache
//! contents in recency order, percentile histories and Welford novelty
//! stats, the best-so-far feature set and the full telemetry counters all
//! round-trip through the file. Wall-time-only state (the encoder prefix
//! caches) is deliberately *not* captured — it is rebuilt cold, which
//! changes `prefix_hits`/`prefix_misses` but never a score.
//!
//! Format: magic `FFTCKPT1`, a `u32` version, then the configuration and
//! snapshot in the workspace-wide [`Persist`] layout (little-endian, `f64`
//! as IEEE-754 bits, so floats survive exactly). Every component encodes
//! itself next to its own definition — this module only concatenates the
//! pieces, so it never enumerates another component's internals. Files are
//! written to a temporary sibling and atomically renamed into place, so a
//! crash mid-write never corrupts the previous checkpoint.
//!
//! [`FastFtConfig::checkpoint_every`]: crate::config::FastFtConfig::checkpoint_every

use crate::agents::{AgentsState, MemoryUnit};
use crate::config::FastFtConfig;
use crate::engine::{StepRecord, Telemetry};
use crate::scoring::ScoreStats;
use fastft_nn::NetState;
use fastft_tabular::persist::{Persist, PersistResult, Reader, Writer};
use fastft_tabular::{Dataset, FastFtError, FastFtResult, TaskType};
use std::path::Path;

/// File magic: identifies a FASTFT checkpoint.
pub const MAGIC: [u8; 8] = *b"FFTCKPT1";
/// Current format version. Bumped on any layout change; older readers
/// reject newer files with a typed error instead of misparsing them.
pub const VERSION: u32 = 1;

/// Replay-buffer contents in slot order, matching the configured variant —
/// the generic [`fastft_rl::ReplayState`] instantiated with the engine's
/// [`MemoryUnit`].
pub type ReplayState = fastft_rl::ReplayState<MemoryUnit>;

/// Everything the engine needs to continue a run from an episode boundary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Fingerprint of the dataset the run was fitted on (shape, task,
    /// column names, value bits) — resume rejects a different dataset.
    pub data_fingerprint: u64,
    /// First episode the resumed run should execute.
    pub next_episode: usize,
    /// Global step counter (novelty-weight decay position).
    pub global_step: usize,
    /// Downstream score of the original feature set.
    pub base_score: f64,
    /// Best downstream-evaluated score so far.
    pub best_score: f64,
    /// Expressions of the best feature set (re-parsed on load).
    pub best_exprs: Vec<String>,
    /// Column values of the best feature set, parallel to `best_exprs`.
    pub best_columns: Vec<Vec<f64>>,
    /// Per-step trace so far.
    pub records: Vec<StepRecord>,
    /// Best-so-far score after each completed episode.
    pub episode_best: Vec<f64>,
    /// Telemetry counters and accumulated wall times at the boundary.
    pub telemetry: Telemetry,
    /// xoshiro256++ state of the run RNG.
    pub rng: [u64; 4],
    /// Cascading-agent weights (framework-matched).
    pub agents: AgentsState,
    /// Performance-predictor weights + optimiser state.
    pub predictor: NetState,
    /// Novelty-estimator weights (the frozen target is rebuilt from the
    /// seed).
    pub novelty: NetState,
    /// Replay-buffer contents.
    pub replay: ReplayState,
    /// Novelty-tracker embeddings in observation order.
    pub tracker_history: Vec<Vec<f64>>,
    /// Novelty-tracker canonical keys (sorted for determinism).
    pub tracker_seen: Vec<String>,
    /// Downstream memo cache, least recently used first.
    pub eval_cache: Vec<(String, f64)>,
    /// Downstream-evaluated (sequence, score) training pairs.
    pub eval_history: Vec<(Vec<usize>, f64)>,
    /// Predicted-performance history (α-percentile trigger).
    pub pred_history: Vec<f64>,
    /// Raw-novelty history (β-percentile trigger).
    pub nov_history: Vec<f64>,
    /// Welford count of raw novelty observations.
    pub nov_count: usize,
    /// Welford running mean.
    pub nov_mean: f64,
    /// Welford running sum of squared deviations.
    pub nov_m2: f64,
    /// Prefix-cache/batching counters accumulated before the boundary
    /// (fresh caches start from zero after resume and are merged on top).
    pub stats_baseline: ScoreStats,
    /// Quarantined candidate keys, least recently used first.
    pub quarantine: Vec<String>,
}

impl Persist for Snapshot {
    fn persist(&self, w: &mut Writer) {
        // Exhaustive destructure: a new snapshot field refuses to compile
        // until it is persisted here and restored below.
        let Snapshot {
            data_fingerprint,
            next_episode,
            global_step,
            base_score,
            best_score,
            best_exprs,
            best_columns,
            records,
            episode_best,
            telemetry,
            rng,
            agents,
            predictor,
            novelty,
            replay,
            tracker_history,
            tracker_seen,
            eval_cache,
            eval_history,
            pred_history,
            nov_history,
            nov_count,
            nov_mean,
            nov_m2,
            stats_baseline,
            quarantine,
        } = self;
        data_fingerprint.persist(w);
        next_episode.persist(w);
        global_step.persist(w);
        base_score.persist(w);
        best_score.persist(w);
        best_exprs.persist(w);
        best_columns.persist(w);
        records.persist(w);
        episode_best.persist(w);
        telemetry.persist(w);
        rng.persist(w);
        agents.persist(w);
        predictor.persist(w);
        novelty.persist(w);
        replay.persist(w);
        tracker_history.persist(w);
        tracker_seen.persist(w);
        eval_cache.persist(w);
        eval_history.persist(w);
        pred_history.persist(w);
        nov_history.persist(w);
        nov_count.persist(w);
        nov_mean.persist(w);
        nov_m2.persist(w);
        stats_baseline.persist(w);
        quarantine.persist(w);
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(Snapshot {
            data_fingerprint: Persist::restore(r)?,
            next_episode: Persist::restore(r)?,
            global_step: Persist::restore(r)?,
            base_score: Persist::restore(r)?,
            best_score: Persist::restore(r)?,
            best_exprs: Persist::restore(r)?,
            best_columns: Persist::restore(r)?,
            records: Persist::restore(r)?,
            episode_best: Persist::restore(r)?,
            telemetry: Persist::restore(r)?,
            rng: Persist::restore(r)?,
            agents: Persist::restore(r)?,
            predictor: Persist::restore(r)?,
            novelty: Persist::restore(r)?,
            replay: Persist::restore(r)?,
            tracker_history: Persist::restore(r)?,
            tracker_seen: Persist::restore(r)?,
            eval_cache: Persist::restore(r)?,
            eval_history: Persist::restore(r)?,
            pred_history: Persist::restore(r)?,
            nov_history: Persist::restore(r)?,
            nov_count: Persist::restore(r)?,
            nov_mean: Persist::restore(r)?,
            nov_m2: Persist::restore(r)?,
            stats_baseline: Persist::restore(r)?,
            quarantine: Persist::restore(r)?,
        })
    }
}

/// FNV-1a fingerprint of a dataset's identity: shape, task, class count,
/// column names and the exact bits of every value and target. The dataset
/// *name* is deliberately excluded so a renamed copy still resumes.
pub fn dataset_fingerprint(data: &Dataset) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(data.n_rows() as u64);
    h.write_u64(data.n_features() as u64);
    h.write_u64(match data.task {
        TaskType::Classification => 0,
        TaskType::Regression => 1,
        TaskType::Detection => 2,
    });
    h.write_u64(data.n_classes as u64);
    for c in &data.features {
        h.write_bytes(c.name.as_bytes());
        for &v in &c.values {
            h.write_u64(v.to_bits());
        }
    }
    for &t in &data.targets {
        h.write_u64(t.to_bits());
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Public file API
// ---------------------------------------------------------------------------

/// Serialise a configuration + snapshot to the versioned binary format.
pub fn encode(cfg: &FastFtConfig, snap: &Snapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u32(VERSION);
    cfg.persist(&mut w);
    snap.persist(&mut w);
    w.into_bytes()
}

/// Parse bytes produced by [`encode`], verifying magic and version.
pub fn decode(bytes: &[u8]) -> FastFtResult<(FastFtConfig, Snapshot)> {
    let mut r = Reader::new(bytes);
    let run = |r: &mut Reader| -> PersistResult<(FastFtConfig, Snapshot)> {
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err("not a FASTFT checkpoint (bad magic)".into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version} (expected {VERSION})"));
        }
        let cfg = FastFtConfig::restore(r)?;
        let snap = Snapshot::restore(r)?;
        if !r.is_exhausted() {
            return Err(format!("{} trailing bytes after snapshot", r.remaining()));
        }
        Ok((cfg, snap))
    };
    run(&mut r).map_err(|e| FastFtError::Parse(format!("checkpoint: {e}")))
}

/// Write a checkpoint atomically: encode, write to a `.tmp` sibling, then
/// rename over `path`. A crash mid-write leaves any previous checkpoint
/// intact.
pub fn write(path: &Path, cfg: &FastFtConfig, snap: &Snapshot) -> FastFtResult<()> {
    let bytes = encode(cfg, snap);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| FastFtError::io(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| FastFtError::io(path, &e))
}

/// Read and parse a checkpoint file.
pub fn read(path: &Path) -> FastFtResult<(FastFtConfig, Snapshot)> {
    let bytes = std::fs::read(path).map_err(|e| FastFtError::io(path, &e))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::Decision;
    use crate::state::{CLUSTER_REP_DIM, HEAD_DIM, OP_DIM};
    use fastft_ml::SplitMethod;
    use fastft_nn::EncoderKind;
    use fastft_rl::{QAgentState, QKind};
    use fastft_tabular::metrics::Metric;

    fn sample_net() -> NetState {
        NetState {
            params: vec![vec![0.5, -0.25], vec![1.0]],
            opt_t: 3,
            opt_m: vec![vec![0.1, 0.2], vec![0.3]],
            opt_v: vec![vec![0.01, 0.02], vec![0.03]],
        }
    }

    fn sample_snapshot() -> Snapshot {
        let mem = MemoryUnit {
            state: vec![0.0; CLUSTER_REP_DIM],
            next_state: vec![1.0; CLUSTER_REP_DIM],
            reward: 0.25,
            head: Decision { candidates: vec![vec![0.1; HEAD_DIM]], action: 0 },
            op: Decision { candidates: vec![vec![0.2; OP_DIM]; 2], action: 1 },
            tail: None,
            next_head_candidates: vec![],
            seq: vec![1, 2, 3],
            perf: 0.75,
        };
        Snapshot {
            data_fingerprint: 0xDEAD_BEEF,
            next_episode: 2,
            global_step: 8,
            base_score: 0.6,
            best_score: 0.7,
            best_exprs: vec!["f0".into(), "(f0*f1)".into()],
            best_columns: vec![vec![1.0, 2.0], vec![2.0, 6.0]],
            records: vec![StepRecord {
                episode: 0,
                step: 0,
                reward: 0.1,
                score: 0.65,
                predicted: false,
                novelty: 0.3,
                novelty_distance: 1.0,
                new_combination: true,
                n_features: 3,
                new_exprs: vec!["sq(f0)".into()],
            }],
            episode_best: vec![0.65, 0.7],
            telemetry: Telemetry {
                downstream_evals: 9,
                cache_hits: 2,
                eval_faults: 1,
                quarantined: 1,
                total_secs: 1.25,
                ..Telemetry::default()
            },
            rng: [1, 2, 3, 4],
            agents: AgentsState::Ac {
                head: sample_net(),
                op: sample_net(),
                tail: sample_net(),
                critic: sample_net(),
            },
            predictor: sample_net(),
            novelty: sample_net(),
            replay: ReplayState::Prioritized {
                capacity: 16,
                write: 1,
                items: vec![mem],
                priorities: vec![0.251],
            },
            tracker_history: vec![vec![0.1, 0.2]],
            tracker_seen: vec!["a".into(), "b".into()],
            eval_cache: vec![("k1".into(), 0.6), ("k2".into(), 0.7)],
            eval_history: vec![(vec![1, 2], 0.6)],
            pred_history: vec![0.5, 0.6],
            nov_history: vec![0.2],
            nov_count: 3,
            nov_mean: 0.4,
            nov_m2: 0.02,
            stats_baseline: ScoreStats { batches: 4, ..ScoreStats::default() },
            quarantine: vec!["bad-key".into()],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cfg = FastFtConfig::quick();
        let snap = sample_snapshot();
        let bytes = encode(&cfg, &snap);
        let (cfg2, snap2) = decode(&bytes).unwrap();
        assert_eq!(cfg2.episodes, cfg.episodes);
        assert_eq!(cfg2.seed, cfg.seed);
        assert_eq!(cfg2.evaluator.folds, cfg.evaluator.folds);
        assert_eq!(snap2.data_fingerprint, snap.data_fingerprint);
        assert_eq!(snap2.best_exprs, snap.best_exprs);
        assert_eq!(snap2.best_columns, snap.best_columns);
        assert_eq!(snap2.rng, snap.rng);
        assert_eq!(snap2.agents, snap.agents);
        assert_eq!(snap2.predictor, snap.predictor);
        assert_eq!(snap2.replay, snap.replay);
        assert_eq!(snap2.eval_cache, snap.eval_cache);
        assert_eq!(snap2.quarantine, snap.quarantine);
        assert_eq!(snap2.telemetry.downstream_evals, 9);
        assert_eq!(snap2.telemetry.eval_faults, 1);
        assert_eq!(snap2.stats_baseline, snap.stats_baseline);
        assert_eq!(snap2.nov_m2.to_bits(), snap.nov_m2.to_bits());
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let cfg = FastFtConfig::quick();
        let snap = sample_snapshot();
        let mut bytes = encode(&cfg, &snap);
        assert!(matches!(decode(b"not a checkpoint"), Err(FastFtError::Parse(_))));
        bytes[8] = 99; // clobber the version field
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn decode_rejects_truncation_anywhere() {
        let bytes = encode(&FastFtConfig::quick(), &sample_snapshot());
        // Every strict prefix must fail cleanly, never panic.
        for cut in [10, 50, 200, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode(&long).is_err());
    }

    #[test]
    fn fingerprint_tracks_content_not_name() {
        use fastft_tabular::dataset::Column;
        let d1 = Dataset::new(
            "a",
            vec![Column::new("x", vec![1.0, 2.0])],
            vec![0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap();
        let mut renamed = d1.clone();
        renamed.name = "b".into();
        assert_eq!(dataset_fingerprint(&d1), dataset_fingerprint(&renamed));
        let mut changed = d1.clone();
        changed.features[0].values[1] = 2.0000001;
        assert_ne!(dataset_fingerprint(&d1), dataset_fingerprint(&changed));
        let mut recol = d1.clone();
        recol.features[0].name = "y".into();
        assert_ne!(dataset_fingerprint(&d1), dataset_fingerprint(&recol));
    }

    #[test]
    fn q_and_uniform_variants_round_trip() {
        let mut cfg = FastFtConfig::quick();
        cfg.rl = crate::agents::RlKind::Q(QKind::DuelingDoubleDqn);
        cfg.prioritized_replay = false;
        cfg.encoder = EncoderKind::Transformer { heads: 2, blocks: 1 };
        cfg.evaluator.metric = Some(Metric::Auc);
        cfg.evaluator.split_method = SplitMethod::Exact;
        cfg.checkpoint_path = Some("x.ckpt".into());
        let mut snap = sample_snapshot();
        snap.agents = AgentsState::Q {
            head: QAgentState { online: sample_net(), target: vec![vec![1.0]], updates: 5 },
            op: QAgentState::default(),
            tail: QAgentState::default(),
            eps_step: 17,
        };
        snap.replay = ReplayState::Uniform { capacity: 8, write: 0, items: vec![] };
        let (cfg2, snap2) = decode(&encode(&cfg, &snap)).unwrap();
        assert_eq!(cfg2.rl, cfg.rl);
        assert_eq!(cfg2.encoder, cfg.encoder);
        assert_eq!(cfg2.evaluator.metric, Some(Metric::Auc));
        assert_eq!(cfg2.checkpoint_path.as_deref(), Some(std::path::Path::new("x.ckpt")));
        assert_eq!(snap2.agents, snap.agents);
        assert_eq!(snap2.replay, snap.replay);
    }

    #[test]
    fn decode_rejects_inconsistent_replay_buffer() {
        let cfg = FastFtConfig::quick();
        let mut snap = sample_snapshot();
        // Write cursor beyond capacity is impossible in a live buffer.
        snap.replay = ReplayState::Uniform { capacity: 4, write: 9, items: vec![] };
        let err = decode(&encode(&cfg, &snap)).unwrap_err();
        assert!(err.to_string().contains("replay"), "{err}");
    }

    #[test]
    fn write_read_round_trips_on_disk() {
        let path =
            std::env::temp_dir().join(format!("fastft-ckpt-test-{}.bin", std::process::id()));
        let cfg = FastFtConfig::quick();
        let snap = sample_snapshot();
        write(&path, &cfg, &snap).unwrap();
        let (_, snap2) = read(&path).unwrap();
        assert_eq!(snap2.best_exprs, snap.best_exprs);
        // The temporary sibling is gone after the rename.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
