//! The FASTFT engine: cold start (Algorithm 1) and effective exploration
//! with continual training (Algorithm 2).
//!
//! One [`FastFt::fit`] call runs the full pipeline on a dataset:
//!
//! 1. **Cold start** — the cascading agents explore with real downstream
//!    evaluation as reward (Eq. 5), filling the replay buffer and the
//!    evaluation-component training set.
//! 2. **Component training** — the Performance Predictor (Eq. 3) and
//!    Novelty Estimator (Eq. 4) train on the collected sequences.
//! 3. **Effective exploration** — rewards come from the evaluation
//!    components (Eq. 6); downstream evaluation only triggers for
//!    top-α-percentile predicted performance or top-β-percentile novelty.
//!    Critical memories replay by TD-error priority (Eq. 10), and the
//!    components fine-tune every `retrain_every` episodes.

use crate::agents::{CascadingAgents, Decision, MemoryUnit, Role};
use crate::cluster::{cluster_features, MiCache};
use crate::config::FastFtConfig;
use crate::expr::Expr;
use crate::lru::LruCache;
use crate::novelty::NoveltyEstimator;
use crate::novelty_metric::NoveltyTracker;
use crate::ops::Op;
use crate::predictor::{PerformancePredictor, PredictorConfig};
use crate::scoring::BATCH_HIST_BUCKETS;
use crate::sequence::{canonical_key, encode_feature_set, TokenVocab};
use crate::state;
use crate::transform::FeatureSet;
use fastft_rl::schedule::ExpDecay;
use fastft_rl::{PrioritizedReplay, UniformReplay};
use fastft_runtime::Runtime;
use fastft_tabular::rngx;
use fastft_tabular::rngx::StdRng;
use fastft_tabular::Dataset;
use fastft_tabular::{FastFtError, FastFtResult};
use std::time::Instant;

/// Per-step trace of a run (Figs. 14–15, debugging, case studies).
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Episode index.
    pub episode: usize,
    /// Step within the episode.
    pub step: usize,
    /// Reward fed to the agents.
    pub reward: f64,
    /// Performance associated with the step (predicted or evaluated).
    pub score: f64,
    /// Whether `score` came from the predictor rather than a downstream run.
    pub predicted: bool,
    /// RND novelty of the step's sequence (0 when the estimator is off).
    pub novelty: f64,
    /// §VI-H novelty distance of the feature-set embedding.
    pub novelty_distance: f64,
    /// Whether the feature combination was never generated before.
    pub new_combination: bool,
    /// Feature count after the step.
    pub n_features: usize,
    /// Traceable expressions added this step.
    pub new_exprs: Vec<String>,
}

/// Wall-clock decomposition matching Table II's rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct Telemetry {
    /// Agent/critic updates ("Optimization").
    pub optimization_secs: f64,
    /// Predictor/estimator forward passes and training ("Estimation").
    pub estimation_secs: f64,
    /// Downstream-task evaluations ("Evaluation").
    pub evaluation_secs: f64,
    /// Whole `fit` duration ("Overall").
    pub total_secs: f64,
    /// Number of downstream evaluations performed.
    pub downstream_evals: usize,
    /// Number of predictor/estimator inference calls.
    pub predictor_calls: usize,
    /// Downstream evaluations answered from the canonical-key memo cache
    /// instead of re-running cross-validation.
    pub cache_hits: usize,
    /// Memo-cache entries evicted to respect
    /// [`FastFtConfig::eval_cache_capacity`].
    pub cache_evictions: usize,
    /// Wall time inside Performance-Predictor inference (subset of
    /// `estimation_secs`).
    pub predictor_secs: f64,
    /// Wall time inside Novelty-Estimator inference (subset of
    /// `estimation_secs`).
    pub novelty_secs: f64,
    /// Scoring calls answered from a cached encoder prefix state.
    pub prefix_hits: u64,
    /// Scoring calls that encoded their sequence from scratch.
    pub prefix_misses: u64,
    /// Prefix-cache states evicted to respect
    /// [`FastFtConfig::prefix_cache_capacity`].
    pub prefix_evictions: u64,
    /// Batched scoring calls issued by the step loop.
    pub score_batches: u64,
    /// Histogram of scoring batch sizes (bucket `i` = size `i + 1`, last
    /// bucket = `≥ 8`).
    pub batch_size_hist: [u64; BATCH_HIST_BUCKETS],
}

/// Result of a FASTFT run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Downstream score of the original feature set.
    pub base_score: f64,
    /// Best downstream-evaluated score found.
    pub best_score: f64,
    /// The dataset achieving `best_score`.
    pub best_dataset: Dataset,
    /// Traceable expressions of the best feature set.
    pub best_exprs: Vec<Expr>,
    /// Per-step trace.
    pub records: Vec<StepRecord>,
    /// Best-so-far downstream score after each episode (Fig. 7 curves).
    pub episode_best: Vec<f64>,
    /// Timing decomposition (Table II).
    pub telemetry: Telemetry,
}

enum Memory {
    Prioritized(PrioritizedReplay<MemoryUnit>),
    Uniform(UniformReplay<MemoryUnit>),
}

impl Memory {
    fn push(&mut self, mem: MemoryUnit, delta: f64) {
        match self {
            Memory::Prioritized(b) => b.push(mem, delta),
            Memory::Uniform(b) => b.push(mem),
        }
    }

    fn sample<'a>(&'a self, rng: &mut StdRng) -> Option<&'a MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.sample(rng),
            Memory::Uniform(b) => b.sample(rng),
        }
    }

    fn sample_uniform<'a>(&'a self, rng: &mut StdRng) -> Option<&'a MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.sample_uniform(rng),
            Memory::Uniform(b) => b.sample(rng),
        }
    }

    fn len(&self) -> usize {
        match self {
            Memory::Prioritized(b) => b.len(),
            Memory::Uniform(b) => b.len(),
        }
    }
}

/// The FASTFT framework.
#[derive(Debug, Clone)]
pub struct FastFt {
    /// Run configuration.
    pub cfg: FastFtConfig,
}

impl FastFt {
    /// Create with a configuration.
    pub fn new(cfg: FastFtConfig) -> Self {
        FastFt { cfg }
    }

    /// Run the full pipeline on `data` and return the best transformed
    /// dataset found, with traces and timing.
    ///
    /// # Errors
    ///
    /// Returns [`FastFtError::InvalidConfig`] if the configuration fails
    /// [`FastFtConfig::validate`], [`FastFtError::InvalidData`] if `data`
    /// has no feature columns, and [`FastFtError::Evaluation`] if the
    /// downstream evaluator cannot score a fold.
    pub fn fit(&self, data: &Dataset) -> FastFtResult<RunResult> {
        self.cfg.validate()?;
        if data.n_features() == 0 {
            return Err(FastFtError::InvalidData(format!(
                "dataset '{}' has no feature columns",
                data.name
            )));
        }
        Run::new(&self.cfg, data).execute()
    }
}

/// Percentile of a sample (linear interpolation, q in `[0,1]`).
fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    fastft_tabular::stats::percentile_sorted(&sorted, q)
}

struct Run<'a> {
    cfg: &'a FastFtConfig,
    original: &'a Dataset,
    vocab: TokenVocab,
    agents: CascadingAgents,
    predictor: PerformancePredictor,
    novelty: NoveltyEstimator,
    memory: Memory,
    tracker: NoveltyTracker,
    rng: StdRng,
    runtime: Runtime,
    telemetry: Telemetry,
    // Memoised downstream scores keyed by the canonical (order-invariant)
    // feature-set key: revisiting a feature combination never pays for
    // cross-validation twice within a run. Capacity-capped LRU so long
    // runs cannot grow it without limit (`cfg.eval_cache_capacity`).
    eval_cache: LruCache<String, f64>,
    // Downstream-evaluated (sequence, score) pairs for component training.
    eval_history: Vec<(Vec<usize>, f64)>,
    // Rolling histories for the α/β percentile triggers.
    pred_history: Vec<f64>,
    nov_history: Vec<f64>,
    // Welford running stats of raw novelty, for intrinsic-reward
    // normalisation (standard RND practice; DESIGN.md §4).
    nov_count: usize,
    nov_mean: f64,
    nov_m2: f64,
    global_step: usize,
}

impl<'a> Run<'a> {
    fn new(cfg: &'a FastFtConfig, data: &'a Dataset) -> Self {
        let vocab = TokenVocab::new(data.n_features());
        let pc = PredictorConfig {
            dim: 32,
            encoder: cfg.encoder,
            lr: cfg.lr,
            prefix_cache: cfg.prefix_cache_capacity,
        };
        let mut agents = CascadingAgents::new(cfg.rl, cfg.agent_hidden, cfg.agent_lr, cfg.seed);
        agents.gamma = cfg.gamma;
        let memory = if cfg.prioritized_replay {
            Memory::Prioritized(PrioritizedReplay::new(cfg.memory_size))
        } else {
            Memory::Uniform(UniformReplay::new(cfg.memory_size))
        };
        let runtime =
            if cfg.threads == 0 { Runtime::from_env() } else { Runtime::new(cfg.threads) };
        Run {
            cfg,
            original: data,
            vocab,
            agents,
            predictor: PerformancePredictor::new(vocab.size(), pc, cfg.seed.wrapping_add(11)),
            novelty: NoveltyEstimator::new(vocab.size(), pc, cfg.seed.wrapping_add(23)),
            memory,
            tracker: NoveltyTracker::new(),
            rng: rngx::rng(cfg.seed.wrapping_add(37)),
            runtime,
            telemetry: Telemetry::default(),
            eval_cache: LruCache::new(cfg.eval_cache_capacity),
            eval_history: Vec::new(),
            pred_history: Vec::new(),
            nov_history: Vec::new(),
            nov_count: 0,
            nov_mean: 0.0,
            nov_m2: 0.0,
            global_step: 0,
        }
    }

    /// Evaluate `data` downstream, memoised on the canonical feature-set
    /// key when one is supplied. Cache hits return the stored score without
    /// re-running cross-validation (and count as `cache_hits`, not
    /// `downstream_evals`); `None` bypasses the cache entirely.
    fn evaluate_downstream(&mut self, data: &Dataset, key: Option<&str>) -> FastFtResult<f64> {
        if let Some(k) = key {
            if let Some(&score) = self.eval_cache.get(k) {
                self.telemetry.cache_hits += 1;
                return Ok(score);
            }
        }
        let t0 = Instant::now();
        let score = self.cfg.evaluator.evaluate_with(&self.runtime, data)?;
        self.telemetry.evaluation_secs += t0.elapsed().as_secs_f64();
        self.telemetry.downstream_evals += 1;
        if let Some(k) = key {
            if self.eval_cache.insert(k.to_owned(), score) {
                self.telemetry.cache_evictions += 1;
            }
        }
        Ok(score)
    }

    /// Should this (predicted performance, novelty) pair trigger a real
    /// downstream evaluation? (§III-D "Adaptively Adopt Two Strategies".)
    fn trigger_downstream(&self, pred: f64, nov: f64) -> bool {
        // Until enough history exists the percentiles are meaningless;
        // anchor with real evaluations.
        const WARMUP: usize = 8;
        if self.pred_history.len() < WARMUP {
            return self.cfg.alpha > 0.0 || self.cfg.beta > 0.0;
        }
        // Strict inequality: sequences are often scored identically early
        // on, and `>=` against a tied percentile would fire on every step.
        let by_perf = self.cfg.alpha > 0.0
            && pred > percentile(&self.pred_history, 1.0 - self.cfg.alpha / 100.0);
        let by_nov = self.cfg.use_novelty
            && self.cfg.beta > 0.0
            && nov > percentile(&self.nov_history, 1.0 - self.cfg.beta / 100.0);
        by_perf || by_nov
    }

    /// Normalise a raw RND novelty into a differential bonus: the running
    /// z-score, clamped to ±3. This keeps Eq. 6's novelty term on the same
    /// scale as performance differences regardless of the frozen target's
    /// output magnitude, and — unlike a raw magnitude — rewards *relative*
    /// novelty: above-average novelty earns a positive bonus, familiar
    /// territory a negative one (standard intrinsic-reward normalisation in
    /// the RND literature; DESIGN.md §4).
    fn normalize_novelty(&mut self, nov: f64) -> f64 {
        self.nov_count += 1;
        let delta = nov - self.nov_mean;
        self.nov_mean += delta / self.nov_count as f64;
        self.nov_m2 += delta * (nov - self.nov_mean);
        if self.nov_count < 5 {
            return 0.0;
        }
        let std = (self.nov_m2 / (self.nov_count - 1) as f64).sqrt();
        ((nov - self.nov_mean) / (std + 1e-8)).clamp(-3.0, 3.0)
    }

    fn execute(mut self) -> FastFtResult<RunResult> {
        let t_start = Instant::now();
        let novelty_weight =
            ExpDecay { start: self.cfg.eps_start, end: self.cfg.eps_end, m: self.cfg.decay_m };
        let base_fs = FeatureSet::from_original(self.original);
        let base_key = canonical_key(&base_fs.exprs);
        let base_score = self.evaluate_downstream(self.original, Some(&base_key))?;
        let max_features = self.cfg.max_features(self.original.n_features());

        let mut best_score = base_score;
        let mut best_fs = FeatureSet::from_original(self.original);
        let mut records = Vec::new();
        let mut episode_best = Vec::with_capacity(self.cfg.episodes);

        for episode in 0..self.cfg.episodes {
            let cold = episode < self.cfg.cold_start_episodes || !self.cfg.use_predictor;
            let mut fs = FeatureSet::from_original(self.original);
            let mut prev_v = base_score;
            let mut prev_seq = encode_feature_set(&fs.exprs, &self.vocab, self.cfg.max_seq_len);
            let mut prev_state = state::rep_overall(&fs.data);
            // Pending memory from the previous step, waiting for its
            // next-step head candidates before insertion.
            let mut pending: Option<MemoryUnit> = None;

            for step in 0..self.cfg.steps_per_episode {
                self.global_step += 1;
                // --- agent decisions -----------------------------------
                let t_opt = Instant::now();
                let cache = MiCache::compute_with(&self.runtime, &fs.data, self.cfg.mi_bins);
                let clusters = cluster_features(&fs.data, &cache, self.cfg.cluster_threshold, 2);
                let overall = prev_state.clone();
                let cluster_reps: Vec<Vec<f64>> =
                    clusters.iter().map(|c| state::rep_cluster(&fs.data, c)).collect();
                let head_cands: Vec<Vec<f64>> =
                    cluster_reps.iter().map(|cr| state::head_candidate(cr, &overall)).collect();
                // Complete the previous step's memory with this step's head
                // candidates, then insert and learn.
                if let Some(mut mem) = pending.take() {
                    mem.next_head_candidates = head_cands.clone();
                    self.store_and_learn(mem);
                }
                let head_idx = self.agents.select(Role::Head, &head_cands, &mut self.rng);
                let head_rep = &cluster_reps[head_idx];
                let op_cands: Vec<Vec<f64>> =
                    Op::ALL.iter().map(|&op| state::op_candidate(head_rep, &overall, op)).collect();
                let op_idx = self.agents.select(Role::Op, &op_cands, &mut self.rng);
                let op = Op::ALL[op_idx];
                let tail_choice = if op.is_binary() {
                    let tail_cands: Vec<Vec<f64>> = cluster_reps
                        .iter()
                        .map(|cr| state::tail_candidate(head_rep, &overall, op, cr))
                        .collect();
                    let tail_idx = self.agents.select(Role::Tail, &tail_cands, &mut self.rng);
                    Some((tail_cands, tail_idx))
                } else {
                    None
                };
                self.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();

                // --- group-wise crossing -------------------------------
                let tail_members = tail_choice.as_ref().map(|(_, i)| clusters[*i].as_slice());
                let generated = fs.cross(
                    &clusters[head_idx],
                    op,
                    tail_members,
                    self.cfg.max_new_per_step,
                    &mut self.rng,
                );
                let new_exprs: Vec<String> = generated.iter().map(|(e, _)| e.to_string()).collect();
                let produced = !generated.is_empty();
                fs.extend(generated);
                fs.select_top(max_features, self.cfg.mi_bins);

                let seq = encode_feature_set(&fs.exprs, &self.vocab, self.cfg.max_seq_len);
                let next_state = state::rep_overall(&fs.data);
                let key = canonical_key(&fs.exprs);
                let (nov_dist, new_comb) = self.tracker.observe(next_state.clone(), &key);

                // --- scoring and reward --------------------------------
                let (v, reward, predicted, nov) = if cold {
                    let v = self.evaluate_downstream(&fs.data, Some(&key))?;
                    self.eval_history.push((seq.clone(), v));
                    // Eq. 5 (plus the novelty bonus when the estimator is
                    // active and trained; during true cold start the
                    // estimator is untrained, so only the −PP path adds it).
                    let mut r = v - prev_v;
                    let mut nov = 0.0;
                    if self.cfg.use_novelty && episode >= self.cfg.cold_start_episodes {
                        let t_est = Instant::now();
                        nov = if self.cfg.batched_scoring {
                            self.novelty.novelty_cached(&seq)
                        } else {
                            self.novelty.novelty(&seq)
                        };
                        let elapsed = t_est.elapsed().as_secs_f64();
                        self.telemetry.novelty_secs += elapsed;
                        self.telemetry.estimation_secs += elapsed;
                        self.telemetry.predictor_calls += 1;
                        let normed = self.normalize_novelty(nov);
                        r += novelty_weight.at(self.global_step) * normed;
                        self.nov_history.push(nov);
                    }
                    (v, r, false, nov)
                } else {
                    // Batched scoring runs the same fused kernels in the
                    // same summation order as the per-sequence path, so both
                    // branches are bitwise identical
                    // (`batched_scoring_matches_unbatched`).
                    let t_pred = Instant::now();
                    let (pred, pred_prev) = if self.cfg.batched_scoring {
                        let mut out = [0.0; 2];
                        self.predictor.predict_batch(&[&seq, &prev_seq], &mut out);
                        (out[0], out[1])
                    } else {
                        (self.predictor.predict(&seq), self.predictor.predict(&prev_seq))
                    };
                    let pred_elapsed = t_pred.elapsed().as_secs_f64();
                    self.telemetry.predictor_secs += pred_elapsed;
                    let t_nov = Instant::now();
                    let nov = if !self.cfg.use_novelty {
                        0.0
                    } else if self.cfg.batched_scoring {
                        self.novelty.novelty_cached(&seq)
                    } else {
                        self.novelty.novelty(&seq)
                    };
                    let nov_elapsed = t_nov.elapsed().as_secs_f64();
                    self.telemetry.novelty_secs += nov_elapsed;
                    self.telemetry.estimation_secs += pred_elapsed + nov_elapsed;
                    self.telemetry.predictor_calls += 2;
                    // Eq. 6, with the novelty bonus std-normalised so the
                    // two terms share a scale.
                    let mut r = pred - pred_prev;
                    if self.cfg.use_novelty {
                        let normed = self.normalize_novelty(nov);
                        r += novelty_weight.at(self.global_step) * normed;
                        self.nov_history.push(nov);
                    }
                    let trigger = self.trigger_downstream(pred, nov);
                    self.pred_history.push(pred);
                    if trigger {
                        let v = self.evaluate_downstream(&fs.data, Some(&key))?;
                        self.eval_history.push((seq.clone(), v));
                        (v, r, false, nov)
                    } else {
                        (pred, r, true, nov)
                    }
                };
                let reward = if produced { reward } else { reward - 0.05 };

                // Best tracking: only real downstream evaluations count.
                if !predicted && v > best_score {
                    best_score = v;
                    best_fs = fs.clone();
                }

                // --- memory --------------------------------------------
                let mem = MemoryUnit {
                    state: prev_state.clone(),
                    next_state: next_state.clone(),
                    reward,
                    head: Decision { candidates: head_cands, action: head_idx },
                    op: Decision { candidates: op_cands, action: op_idx },
                    tail: tail_choice
                        .map(|(cands, idx)| Decision { candidates: cands, action: idx }),
                    next_head_candidates: Vec::new(),
                    seq: seq.clone(),
                    perf: v,
                };
                pending = Some(mem);

                records.push(StepRecord {
                    episode,
                    step,
                    reward,
                    score: v,
                    predicted,
                    novelty: nov,
                    novelty_distance: nov_dist,
                    new_combination: new_comb,
                    n_features: fs.n_features(),
                    new_exprs,
                });

                prev_v = v;
                prev_seq = seq;
                prev_state = next_state;
            }
            // Episode end: flush the pending memory (terminal transition).
            if let Some(mem) = pending.take() {
                self.store_and_learn(mem);
            }

            // --- component training -------------------------------------
            let cold_start_end = episode + 1 == self.cfg.cold_start_episodes;
            let retrain_due = episode + 1 > self.cfg.cold_start_episodes
                && self.cfg.retrain_every > 0
                && (episode + 1 - self.cfg.cold_start_episodes)
                    .is_multiple_of(self.cfg.retrain_every);
            let components_active = self.cfg.use_predictor || self.cfg.use_novelty;
            if components_active && cold_start_end {
                self.train_components_cold_start();
            } else if components_active && retrain_due {
                self.finetune_components();
            }

            episode_best.push(best_score);
        }

        let s = self.predictor.stats().merge(&self.novelty.stats());
        self.telemetry.prefix_hits = s.prefix_hits;
        self.telemetry.prefix_misses = s.prefix_misses;
        self.telemetry.prefix_evictions = s.evictions;
        self.telemetry.score_batches = s.batches;
        self.telemetry.batch_size_hist = s.batch_hist;
        self.telemetry.total_secs = t_start.elapsed().as_secs_f64();
        Ok(RunResult {
            base_score,
            best_score,
            best_dataset: best_fs.data,
            best_exprs: best_fs.exprs,
            records,
            episode_best,
            telemetry: self.telemetry,
        })
    }

    fn store_and_learn(&mut self, mem: MemoryUnit) {
        let t_opt = Instant::now();
        let delta = self.agents.td_error(&mem);
        self.memory.push(mem, delta);
        // Alg. 1 line 9 / Alg. 2 line 17: sample from the priority
        // distribution and optimise the cascading agents.
        if self.memory.len() >= 2 {
            if let Some(sampled) = self.memory.sample(&mut self.rng) {
                let sampled = sampled.clone();
                self.agents.learn(&sampled);
            }
        }
        self.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();
    }

    /// Train the components on `items` in order: one Adam step per sample
    /// when `cfg.minibatch == 0` (the paper's schedule), averaged-gradient
    /// steps over `cfg.minibatch`-sized chunks otherwise.
    fn train_components_on(&mut self, items: &[(Vec<usize>, f64)], train_novelty: bool) {
        if self.cfg.minibatch > 0 {
            for chunk in items.chunks(self.cfg.minibatch) {
                let batch: Vec<(&[usize], f64)> =
                    chunk.iter().map(|(s, v)| (s.as_slice(), *v)).collect();
                if self.cfg.use_predictor {
                    self.predictor.train_minibatch(&batch, &self.runtime);
                }
                if train_novelty && self.cfg.use_novelty {
                    let seqs: Vec<&[usize]> = batch.iter().map(|&(s, _)| s).collect();
                    self.novelty.train_minibatch(&seqs, &self.runtime);
                }
            }
        } else {
            for (seq, v) in items {
                if self.cfg.use_predictor {
                    self.predictor.train_step(seq, *v);
                }
                if train_novelty && self.cfg.use_novelty {
                    self.novelty.train_step(seq);
                }
            }
        }
    }

    /// Alg. 1 lines 14–19: initial training of both components from the
    /// cold-start collection.
    fn train_components_cold_start(&mut self) {
        let t_est = Instant::now();
        let passes = self.cfg.retrain_epochs.max(1);
        let history = self.eval_history.clone();
        for _ in 0..passes {
            self.train_components_on(&history, true);
        }
        self.telemetry.estimation_secs += t_est.elapsed().as_secs_f64();
    }

    /// Alg. 2 lines 19–24: periodic fine-tuning from the memory buffer
    /// (uniform samples).
    fn finetune_components(&mut self) {
        let t_est = Instant::now();
        // Draw every uniform sample before training: sampling consumes the
        // run RNG identically whether the steps below are per-sample or
        // minibatched, so `cfg.minibatch` never shifts the decision stream.
        let mut sampled = Vec::with_capacity(self.cfg.retrain_epochs);
        for _ in 0..self.cfg.retrain_epochs {
            if let Some(mem) = self.memory.sample_uniform(&mut self.rng) {
                sampled.push((mem.seq.clone(), mem.perf));
            }
        }
        self.train_components_on(&sampled, true);
        // Anchor the predictor on real downstream results as well, so
        // estimated rewards cannot drift from evaluated ones.
        if self.cfg.use_predictor {
            let recent = self.eval_history.len().saturating_sub(self.cfg.retrain_epochs);
            let tail: Vec<(Vec<usize>, f64)> = self.eval_history[recent..].to_vec();
            self.train_components_on(&tail, false);
        }
        self.telemetry.estimation_secs += t_est.elapsed().as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_ml::Evaluator;
    use fastft_tabular::datagen;

    fn small_data(name: &str, rows: usize, seed: u64) -> Dataset {
        let spec = datagen::by_name(name).unwrap();
        let mut d = datagen::generate_capped(spec, rows, seed);
        d.sanitize();
        d
    }

    fn tiny_cfg() -> FastFtConfig {
        FastFtConfig {
            episodes: 4,
            steps_per_episode: 4,
            cold_start_episodes: 2,
            retrain_every: 1,
            retrain_epochs: 8,
            evaluator: Evaluator { folds: 3, ..Evaluator::default() },
            ..FastFtConfig::default()
        }
    }

    #[test]
    fn fit_improves_or_matches_base_score() {
        let data = small_data("pima_indian", 200, 0);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(result.best_score >= result.base_score);
        assert!(result.best_score <= 1.0);
        assert_eq!(result.episode_best.len(), 4);
        assert_eq!(result.records.len(), 16);
    }

    #[test]
    fn best_dataset_matches_best_exprs() {
        let data = small_data("pima_indian", 150, 1);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert_eq!(result.best_dataset.n_features(), result.best_exprs.len());
        for (c, e) in result.best_dataset.features.iter().zip(&result.best_exprs) {
            assert_eq!(c.name, e.to_string());
        }
    }

    #[test]
    fn cold_start_steps_are_all_evaluated() {
        let data = small_data("pima_indian", 150, 2);
        let cfg = tiny_cfg();
        let cold_steps = cfg.cold_start_episodes * cfg.steps_per_episode;
        let result = FastFt::new(cfg).fit(&data).unwrap();
        for r in &result.records[..cold_steps] {
            assert!(!r.predicted, "cold-start step {}.{} was predicted", r.episode, r.step);
        }
    }

    #[test]
    fn predictor_reduces_downstream_evals() {
        let data = small_data("pima_indian", 150, 3);
        let mut cfg = tiny_cfg();
        cfg.episodes = 6;
        let with = FastFt::new(cfg.clone()).fit(&data).unwrap();
        let without = FastFt::new(cfg.without_predictor()).fit(&data).unwrap();
        assert!(
            with.telemetry.downstream_evals < without.telemetry.downstream_evals,
            "with: {}, without: {}",
            with.telemetry.downstream_evals,
            without.telemetry.downstream_evals
        );
        // −PP scores every step downstream (+1 for the base score); repeat
        // feature sets are answered by the memo cache instead of re-running
        // cross-validation.
        assert_eq!(without.telemetry.downstream_evals + without.telemetry.cache_hits, 6 * 4 + 1);
    }

    #[test]
    fn memo_cache_returns_cached_score_without_reeval() {
        let data = small_data("pima_indian", 120, 13);
        let cfg = tiny_cfg();
        let mut run = Run::new(&cfg, &data);
        let s1 = run.evaluate_downstream(&data, Some("k")).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 1);
        assert_eq!(run.telemetry.cache_hits, 0);
        let s2 = run.evaluate_downstream(&data, Some("k")).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(run.telemetry.downstream_evals, 1);
        assert_eq!(run.telemetry.cache_hits, 1);
        // A distinct key is a miss.
        run.evaluate_downstream(&data, Some("other")).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 2);
        assert_eq!(run.telemetry.cache_hits, 1);
        // `None` bypasses the cache entirely.
        run.evaluate_downstream(&data, None).unwrap();
        run.evaluate_downstream(&data, None).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 4);
        assert_eq!(run.telemetry.cache_hits, 1);
    }

    #[test]
    fn memo_cache_capacity_evicts_and_counts() {
        let data = small_data("pima_indian", 120, 17);
        let mut cfg = tiny_cfg();
        cfg.eval_cache_capacity = 2;
        let mut run = Run::new(&cfg, &data);
        run.evaluate_downstream(&data, Some("a")).unwrap();
        run.evaluate_downstream(&data, Some("b")).unwrap();
        assert_eq!(run.telemetry.cache_evictions, 0);
        // Third distinct key exceeds the capacity of 2: "a" is evicted.
        run.evaluate_downstream(&data, Some("c")).unwrap();
        assert_eq!(run.telemetry.cache_evictions, 1);
        // "b" survived (was more recent than "a") and hits.
        run.evaluate_downstream(&data, Some("b")).unwrap();
        assert_eq!(run.telemetry.cache_hits, 1);
        // "a" was evicted, so it re-evaluates (and evicts "c").
        run.evaluate_downstream(&data, Some("a")).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 4);
        assert_eq!(run.telemetry.cache_evictions, 2);
    }

    #[test]
    fn fit_rejects_invalid_config() {
        let data = small_data("pima_indian", 120, 14);
        let mut cfg = tiny_cfg();
        cfg.alpha = -3.0;
        let err = FastFt::new(cfg).fit(&data).unwrap_err();
        assert!(matches!(err, FastFtError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fit_rejects_empty_dataset() {
        use fastft_tabular::TaskType;
        let data =
            Dataset::new("empty", Vec::new(), vec![0.0, 1.0], TaskType::Classification, 2).unwrap();
        let err = FastFt::new(tiny_cfg()).fit(&data).unwrap_err();
        assert!(matches!(err, FastFtError::InvalidData(_)), "{err}");
    }

    #[test]
    fn fit_identical_across_thread_counts() {
        let data = small_data("pima_indian", 120, 15);
        let serial = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.threads = 4;
        let pooled = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(serial.base_score, pooled.base_score);
        assert_eq!(serial.best_score, pooled.best_score);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
        assert_eq!(serial.telemetry.downstream_evals, pooled.telemetry.downstream_evals);
        assert_eq!(serial.telemetry.cache_hits, pooled.telemetry.cache_hits);
    }

    #[test]
    fn batched_scoring_matches_unbatched() {
        let data = small_data("pima_indian", 120, 18);
        let batched = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.batched_scoring = false;
        cfg.prefix_cache_capacity = 0;
        let plain = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(batched.best_score, plain.best_score);
        assert_eq!(batched.records.len(), plain.records.len());
        for (a, b) in batched.records.iter().zip(&plain.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.novelty, b.novelty);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
        assert_eq!(batched.telemetry.downstream_evals, plain.telemetry.downstream_evals);
        let t = batched.telemetry;
        assert!(t.score_batches > 0, "warm steps should batch");
        assert!(t.prefix_hits + t.prefix_misses > 0, "cached scoring should run");
        assert_eq!(t.batch_size_hist.iter().sum::<u64>(), t.score_batches);
        let p = plain.telemetry;
        assert_eq!(p.score_batches, 0);
        assert_eq!(p.prefix_hits + p.prefix_misses, 0);
    }

    #[test]
    fn minibatch_run_identical_across_thread_counts() {
        let data = small_data("pima_indian", 120, 19);
        let mut cfg = tiny_cfg();
        cfg.minibatch = 4;
        let serial = FastFt::new(cfg.clone()).fit(&data).unwrap();
        cfg.threads = 4;
        let pooled = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(serial.best_score, pooled.best_score);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
    }

    #[test]
    fn telemetry_times_are_consistent() {
        let data = small_data("pima_indian", 120, 4);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let t = result.telemetry;
        assert!(t.evaluation_secs > 0.0);
        assert!(t.optimization_secs > 0.0);
        assert!(t.total_secs >= t.evaluation_secs);
        assert!(t.downstream_evals >= 1);
    }

    #[test]
    fn ablations_run() {
        let data = small_data("pima_indian", 120, 5);
        for cfg in [
            tiny_cfg().without_novelty(),
            tiny_cfg().without_critical_replay(),
            tiny_cfg().without_predictor(),
        ] {
            let r = FastFt::new(cfg).fit(&data).unwrap();
            assert!(r.best_score >= r.base_score);
        }
    }

    #[test]
    fn q_framework_runs() {
        use crate::agents::RlKind;
        use fastft_rl::QKind;
        let data = small_data("pima_indian", 120, 6);
        let mut cfg = tiny_cfg();
        cfg.rl = RlKind::Q(QKind::DuelingDqn);
        let r = FastFt::new(cfg).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
    }

    #[test]
    fn regression_task_runs() {
        let data = small_data("openml_620", 150, 7);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn detection_task_runs() {
        let data = small_data("thyroid", 400, 8);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data("pima_indian", 120, 9);
        let a = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let b = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.score, rb.score);
            assert_eq!(ra.new_exprs, rb.new_exprs);
        }
    }

    #[test]
    fn episode_best_is_monotone() {
        let data = small_data("pima_indian", 120, 10);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        for w in r.episode_best.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn feature_cap_respected() {
        let data = small_data("pima_indian", 120, 11);
        let cfg = tiny_cfg();
        let cap = cfg.max_features(data.n_features());
        let r = FastFt::new(cfg).fit(&data).unwrap();
        for rec in &r.records {
            assert!(rec.n_features <= cap, "step has {} features > cap {cap}", rec.n_features);
        }
        assert!(r.best_dataset.n_features() <= cap);
    }

    #[test]
    fn novelty_distances_recorded() {
        let data = small_data("pima_indian", 120, 12);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        // First step of the run is maximally novel.
        assert_eq!(r.records[0].novelty_distance, 1.0);
        assert!(r.records.iter().all(|rec| rec.novelty_distance >= 0.0));
        assert!(r.records.iter().any(|rec| rec.new_combination));
    }

    #[test]
    fn percentile_helper() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }
}
