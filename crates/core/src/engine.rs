//! The FASTFT engine façade: cold start (Algorithm 1) and effective
//! exploration with continual training (Algorithm 2).
//!
//! One [`FastFt::fit`] call runs the full pipeline on a dataset:
//!
//! 1. **Cold start** — the cascading agents explore with real downstream
//!    evaluation as reward (Eq. 5), filling the replay buffer and the
//!    evaluation-component training set.
//! 2. **Component training** — the Performance Predictor (Eq. 3) and
//!    Novelty Estimator (Eq. 4) train on the collected sequences.
//! 3. **Effective exploration** — rewards come from the evaluation
//!    components (Eq. 6); downstream evaluation only triggers for
//!    top-α-percentile predicted performance or top-β-percentile novelty.
//!    Critical memories replay by TD-error priority (Eq. 10), and the
//!    components fine-tune every `retrain_every` episodes.
//!
//! The run loop itself lives in [`crate::pipeline`]: a staged
//! [`Driver`](crate::pipeline::Driver) composing
//! [`CandidateSource`](crate::pipeline::CandidateSource),
//! [`RewardModel`](crate::pipeline::RewardModel) and
//! [`Learner`](crate::pipeline::Learner) stages over a single
//! [`SearchState`](crate::pipeline::SearchState). [`FastFt`] is a thin
//! façade over [`Session`](crate::pipeline::Session) that keeps the
//! original one-call API.

use crate::checkpoint;
use crate::config::FastFtConfig;
use crate::expr::Expr;
use crate::parse::parse_expr;
use crate::pipeline::{Driver, NullObserver, Session};
use crate::transform::FeatureSet;
use fastft_tabular::{Column, Dataset};
use fastft_tabular::{FastFtError, FastFtResult};
use std::path::Path;
use std::time::Instant;

pub use crate::pipeline::{RunResult, StepRecord, StopReason, Telemetry};

/// The FASTFT framework.
#[derive(Debug, Clone)]
pub struct FastFt {
    /// Run configuration.
    pub cfg: FastFtConfig,
}

impl FastFt {
    /// Create with a configuration.
    pub fn new(cfg: FastFtConfig) -> Self {
        FastFt { cfg }
    }

    /// Run the full pipeline on `data` and return the best transformed
    /// dataset found, with traces and timing.
    ///
    /// Equivalent to a one-dataset [`Session`](crate::pipeline::Session);
    /// use a `Session` directly to run several datasets over one shared
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`FastFtError::InvalidConfig`] if the configuration fails
    /// [`FastFtConfig::validate`], [`FastFtError::InvalidData`] if `data`
    /// is degenerate (no feature columns, fewer than two rows, or
    /// non-finite values), and [`FastFtError::Evaluation`] if the
    /// downstream evaluator cannot score the *original* feature set.
    /// Candidate evaluations that fail mid-run are fault-isolated and
    /// quarantined instead of aborting the run.
    pub fn fit(&self, data: &Dataset) -> FastFtResult<RunResult> {
        Session::new(self.cfg.clone())?.run(data)
    }

    /// Continue a run from a checkpoint written via
    /// [`FastFtConfig::checkpoint_every`]. `data` must be the dataset the
    /// checkpointed run was fitted on (verified by fingerprint).
    ///
    /// The resumed run is **bitwise identical** to the uninterrupted one:
    /// the same decisions, scores, records and deterministic telemetry
    /// counters come out, because the checkpoint captures the RNG stream,
    /// all network weights with optimiser state, the replay buffer and the
    /// memo cache. Only wall times and encoder prefix-cache hit counters
    /// differ (those caches restart cold).
    ///
    /// # Errors
    ///
    /// [`FastFtError::Io`] if the file cannot be read,
    /// [`FastFtError::Parse`] if it is not a valid checkpoint, and
    /// [`FastFtError::InvalidData`] if `data` does not match the
    /// checkpoint's dataset fingerprint.
    pub fn resume(path: impl AsRef<Path>, data: &Dataset) -> FastFtResult<RunResult> {
        Self::resume_with(path, data, |_| {})
    }

    /// [`resume`](FastFt::resume) with a configuration override hook,
    /// applied before the run restarts — the supported use is adjusting
    /// run budgets, checkpoint cadence or thread count (e.g. lifting
    /// `max_downstream_evals` to let a budget-stopped run finish).
    /// Changing learning hyperparameters mid-run voids the bitwise-parity
    /// guarantee.
    pub fn resume_with(
        path: impl AsRef<Path>,
        data: &Dataset,
        override_cfg: impl FnOnce(&mut FastFtConfig),
    ) -> FastFtResult<RunResult> {
        let (mut cfg, snap) = checkpoint::read(path.as_ref())?;
        override_cfg(&mut cfg);
        cfg.validate()?;
        validate_data(data)?;
        if checkpoint::dataset_fingerprint(data) != snap.data_fingerprint {
            return Err(FastFtError::InvalidData(format!(
                "checkpoint '{}' was written for a different dataset (fingerprint mismatch)",
                path.as_ref().display()
            )));
        }
        let best_fs = restore_feature_set(data, &snap)?;
        let session = Session::new(cfg)?;
        let mut driver = Driver::new(session.cfg(), data, session.runtime());
        driver.state.restore(&snap, session.cfg())?;
        driver.execute_from(
            &mut NullObserver,
            Instant::now(),
            snap.next_episode,
            snap.base_score,
            snap.best_score,
            best_fs,
            snap.records,
            snap.episode_best,
        )
    }
}

/// Degenerate-input guards shared by [`FastFt::fit`] and
/// [`FastFt::resume`]: inputs that would otherwise surface as panics or
/// NaN scores deep inside a run are rejected up front with a typed error.
pub(crate) fn validate_data(data: &Dataset) -> FastFtResult<()> {
    if data.n_features() == 0 {
        return Err(FastFtError::InvalidData(format!(
            "dataset '{}' has no feature columns",
            data.name
        )));
    }
    if data.n_rows() < 2 {
        return Err(FastFtError::InvalidData(format!(
            "dataset '{}' has {} row(s); cross-validated evaluation needs at least 2",
            data.name,
            data.n_rows()
        )));
    }
    if let Some(c) = data.features.iter().find(|c| c.values.iter().any(|v| !v.is_finite())) {
        return Err(FastFtError::InvalidData(format!(
            "feature column '{}' contains non-finite values; call Dataset::sanitize() first",
            c.name
        )));
    }
    if data.targets.iter().any(|t| !t.is_finite()) {
        return Err(FastFtError::InvalidData(format!(
            "dataset '{}' has non-finite target values",
            data.name
        )));
    }
    Ok(())
}

/// Rebuild the checkpointed best-so-far feature set: expressions are
/// re-parsed and paired with their stored column values over `data`.
fn restore_feature_set(data: &Dataset, snap: &checkpoint::Snapshot) -> FastFtResult<FeatureSet> {
    if snap.best_exprs.len() != snap.best_columns.len() {
        return Err(FastFtError::Parse(
            "checkpoint: best feature set has mismatched expression/column counts".into(),
        ));
    }
    let exprs: Vec<Expr> =
        snap.best_exprs.iter().map(|e| parse_expr(e)).collect::<FastFtResult<_>>()?;
    let columns: Vec<Column> = exprs
        .iter()
        .zip(&snap.best_columns)
        .map(|(e, values)| Column::new(e.to_string(), values.clone()))
        .collect();
    let mut fs = FeatureSet::from_original(data);
    fs.data = data.with_features(columns)?;
    fs.exprs = exprs;
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{SearchState, StageCx, TelemetryCollector};
    use fastft_ml::Evaluator;
    use fastft_runtime::Runtime;
    use fastft_tabular::datagen;

    fn small_data(name: &str, rows: usize, seed: u64) -> Dataset {
        let spec = datagen::by_name(name).unwrap();
        let mut d = datagen::generate_capped(spec, rows, seed);
        d.sanitize();
        d
    }

    fn tiny_cfg() -> FastFtConfig {
        FastFtConfig {
            episodes: 4,
            steps_per_episode: 4,
            cold_start_episodes: 2,
            retrain_every: 1,
            retrain_epochs: 8,
            evaluator: Evaluator { folds: 3, ..Evaluator::default() },
            ..FastFtConfig::default()
        }
    }

    #[test]
    fn fit_improves_or_matches_base_score() {
        let data = small_data("pima_indian", 200, 0);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(result.best_score >= result.base_score);
        assert!(result.best_score <= 1.0);
        assert_eq!(result.episode_best.len(), 4);
        assert_eq!(result.records.len(), 16);
        assert_eq!(result.stop_reason, StopReason::Completed);
        assert_eq!(result.telemetry.eval_faults, 0);
        assert_eq!(result.telemetry.quarantined, 0);
        assert_eq!(result.telemetry.weight_rollbacks, 0);
    }

    #[test]
    fn eval_budget_stops_cleanly_with_best_so_far() {
        let data = small_data("pima_indian", 120, 20);
        let mut cfg = tiny_cfg();
        cfg.max_downstream_evals = 4;
        let r = FastFt::new(cfg.clone()).fit(&data).unwrap();
        assert_eq!(r.stop_reason, StopReason::EvalBudget);
        // Checked at step boundaries, so the budget is exact: the base
        // evaluation plus three cold-start steps.
        assert_eq!(r.telemetry.downstream_evals, 4);
        assert!(r.best_score >= r.base_score);
        assert!(r.records.len() < cfg.episodes * cfg.steps_per_episode);
    }

    #[test]
    fn wall_clock_budget_stops_before_first_step() {
        let data = small_data("pima_indian", 120, 21);
        let mut cfg = tiny_cfg();
        cfg.max_wall_secs = 1e-9;
        let r = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(r.stop_reason, StopReason::WallClock);
        // The base evaluation already exceeds the budget, so the run stops
        // at the very first step boundary with the original features.
        assert!(r.records.is_empty());
        assert_eq!(r.best_score, r.base_score);
        assert_eq!(r.best_dataset.n_features(), data.n_features());
    }

    #[test]
    fn budget_stop_prefix_matches_unbudgeted_run() {
        // Budget checks must consume no RNG: the records produced before
        // the stop are bitwise identical to the full run's prefix.
        let data = small_data("pima_indian", 120, 22);
        let full = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.max_downstream_evals = 6;
        let stopped = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(stopped.stop_reason, StopReason::EvalBudget);
        assert!(stopped.records.len() < full.records.len());
        for (a, b) in stopped.records.iter().zip(&full.records) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn best_dataset_matches_best_exprs() {
        let data = small_data("pima_indian", 150, 1);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert_eq!(result.best_dataset.n_features(), result.best_exprs.len());
        for (c, e) in result.best_dataset.features.iter().zip(&result.best_exprs) {
            assert_eq!(c.name, e.to_string());
        }
    }

    #[test]
    fn cold_start_steps_are_all_evaluated() {
        let data = small_data("pima_indian", 150, 2);
        let cfg = tiny_cfg();
        let cold_steps = cfg.cold_start_episodes * cfg.steps_per_episode;
        let result = FastFt::new(cfg).fit(&data).unwrap();
        for r in &result.records[..cold_steps] {
            assert!(!r.predicted, "cold-start step {}.{} was predicted", r.episode, r.step);
        }
    }

    #[test]
    fn predictor_reduces_downstream_evals() {
        let data = small_data("pima_indian", 150, 3);
        let mut cfg = tiny_cfg();
        cfg.episodes = 6;
        let with = FastFt::new(cfg.clone()).fit(&data).unwrap();
        let without = FastFt::new(cfg.without_predictor()).fit(&data).unwrap();
        assert!(
            with.telemetry.downstream_evals < without.telemetry.downstream_evals,
            "with: {}, without: {}",
            with.telemetry.downstream_evals,
            without.telemetry.downstream_evals
        );
        // −PP scores every step downstream (+1 for the base score); repeat
        // feature sets are answered by the memo cache instead of re-running
        // cross-validation.
        assert_eq!(without.telemetry.downstream_evals + without.telemetry.cache_hits, 6 * 4 + 1);
    }

    #[test]
    fn memo_cache_returns_cached_score_without_reeval() {
        let data = small_data("pima_indian", 120, 13);
        let cfg = tiny_cfg();
        let rt = Runtime::new(1);
        let mut state = SearchState::new(&cfg, &data);
        let mut obs = crate::pipeline::NullObserver;
        let mut cx = StageCx {
            cfg: &cfg,
            original: &data,
            runtime: &rt,
            state: &mut state,
            observer: &mut obs,
        };
        let s1 = cx.evaluate_downstream(&data, Some("k")).unwrap();
        assert_eq!(cx.state.telemetry.downstream_evals, 1);
        assert_eq!(cx.state.telemetry.cache_hits, 0);
        let s2 = cx.evaluate_downstream(&data, Some("k")).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(cx.state.telemetry.downstream_evals, 1);
        assert_eq!(cx.state.telemetry.cache_hits, 1);
        // A distinct key is a miss.
        cx.evaluate_downstream(&data, Some("other")).unwrap();
        assert_eq!(cx.state.telemetry.downstream_evals, 2);
        assert_eq!(cx.state.telemetry.cache_hits, 1);
        // `None` bypasses the cache entirely.
        cx.evaluate_downstream(&data, None).unwrap();
        cx.evaluate_downstream(&data, None).unwrap();
        assert_eq!(cx.state.telemetry.downstream_evals, 4);
        assert_eq!(cx.state.telemetry.cache_hits, 1);
    }

    #[test]
    fn memo_cache_capacity_evicts_and_counts() {
        let data = small_data("pima_indian", 120, 17);
        let mut cfg = tiny_cfg();
        cfg.eval_cache_capacity = 2;
        let rt = Runtime::new(1);
        let mut state = SearchState::new(&cfg, &data);
        let mut obs = crate::pipeline::NullObserver;
        let mut cx = StageCx {
            cfg: &cfg,
            original: &data,
            runtime: &rt,
            state: &mut state,
            observer: &mut obs,
        };
        cx.evaluate_downstream(&data, Some("a")).unwrap();
        cx.evaluate_downstream(&data, Some("b")).unwrap();
        assert_eq!(cx.state.telemetry.cache_evictions, 0);
        // Third distinct key exceeds the capacity of 2: "a" is evicted.
        cx.evaluate_downstream(&data, Some("c")).unwrap();
        assert_eq!(cx.state.telemetry.cache_evictions, 1);
        // "b" survived (was more recent than "a") and hits.
        cx.evaluate_downstream(&data, Some("b")).unwrap();
        assert_eq!(cx.state.telemetry.cache_hits, 1);
        // "a" was evicted, so it re-evaluates (and evicts "c").
        cx.evaluate_downstream(&data, Some("a")).unwrap();
        assert_eq!(cx.state.telemetry.downstream_evals, 4);
        assert_eq!(cx.state.telemetry.cache_evictions, 2);
    }

    #[test]
    fn fit_rejects_invalid_config() {
        let data = small_data("pima_indian", 120, 14);
        let mut cfg = tiny_cfg();
        cfg.alpha = -3.0;
        let err = FastFt::new(cfg).fit(&data).unwrap_err();
        assert!(matches!(err, FastFtError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fit_rejects_empty_dataset() {
        use fastft_tabular::TaskType;
        let data =
            Dataset::new("empty", Vec::new(), vec![0.0, 1.0], TaskType::Classification, 2).unwrap();
        let err = FastFt::new(tiny_cfg()).fit(&data).unwrap_err();
        assert!(matches!(err, FastFtError::InvalidData(_)), "{err}");
    }

    #[test]
    fn fit_identical_across_thread_counts() {
        let data = small_data("pima_indian", 120, 15);
        let serial = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.threads = 4;
        let pooled = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(serial.base_score, pooled.base_score);
        assert_eq!(serial.best_score, pooled.best_score);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
        assert_eq!(serial.telemetry.downstream_evals, pooled.telemetry.downstream_evals);
        assert_eq!(serial.telemetry.cache_hits, pooled.telemetry.cache_hits);
    }

    #[test]
    fn batched_scoring_matches_unbatched() {
        let data = small_data("pima_indian", 120, 18);
        let batched = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.batched_scoring = false;
        cfg.prefix_cache_capacity = 0;
        let plain = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(batched.best_score, plain.best_score);
        assert_eq!(batched.records.len(), plain.records.len());
        for (a, b) in batched.records.iter().zip(&plain.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.novelty, b.novelty);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
        assert_eq!(batched.telemetry.downstream_evals, plain.telemetry.downstream_evals);
        let t = batched.telemetry;
        assert!(t.score_batches > 0, "warm steps should batch");
        assert!(t.prefix_hits + t.prefix_misses > 0, "cached scoring should run");
        assert_eq!(t.batch_size_hist.iter().sum::<u64>(), t.score_batches);
        let p = plain.telemetry;
        assert_eq!(p.score_batches, 0);
        assert_eq!(p.prefix_hits + p.prefix_misses, 0);
    }

    #[test]
    fn minibatch_run_identical_across_thread_counts() {
        let data = small_data("pima_indian", 120, 19);
        let mut cfg = tiny_cfg();
        cfg.minibatch = 4;
        let serial = FastFt::new(cfg.clone()).fit(&data).unwrap();
        cfg.threads = 4;
        let pooled = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(serial.best_score, pooled.best_score);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
    }

    #[test]
    fn telemetry_times_are_consistent() {
        let data = small_data("pima_indian", 120, 4);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let t = result.telemetry;
        assert!(t.evaluation_secs > 0.0);
        assert!(t.optimization_secs > 0.0);
        assert!(t.total_secs >= t.evaluation_secs);
        assert!(t.downstream_evals >= 1);
    }

    #[test]
    fn ablations_run() {
        let data = small_data("pima_indian", 120, 5);
        for cfg in [
            tiny_cfg().without_novelty(),
            tiny_cfg().without_critical_replay(),
            tiny_cfg().without_predictor(),
        ] {
            let r = FastFt::new(cfg).fit(&data).unwrap();
            assert!(r.best_score >= r.base_score);
        }
    }

    #[test]
    fn q_framework_runs() {
        use crate::agents::RlKind;
        use fastft_rl::QKind;
        let data = small_data("pima_indian", 120, 6);
        let mut cfg = tiny_cfg();
        cfg.rl = RlKind::Q(QKind::DuelingDqn);
        let r = FastFt::new(cfg).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
    }

    #[test]
    fn regression_task_runs() {
        let data = small_data("openml_620", 150, 7);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn detection_task_runs() {
        let data = small_data("thyroid", 400, 8);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data("pima_indian", 120, 9);
        let a = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let b = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.score, rb.score);
            assert_eq!(ra.new_exprs, rb.new_exprs);
        }
    }

    #[test]
    fn episode_best_is_monotone() {
        let data = small_data("pima_indian", 120, 10);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        for w in r.episode_best.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn feature_cap_respected() {
        let data = small_data("pima_indian", 120, 11);
        let cfg = tiny_cfg();
        let cap = cfg.max_features(data.n_features());
        let r = FastFt::new(cfg).fit(&data).unwrap();
        for rec in &r.records {
            assert!(rec.n_features <= cap, "step has {} features > cap {cap}", rec.n_features);
        }
        assert!(r.best_dataset.n_features() <= cap);
    }

    #[test]
    fn novelty_distances_recorded() {
        let data = small_data("pima_indian", 120, 12);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        // First step of the run is maximally novel.
        assert_eq!(r.records[0].novelty_distance, 1.0);
        assert!(r.records.iter().all(|rec| rec.novelty_distance >= 0.0));
        assert!(r.records.iter().any(|rec| rec.new_combination));
    }

    #[test]
    fn session_run_matches_fit() {
        let data = small_data("pima_indian", 120, 16);
        let via_fit = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let session = Session::new(tiny_cfg()).unwrap();
        let via_session = session.run(&data).unwrap();
        assert_eq!(via_fit.base_score, via_session.base_score);
        assert_eq!(via_fit.best_score, via_session.best_score);
        assert_eq!(via_fit.records, via_session.records);
    }

    #[test]
    fn session_runs_multiple_datasets_on_shared_pool() {
        let a = small_data("pima_indian", 120, 23);
        let b = small_data("openml_620", 120, 24);
        let session = Session::new(tiny_cfg()).unwrap();
        let results = session.run_all(std::slice::from_ref(&a));
        let solo = session.run(&a).unwrap();
        assert_eq!(results.len(), 1);
        // Runs are independent: batched and solo runs agree exactly.
        let batched = results[0].as_ref().unwrap();
        assert_eq!(batched.best_score, solo.best_score);
        assert_eq!(batched.records, solo.records);
        // A second, different dataset runs over the same pool.
        let rb = session.run(&b).unwrap();
        assert!(rb.best_score >= rb.base_score);
    }

    #[test]
    fn observer_counters_match_telemetry() {
        let data = small_data("pima_indian", 120, 25);
        let cfg = tiny_cfg();
        let session = Session::new(cfg.clone()).unwrap();
        let mut collector = TelemetryCollector::new();
        let r = session.run_observed(&data, &mut collector).unwrap();
        let t = collector.telemetry();
        assert_eq!(t.downstream_evals, r.telemetry.downstream_evals);
        assert_eq!(t.cache_hits, r.telemetry.cache_hits);
        assert_eq!(t.cache_evictions, r.telemetry.cache_evictions);
        assert_eq!(t.predictor_calls, r.telemetry.predictor_calls);
        assert_eq!(t.eval_faults, r.telemetry.eval_faults);
        assert_eq!(t.quarantined, r.telemetry.quarantined);
        assert_eq!(t.weight_rollbacks, r.telemetry.weight_rollbacks);
        assert_eq!(collector.steps(), r.records.len());
        assert_eq!(collector.episodes(), cfg.episodes);
        assert_eq!(collector.checkpoints(), 0);
    }

    #[test]
    fn observers_are_passive() {
        // Attaching an observer must not perturb the decision stream.
        let data = small_data("pima_indian", 120, 26);
        let session = Session::new(tiny_cfg()).unwrap();
        let plain = session.run(&data).unwrap();
        let mut collector = TelemetryCollector::new();
        let observed = session.run_observed(&data, &mut collector).unwrap();
        assert_eq!(plain.best_score, observed.best_score);
        assert_eq!(plain.records, observed.records);
    }
}
