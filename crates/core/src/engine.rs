//! The FASTFT engine: cold start (Algorithm 1) and effective exploration
//! with continual training (Algorithm 2).
//!
//! One [`FastFt::fit`] call runs the full pipeline on a dataset:
//!
//! 1. **Cold start** — the cascading agents explore with real downstream
//!    evaluation as reward (Eq. 5), filling the replay buffer and the
//!    evaluation-component training set.
//! 2. **Component training** — the Performance Predictor (Eq. 3) and
//!    Novelty Estimator (Eq. 4) train on the collected sequences.
//! 3. **Effective exploration** — rewards come from the evaluation
//!    components (Eq. 6); downstream evaluation only triggers for
//!    top-α-percentile predicted performance or top-β-percentile novelty.
//!    Critical memories replay by TD-error priority (Eq. 10), and the
//!    components fine-tune every `retrain_every` episodes.

use crate::agents::{CascadingAgents, Decision, MemoryUnit, Role};
use crate::checkpoint;
use crate::cluster::{cluster_features, MiCache};
use crate::config::FastFtConfig;
use crate::expr::Expr;
use crate::lru::LruCache;
use crate::novelty::NoveltyEstimator;
use crate::novelty_metric::NoveltyTracker;
use crate::ops::Op;
use crate::parse::parse_expr;
use crate::predictor::{PerformancePredictor, PredictorConfig};
use crate::scoring::{ScoreStats, BATCH_HIST_BUCKETS};
use crate::sequence::{canonical_key, encode_feature_set, TokenVocab};
use crate::state;
use crate::transform::FeatureSet;
use fastft_rl::schedule::ExpDecay;
use fastft_rl::{PrioritizedReplay, UniformReplay};
use fastft_runtime::Runtime;
use fastft_tabular::rngx;
use fastft_tabular::rngx::StdRng;
use fastft_tabular::{Column, Dataset};
use fastft_tabular::{FastFtError, FastFtResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Instant;

/// Per-step trace of a run (Figs. 14–15, debugging, case studies).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Episode index.
    pub episode: usize,
    /// Step within the episode.
    pub step: usize,
    /// Reward fed to the agents.
    pub reward: f64,
    /// Performance associated with the step (predicted or evaluated).
    pub score: f64,
    /// Whether `score` came from the predictor rather than a downstream run.
    pub predicted: bool,
    /// RND novelty of the step's sequence (0 when the estimator is off).
    pub novelty: f64,
    /// §VI-H novelty distance of the feature-set embedding.
    pub novelty_distance: f64,
    /// Whether the feature combination was never generated before.
    pub new_combination: bool,
    /// Feature count after the step.
    pub n_features: usize,
    /// Traceable expressions added this step.
    pub new_exprs: Vec<String>,
}

/// Wall-clock decomposition matching Table II's rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct Telemetry {
    /// Agent/critic updates ("Optimization").
    pub optimization_secs: f64,
    /// Predictor/estimator forward passes and training ("Estimation").
    pub estimation_secs: f64,
    /// Downstream-task evaluations ("Evaluation").
    pub evaluation_secs: f64,
    /// Whole `fit` duration ("Overall").
    pub total_secs: f64,
    /// Number of downstream evaluations performed.
    pub downstream_evals: usize,
    /// Number of predictor/estimator inference calls.
    pub predictor_calls: usize,
    /// Downstream evaluations answered from the canonical-key memo cache
    /// instead of re-running cross-validation.
    pub cache_hits: usize,
    /// Memo-cache entries evicted to respect
    /// [`FastFtConfig::eval_cache_capacity`].
    pub cache_evictions: usize,
    /// Wall time inside Performance-Predictor inference (subset of
    /// `estimation_secs`).
    pub predictor_secs: f64,
    /// Wall time inside Novelty-Estimator inference (subset of
    /// `estimation_secs`).
    pub novelty_secs: f64,
    /// Scoring calls answered from a cached encoder prefix state.
    pub prefix_hits: u64,
    /// Scoring calls that encoded their sequence from scratch.
    pub prefix_misses: u64,
    /// Prefix-cache states evicted to respect
    /// [`FastFtConfig::prefix_cache_capacity`].
    pub prefix_evictions: u64,
    /// Batched scoring calls issued by the step loop.
    pub score_batches: u64,
    /// Histogram of scoring batch sizes (bucket `i` = size `i + 1`, last
    /// bucket = `≥ 8`).
    pub batch_size_hist: [u64; BATCH_HIST_BUCKETS],
    /// Downstream evaluations that faulted — panicked, returned a typed
    /// evaluation error, or produced a non-finite score — counting retries.
    pub eval_faults: usize,
    /// Candidates quarantined after exhausting
    /// [`FastFtConfig::eval_retries`] attempts.
    pub quarantined: usize,
    /// Component-training rounds rolled back because they panicked or left
    /// non-finite weights (one count per rolled-back component).
    pub weight_rollbacks: usize,
}

/// Why a run returned (all variants return the best-so-far result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All configured episodes ran.
    Completed,
    /// [`FastFtConfig::max_wall_secs`] was exhausted at a step boundary.
    WallClock,
    /// [`FastFtConfig::max_downstream_evals`] was exhausted at a step
    /// boundary.
    EvalBudget,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Completed => "completed",
            StopReason::WallClock => "wall-clock budget",
            StopReason::EvalBudget => "evaluation budget",
        })
    }
}

/// Result of a FASTFT run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Downstream score of the original feature set.
    pub base_score: f64,
    /// Best downstream-evaluated score found.
    pub best_score: f64,
    /// The dataset achieving `best_score`.
    pub best_dataset: Dataset,
    /// Traceable expressions of the best feature set.
    pub best_exprs: Vec<Expr>,
    /// Per-step trace.
    pub records: Vec<StepRecord>,
    /// Best-so-far downstream score after each episode (Fig. 7 curves).
    pub episode_best: Vec<f64>,
    /// Timing decomposition (Table II).
    pub telemetry: Telemetry,
    /// Why the run returned (completed, or which budget stopped it).
    pub stop_reason: StopReason,
}

enum Memory {
    Prioritized(PrioritizedReplay<MemoryUnit>),
    Uniform(UniformReplay<MemoryUnit>),
}

impl Memory {
    fn push(&mut self, mem: MemoryUnit, delta: f64) {
        match self {
            Memory::Prioritized(b) => b.push(mem, delta),
            Memory::Uniform(b) => b.push(mem),
        }
    }

    fn sample<'a>(&'a self, rng: &mut StdRng) -> Option<&'a MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.sample(rng),
            Memory::Uniform(b) => b.sample(rng),
        }
    }

    fn sample_uniform<'a>(&'a self, rng: &mut StdRng) -> Option<&'a MemoryUnit> {
        match self {
            Memory::Prioritized(b) => b.sample_uniform(rng),
            Memory::Uniform(b) => b.sample(rng),
        }
    }

    fn len(&self) -> usize {
        match self {
            Memory::Prioritized(b) => b.len(),
            Memory::Uniform(b) => b.len(),
        }
    }
}

/// The FASTFT framework.
#[derive(Debug, Clone)]
pub struct FastFt {
    /// Run configuration.
    pub cfg: FastFtConfig,
}

impl FastFt {
    /// Create with a configuration.
    pub fn new(cfg: FastFtConfig) -> Self {
        FastFt { cfg }
    }

    /// Run the full pipeline on `data` and return the best transformed
    /// dataset found, with traces and timing.
    ///
    /// # Errors
    ///
    /// Returns [`FastFtError::InvalidConfig`] if the configuration fails
    /// [`FastFtConfig::validate`], [`FastFtError::InvalidData`] if `data`
    /// is degenerate (no feature columns, fewer than two rows, or
    /// non-finite values), and [`FastFtError::Evaluation`] if the
    /// downstream evaluator cannot score the *original* feature set.
    /// Candidate evaluations that fail mid-run are fault-isolated and
    /// quarantined instead of aborting the run.
    pub fn fit(&self, data: &Dataset) -> FastFtResult<RunResult> {
        self.cfg.validate()?;
        validate_data(data)?;
        Run::new(&self.cfg, data).execute()
    }

    /// Continue a run from a checkpoint written via
    /// [`FastFtConfig::checkpoint_every`]. `data` must be the dataset the
    /// checkpointed run was fitted on (verified by fingerprint).
    ///
    /// The resumed run is **bitwise identical** to the uninterrupted one:
    /// the same decisions, scores, records and deterministic telemetry
    /// counters come out, because the checkpoint captures the RNG stream,
    /// all network weights with optimiser state, the replay buffer and the
    /// memo cache. Only wall times and encoder prefix-cache hit counters
    /// differ (those caches restart cold).
    ///
    /// # Errors
    ///
    /// [`FastFtError::Io`] if the file cannot be read,
    /// [`FastFtError::Parse`] if it is not a valid checkpoint, and
    /// [`FastFtError::InvalidData`] if `data` does not match the
    /// checkpoint's dataset fingerprint.
    pub fn resume(path: impl AsRef<Path>, data: &Dataset) -> FastFtResult<RunResult> {
        Self::resume_with(path, data, |_| {})
    }

    /// [`resume`](FastFt::resume) with a configuration override hook,
    /// applied before the run restarts — the supported use is adjusting
    /// run budgets, checkpoint cadence or thread count (e.g. lifting
    /// `max_downstream_evals` to let a budget-stopped run finish).
    /// Changing learning hyperparameters mid-run voids the bitwise-parity
    /// guarantee.
    pub fn resume_with(
        path: impl AsRef<Path>,
        data: &Dataset,
        override_cfg: impl FnOnce(&mut FastFtConfig),
    ) -> FastFtResult<RunResult> {
        let (mut cfg, snap) = checkpoint::read(path.as_ref())?;
        override_cfg(&mut cfg);
        cfg.validate()?;
        validate_data(data)?;
        if checkpoint::dataset_fingerprint(data) != snap.data_fingerprint {
            return Err(FastFtError::InvalidData(format!(
                "checkpoint '{}' was written for a different dataset (fingerprint mismatch)",
                path.as_ref().display()
            )));
        }
        let best_fs = restore_feature_set(data, &snap)?;
        let mut run = Run::new(&cfg, data);
        run.restore(&snap)?;
        run.execute_from(
            Instant::now(),
            snap.next_episode,
            snap.base_score,
            snap.best_score,
            best_fs,
            snap.records,
            snap.episode_best,
        )
    }
}

/// Degenerate-input guards shared by [`FastFt::fit`] and
/// [`FastFt::resume`]: inputs that would otherwise surface as panics or
/// NaN scores deep inside a run are rejected up front with a typed error.
fn validate_data(data: &Dataset) -> FastFtResult<()> {
    if data.n_features() == 0 {
        return Err(FastFtError::InvalidData(format!(
            "dataset '{}' has no feature columns",
            data.name
        )));
    }
    if data.n_rows() < 2 {
        return Err(FastFtError::InvalidData(format!(
            "dataset '{}' has {} row(s); cross-validated evaluation needs at least 2",
            data.name,
            data.n_rows()
        )));
    }
    if let Some(c) = data.features.iter().find(|c| c.values.iter().any(|v| !v.is_finite())) {
        return Err(FastFtError::InvalidData(format!(
            "feature column '{}' contains non-finite values; call Dataset::sanitize() first",
            c.name
        )));
    }
    if data.targets.iter().any(|t| !t.is_finite()) {
        return Err(FastFtError::InvalidData(format!(
            "dataset '{}' has non-finite target values",
            data.name
        )));
    }
    Ok(())
}

/// Rebuild the checkpointed best-so-far feature set: expressions are
/// re-parsed and paired with their stored column values over `data`.
fn restore_feature_set(data: &Dataset, snap: &checkpoint::Snapshot) -> FastFtResult<FeatureSet> {
    if snap.best_exprs.len() != snap.best_columns.len() {
        return Err(FastFtError::Parse(
            "checkpoint: best feature set has mismatched expression/column counts".into(),
        ));
    }
    let exprs: Vec<Expr> =
        snap.best_exprs.iter().map(|e| parse_expr(e)).collect::<FastFtResult<_>>()?;
    let columns: Vec<Column> = exprs
        .iter()
        .zip(&snap.best_columns)
        .map(|(e, values)| Column::new(e.to_string(), values.clone()))
        .collect();
    let mut fs = FeatureSet::from_original(data);
    fs.data = data.with_features(columns)?;
    fs.exprs = exprs;
    Ok(fs)
}

/// Percentile of a sample (linear interpolation, q in `[0,1]`).
fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    fastft_tabular::stats::percentile_sorted(&sorted, q)
}

/// Cap on the quarantine set: plenty for any realistic fault pattern,
/// while bounding memory if a dataset makes *every* candidate fault.
const QUARANTINE_CAPACITY: usize = 256;

struct Run<'a> {
    cfg: &'a FastFtConfig,
    original: &'a Dataset,
    vocab: TokenVocab,
    agents: CascadingAgents,
    predictor: PerformancePredictor,
    novelty: NoveltyEstimator,
    memory: Memory,
    tracker: NoveltyTracker,
    rng: StdRng,
    runtime: Runtime,
    telemetry: Telemetry,
    // Memoised downstream scores keyed by the canonical (order-invariant)
    // feature-set key: revisiting a feature combination never pays for
    // cross-validation twice within a run. Capacity-capped LRU so long
    // runs cannot grow it without limit (`cfg.eval_cache_capacity`).
    eval_cache: LruCache<String, f64>,
    // Downstream-evaluated (sequence, score) pairs for component training.
    eval_history: Vec<(Vec<usize>, f64)>,
    // Rolling histories for the α/β percentile triggers.
    pred_history: Vec<f64>,
    nov_history: Vec<f64>,
    // Welford running stats of raw novelty, for intrinsic-reward
    // normalisation (standard RND practice; DESIGN.md §4).
    nov_count: usize,
    nov_mean: f64,
    nov_m2: f64,
    global_step: usize,
    // Prefix-cache/batching counters accumulated before the last resume:
    // the caches themselves restart cold, so end-of-run telemetry is this
    // baseline merged with the fresh caches' counters.
    stats_baseline: ScoreStats,
    // Canonical keys of candidates whose downstream evaluation kept
    // faulting. LRU-bounded so pathological data cannot grow it without
    // limit; quarantined candidates are scored by the predictor instead.
    quarantine: LruCache<String, ()>,
}

impl<'a> Run<'a> {
    fn new(cfg: &'a FastFtConfig, data: &'a Dataset) -> Self {
        let vocab = TokenVocab::new(data.n_features());
        let pc = PredictorConfig {
            dim: 32,
            encoder: cfg.encoder,
            lr: cfg.lr,
            prefix_cache: cfg.prefix_cache_capacity,
        };
        let mut agents = CascadingAgents::new(cfg.rl, cfg.agent_hidden, cfg.agent_lr, cfg.seed);
        agents.gamma = cfg.gamma;
        let memory = if cfg.prioritized_replay {
            Memory::Prioritized(PrioritizedReplay::new(cfg.memory_size))
        } else {
            Memory::Uniform(UniformReplay::new(cfg.memory_size))
        };
        let runtime =
            if cfg.threads == 0 { Runtime::from_env() } else { Runtime::new(cfg.threads) };
        Run {
            cfg,
            original: data,
            vocab,
            agents,
            predictor: PerformancePredictor::new(vocab.size(), pc, cfg.seed.wrapping_add(11)),
            novelty: NoveltyEstimator::new(vocab.size(), pc, cfg.seed.wrapping_add(23)),
            memory,
            tracker: NoveltyTracker::new(),
            rng: rngx::rng(cfg.seed.wrapping_add(37)),
            runtime,
            telemetry: Telemetry::default(),
            eval_cache: LruCache::new(cfg.eval_cache_capacity),
            eval_history: Vec::new(),
            pred_history: Vec::new(),
            nov_history: Vec::new(),
            nov_count: 0,
            nov_mean: 0.0,
            nov_m2: 0.0,
            global_step: 0,
            stats_baseline: ScoreStats::default(),
            quarantine: LruCache::new(QUARANTINE_CAPACITY),
        }
    }

    /// Evaluate `data` downstream, memoised on the canonical feature-set
    /// key when one is supplied. Cache hits return the stored score without
    /// re-running cross-validation (and count as `cache_hits`, not
    /// `downstream_evals`); `None` bypasses the cache entirely.
    fn evaluate_downstream(&mut self, data: &Dataset, key: Option<&str>) -> FastFtResult<f64> {
        if let Some(k) = key {
            if let Some(&score) = self.eval_cache.get(k) {
                self.telemetry.cache_hits += 1;
                return Ok(score);
            }
        }
        let t0 = Instant::now();
        let score = self.cfg.evaluator.evaluate_with(&self.runtime, data)?;
        self.telemetry.evaluation_secs += t0.elapsed().as_secs_f64();
        self.telemetry.downstream_evals += 1;
        if let Some(k) = key {
            if self.eval_cache.insert(k.to_owned(), score) {
                self.telemetry.cache_evictions += 1;
            }
        }
        Ok(score)
    }

    /// Fault-isolated downstream evaluation of a candidate feature set.
    ///
    /// Panics inside the evaluator, typed evaluation errors and non-finite
    /// scores all count as faults (`eval_faults`): the evaluation retries
    /// up to [`FastFtConfig::eval_retries`] more times and then the
    /// candidate is quarantined (`None`), leaving the step loop to fall
    /// back on the predictor. Quarantine shares the memo cache's canonical
    /// key, so a quarantined feature combination is never re-attempted
    /// while it remains in the bounded set. The *base* evaluation does not
    /// go through here — a dataset whose original features cannot be
    /// scored is a configuration problem and propagates as a typed error.
    fn evaluate_candidate(&mut self, data: &Dataset, key: &str) -> Option<f64> {
        if self.quarantine.get(key).is_some() {
            return None;
        }
        if let Some(&score) = self.eval_cache.get(key) {
            self.telemetry.cache_hits += 1;
            return Some(score);
        }
        for _attempt in 0..=self.cfg.eval_retries {
            let t0 = Instant::now();
            let evaluator = &self.cfg.evaluator;
            let runtime = &self.runtime;
            let outcome = catch_unwind(AssertUnwindSafe(|| evaluator.evaluate_with(runtime, data)));
            self.telemetry.evaluation_secs += t0.elapsed().as_secs_f64();
            self.telemetry.downstream_evals += 1;
            match outcome {
                Ok(Ok(score)) if score.is_finite() => {
                    if self.eval_cache.insert(key.to_owned(), score) {
                        self.telemetry.cache_evictions += 1;
                    }
                    return Some(score);
                }
                // Panic, typed evaluation error or non-finite score: count
                // the fault and retry.
                _ => self.telemetry.eval_faults += 1,
            }
        }
        self.telemetry.quarantined += 1;
        self.quarantine.insert(key.to_owned(), ());
        None
    }

    /// Predictor-only score for a quarantined candidate, so the episode
    /// keeps moving with a finite reward.
    fn predict_fallback(&mut self, seq: &[usize]) -> f64 {
        let t0 = Instant::now();
        let pred = if self.cfg.batched_scoring {
            self.predictor.predict_cached(seq)
        } else {
            self.predictor.predict(seq)
        };
        let elapsed = t0.elapsed().as_secs_f64();
        self.telemetry.predictor_secs += elapsed;
        self.telemetry.estimation_secs += elapsed;
        self.telemetry.predictor_calls += 1;
        pred
    }

    /// Which run budget, if any, is exhausted at this step boundary. Pure
    /// bookkeeping — no RNG is consumed — so a budget-stopped run stays on
    /// the same decision stream as an uninterrupted one up to the stop.
    fn budget_reason(&self, t_start: Instant, prior_secs: f64) -> Option<StopReason> {
        if self.cfg.max_downstream_evals > 0
            && self.telemetry.downstream_evals >= self.cfg.max_downstream_evals
        {
            return Some(StopReason::EvalBudget);
        }
        if self.cfg.max_wall_secs > 0.0
            && prior_secs + t_start.elapsed().as_secs_f64() >= self.cfg.max_wall_secs
        {
            return Some(StopReason::WallClock);
        }
        None
    }

    /// Should this (predicted performance, novelty) pair trigger a real
    /// downstream evaluation? (§III-D "Adaptively Adopt Two Strategies".)
    fn trigger_downstream(&self, pred: f64, nov: f64) -> bool {
        // Until enough history exists the percentiles are meaningless;
        // anchor with real evaluations.
        const WARMUP: usize = 8;
        if self.pred_history.len() < WARMUP {
            return self.cfg.alpha > 0.0 || self.cfg.beta > 0.0;
        }
        // Strict inequality: sequences are often scored identically early
        // on, and `>=` against a tied percentile would fire on every step.
        let by_perf = self.cfg.alpha > 0.0
            && pred > percentile(&self.pred_history, 1.0 - self.cfg.alpha / 100.0);
        let by_nov = self.cfg.use_novelty
            && self.cfg.beta > 0.0
            && nov > percentile(&self.nov_history, 1.0 - self.cfg.beta / 100.0);
        by_perf || by_nov
    }

    /// Normalise a raw RND novelty into a differential bonus: the running
    /// z-score, clamped to ±3. This keeps Eq. 6's novelty term on the same
    /// scale as performance differences regardless of the frozen target's
    /// output magnitude, and — unlike a raw magnitude — rewards *relative*
    /// novelty: above-average novelty earns a positive bonus, familiar
    /// territory a negative one (standard intrinsic-reward normalisation in
    /// the RND literature; DESIGN.md §4).
    fn normalize_novelty(&mut self, nov: f64) -> f64 {
        self.nov_count += 1;
        let delta = nov - self.nov_mean;
        self.nov_mean += delta / self.nov_count as f64;
        self.nov_m2 += delta * (nov - self.nov_mean);
        if self.nov_count < 5 {
            return 0.0;
        }
        let std = (self.nov_m2 / (self.nov_count - 1) as f64).sqrt();
        ((nov - self.nov_mean) / (std + 1e-8)).clamp(-3.0, 3.0)
    }

    fn execute(mut self) -> FastFtResult<RunResult> {
        let t_start = Instant::now();
        let base_fs = FeatureSet::from_original(self.original);
        let base_key = canonical_key(&base_fs.exprs);
        let base_score = self.evaluate_downstream(self.original, Some(&base_key))?;
        self.execute_from(t_start, 0, base_score, base_score, base_fs, Vec::new(), Vec::new())
    }

    /// The episode loop, entered at `start_episode` — 0 for a fresh run,
    /// the checkpointed boundary for a resumed one. All best-so-far state
    /// arrives as arguments so both paths share one code path (and one
    /// decision stream).
    #[allow(clippy::too_many_arguments)]
    fn execute_from(
        mut self,
        t_start: Instant,
        start_episode: usize,
        base_score: f64,
        mut best_score: f64,
        mut best_fs: FeatureSet,
        mut records: Vec<StepRecord>,
        mut episode_best: Vec<f64>,
    ) -> FastFtResult<RunResult> {
        // Wall time accumulated before a resume; 0 for a fresh run.
        let prior_secs = self.telemetry.total_secs;
        let novelty_weight =
            ExpDecay { start: self.cfg.eps_start, end: self.cfg.eps_end, m: self.cfg.decay_m };
        let max_features = self.cfg.max_features(self.original.n_features());
        let mut stop = StopReason::Completed;

        'episodes: for episode in start_episode..self.cfg.episodes {
            let cold = episode < self.cfg.cold_start_episodes || !self.cfg.use_predictor;
            let mut fs = FeatureSet::from_original(self.original);
            let mut prev_v = base_score;
            let mut prev_seq = encode_feature_set(&fs.exprs, &self.vocab, self.cfg.max_seq_len);
            let mut prev_state = state::rep_overall(&fs.data);
            // Pending memory from the previous step, waiting for its
            // next-step head candidates before insertion.
            let mut pending: Option<MemoryUnit> = None;

            for step in 0..self.cfg.steps_per_episode {
                if let Some(reason) = self.budget_reason(t_start, prior_secs) {
                    stop = reason;
                    break 'episodes;
                }
                self.global_step += 1;
                // --- agent decisions -----------------------------------
                let t_opt = Instant::now();
                let cache = MiCache::compute_with(&self.runtime, &fs.data, self.cfg.mi_bins);
                let clusters = cluster_features(&fs.data, &cache, self.cfg.cluster_threshold, 2);
                let overall = prev_state.clone();
                let cluster_reps: Vec<Vec<f64>> =
                    clusters.iter().map(|c| state::rep_cluster(&fs.data, c)).collect();
                let head_cands: Vec<Vec<f64>> =
                    cluster_reps.iter().map(|cr| state::head_candidate(cr, &overall)).collect();
                // Complete the previous step's memory with this step's head
                // candidates, then insert and learn.
                if let Some(mut mem) = pending.take() {
                    mem.next_head_candidates = head_cands.clone();
                    self.store_and_learn(mem);
                }
                let head_idx = self.agents.select(Role::Head, &head_cands, &mut self.rng);
                let head_rep = &cluster_reps[head_idx];
                let op_cands: Vec<Vec<f64>> =
                    Op::ALL.iter().map(|&op| state::op_candidate(head_rep, &overall, op)).collect();
                let op_idx = self.agents.select(Role::Op, &op_cands, &mut self.rng);
                let op = Op::ALL[op_idx];
                let tail_choice = if op.is_binary() {
                    let tail_cands: Vec<Vec<f64>> = cluster_reps
                        .iter()
                        .map(|cr| state::tail_candidate(head_rep, &overall, op, cr))
                        .collect();
                    let tail_idx = self.agents.select(Role::Tail, &tail_cands, &mut self.rng);
                    Some((tail_cands, tail_idx))
                } else {
                    None
                };
                self.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();

                // --- group-wise crossing -------------------------------
                let tail_members = tail_choice.as_ref().map(|(_, i)| clusters[*i].as_slice());
                let generated = fs.cross(
                    &clusters[head_idx],
                    op,
                    tail_members,
                    self.cfg.max_new_per_step,
                    &mut self.rng,
                );
                let new_exprs: Vec<String> = generated.iter().map(|(e, _)| e.to_string()).collect();
                let produced = !generated.is_empty();
                fs.extend(generated);
                fs.select_top(max_features, self.cfg.mi_bins);

                let seq = encode_feature_set(&fs.exprs, &self.vocab, self.cfg.max_seq_len);
                let next_state = state::rep_overall(&fs.data);
                let key = canonical_key(&fs.exprs);
                let (nov_dist, new_comb) = self.tracker.observe(next_state.clone(), &key);

                // --- scoring and reward --------------------------------
                let (v, reward, predicted, nov) = if cold {
                    // Fault-isolated real evaluation; a quarantined
                    // candidate falls back to the predictor (`predicted`
                    // keeps it out of best tracking and training history).
                    let (v, predicted) = match self.evaluate_candidate(&fs.data, &key) {
                        Some(v) => {
                            self.eval_history.push((seq.clone(), v));
                            (v, false)
                        }
                        None => (self.predict_fallback(&seq), true),
                    };
                    // Eq. 5 (plus the novelty bonus when the estimator is
                    // active and trained; during true cold start the
                    // estimator is untrained, so only the −PP path adds it).
                    let mut r = v - prev_v;
                    let mut nov = 0.0;
                    if self.cfg.use_novelty && episode >= self.cfg.cold_start_episodes {
                        let t_est = Instant::now();
                        nov = if self.cfg.batched_scoring {
                            self.novelty.novelty_cached(&seq)
                        } else {
                            self.novelty.novelty(&seq)
                        };
                        let elapsed = t_est.elapsed().as_secs_f64();
                        self.telemetry.novelty_secs += elapsed;
                        self.telemetry.estimation_secs += elapsed;
                        self.telemetry.predictor_calls += 1;
                        let normed = self.normalize_novelty(nov);
                        r += novelty_weight.at(self.global_step) * normed;
                        self.nov_history.push(nov);
                    }
                    (v, r, predicted, nov)
                } else {
                    // Batched scoring runs the same fused kernels in the
                    // same summation order as the per-sequence path, so both
                    // branches are bitwise identical
                    // (`batched_scoring_matches_unbatched`).
                    let t_pred = Instant::now();
                    let (pred, pred_prev) = if self.cfg.batched_scoring {
                        let mut out = [0.0; 2];
                        self.predictor.predict_batch(&[&seq, &prev_seq], &mut out);
                        (out[0], out[1])
                    } else {
                        (self.predictor.predict(&seq), self.predictor.predict(&prev_seq))
                    };
                    let pred_elapsed = t_pred.elapsed().as_secs_f64();
                    self.telemetry.predictor_secs += pred_elapsed;
                    let t_nov = Instant::now();
                    let nov = if !self.cfg.use_novelty {
                        0.0
                    } else if self.cfg.batched_scoring {
                        self.novelty.novelty_cached(&seq)
                    } else {
                        self.novelty.novelty(&seq)
                    };
                    let nov_elapsed = t_nov.elapsed().as_secs_f64();
                    self.telemetry.novelty_secs += nov_elapsed;
                    self.telemetry.estimation_secs += pred_elapsed + nov_elapsed;
                    self.telemetry.predictor_calls += 2;
                    // Eq. 6, with the novelty bonus std-normalised so the
                    // two terms share a scale.
                    let mut r = pred - pred_prev;
                    if self.cfg.use_novelty {
                        let normed = self.normalize_novelty(nov);
                        r += novelty_weight.at(self.global_step) * normed;
                        self.nov_history.push(nov);
                    }
                    let trigger = self.trigger_downstream(pred, nov);
                    self.pred_history.push(pred);
                    if trigger {
                        // Fault-isolated: a quarantined candidate falls
                        // back to its already-computed prediction.
                        match self.evaluate_candidate(&fs.data, &key) {
                            Some(v) => {
                                self.eval_history.push((seq.clone(), v));
                                (v, r, false, nov)
                            }
                            None => (pred, r, true, nov),
                        }
                    } else {
                        (pred, r, true, nov)
                    }
                };
                let reward = if produced { reward } else { reward - 0.05 };

                // Best tracking: only real downstream evaluations count.
                if !predicted && v > best_score {
                    best_score = v;
                    best_fs = fs.clone();
                }

                // --- memory --------------------------------------------
                let mem = MemoryUnit {
                    state: prev_state.clone(),
                    next_state: next_state.clone(),
                    reward,
                    head: Decision { candidates: head_cands, action: head_idx },
                    op: Decision { candidates: op_cands, action: op_idx },
                    tail: tail_choice
                        .map(|(cands, idx)| Decision { candidates: cands, action: idx }),
                    next_head_candidates: Vec::new(),
                    seq: seq.clone(),
                    perf: v,
                };
                pending = Some(mem);

                records.push(StepRecord {
                    episode,
                    step,
                    reward,
                    score: v,
                    predicted,
                    novelty: nov,
                    novelty_distance: nov_dist,
                    new_combination: new_comb,
                    n_features: fs.n_features(),
                    new_exprs,
                });

                prev_v = v;
                prev_seq = seq;
                prev_state = next_state;
            }
            // Episode end: flush the pending memory (terminal transition).
            if let Some(mem) = pending.take() {
                self.store_and_learn(mem);
            }

            // --- component training -------------------------------------
            let cold_start_end = episode + 1 == self.cfg.cold_start_episodes;
            let retrain_due = episode + 1 > self.cfg.cold_start_episodes
                && self.cfg.retrain_every > 0
                && (episode + 1 - self.cfg.cold_start_episodes)
                    .is_multiple_of(self.cfg.retrain_every);
            let components_active = self.cfg.use_predictor || self.cfg.use_novelty;
            if components_active && cold_start_end {
                self.train_components_cold_start();
            } else if components_active && retrain_due {
                self.finetune_components();
            }

            episode_best.push(best_score);

            // Crash-safe checkpoint at the episode boundary. Absolute
            // episode numbering keeps the cadence stable across resumes.
            if self.cfg.checkpoint_every > 0
                && (episode + 1).is_multiple_of(self.cfg.checkpoint_every)
            {
                let total = prior_secs + t_start.elapsed().as_secs_f64();
                self.write_checkpoint(
                    episode + 1,
                    base_score,
                    best_score,
                    &best_fs,
                    &records,
                    &episode_best,
                    total,
                )?;
            }
        }

        let s = self.stats_baseline.merge(&self.predictor.stats().merge(&self.novelty.stats()));
        self.telemetry.prefix_hits = s.prefix_hits;
        self.telemetry.prefix_misses = s.prefix_misses;
        self.telemetry.prefix_evictions = s.evictions;
        self.telemetry.score_batches = s.batches;
        self.telemetry.batch_size_hist = s.batch_hist;
        self.telemetry.total_secs = prior_secs + t_start.elapsed().as_secs_f64();
        Ok(RunResult {
            base_score,
            best_score,
            best_dataset: best_fs.data,
            best_exprs: best_fs.exprs,
            records,
            episode_best,
            telemetry: self.telemetry,
            stop_reason: stop,
        })
    }

    /// Write a checkpoint to `cfg.checkpoint_path` (no-op without a path).
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint(
        &mut self,
        next_episode: usize,
        base_score: f64,
        best_score: f64,
        best_fs: &FeatureSet,
        records: &[StepRecord],
        episode_best: &[f64],
        total_secs: f64,
    ) -> FastFtResult<()> {
        let Some(path) = self.cfg.checkpoint_path.clone() else {
            return Ok(());
        };
        let snap = self.snapshot(
            next_episode,
            base_score,
            best_score,
            best_fs,
            records,
            episode_best,
            total_secs,
        );
        checkpoint::write(&path, self.cfg, &snap)
    }

    /// Capture the complete run state at an episode boundary.
    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &mut self,
        next_episode: usize,
        base_score: f64,
        best_score: f64,
        best_fs: &FeatureSet,
        records: &[StepRecord],
        episode_best: &[f64],
        total_secs: f64,
    ) -> checkpoint::Snapshot {
        let mut telemetry = self.telemetry;
        telemetry.total_secs = total_secs;
        checkpoint::Snapshot {
            data_fingerprint: checkpoint::dataset_fingerprint(self.original),
            next_episode,
            global_step: self.global_step,
            base_score,
            best_score,
            best_exprs: best_fs.exprs.iter().map(|e| e.to_string()).collect(),
            best_columns: best_fs.data.features.iter().map(|c| c.values.clone()).collect(),
            records: records.to_vec(),
            episode_best: episode_best.to_vec(),
            telemetry,
            rng: self.rng.state(),
            agents: self.agents.save_state(),
            predictor: self.predictor.save_state(),
            novelty: self.novelty.save_state(),
            replay: match &self.memory {
                Memory::Prioritized(b) => checkpoint::ReplayState::Prioritized {
                    capacity: b.capacity(),
                    write: b.write_pos(),
                    items: b.iter().cloned().collect(),
                    priorities: (0..b.len()).map(|i| b.priority(i)).collect(),
                },
                Memory::Uniform(b) => checkpoint::ReplayState::Uniform {
                    capacity: b.capacity(),
                    write: b.write_pos(),
                    items: b.iter().cloned().collect(),
                },
            },
            tracker_history: self.tracker.history().to_vec(),
            tracker_seen: self.tracker.seen_keys_sorted().into_iter().map(String::from).collect(),
            eval_cache: self
                .eval_cache
                .entries_lru_to_mru()
                .into_iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            eval_history: self.eval_history.clone(),
            pred_history: self.pred_history.clone(),
            nov_history: self.nov_history.clone(),
            nov_count: self.nov_count,
            nov_mean: self.nov_mean,
            nov_m2: self.nov_m2,
            stats_baseline: self
                .stats_baseline
                .merge(&self.predictor.stats().merge(&self.novelty.stats())),
            quarantine: self
                .quarantine
                .entries_lru_to_mru()
                .into_iter()
                .map(|(k, ())| k.clone())
                .collect(),
        }
    }

    /// Load checkpointed state into a freshly-constructed run. The frozen
    /// RND target and the prefix caches were already rebuilt by
    /// [`Run::new`]; everything else comes from the snapshot.
    fn restore(&mut self, snap: &checkpoint::Snapshot) -> FastFtResult<()> {
        let bad = |what: &str, e: String| FastFtError::Parse(format!("checkpoint: {what}: {e}"));
        self.rng = StdRng::from_state(snap.rng);
        self.agents.load_state(&snap.agents).map_err(|e| bad("agents", e))?;
        self.predictor.load_state(&snap.predictor).map_err(|e| bad("predictor", e))?;
        self.novelty.load_state(&snap.novelty).map_err(|e| bad("novelty estimator", e))?;
        self.memory = match &snap.replay {
            checkpoint::ReplayState::Prioritized { capacity, write, items, priorities } => {
                Memory::Prioritized(PrioritizedReplay::from_parts(
                    *capacity,
                    *write,
                    items.clone(),
                    priorities.clone(),
                ))
            }
            checkpoint::ReplayState::Uniform { capacity, write, items } => {
                Memory::Uniform(UniformReplay::from_parts(*capacity, *write, items.clone()))
            }
        };
        self.tracker =
            NoveltyTracker::from_parts(snap.tracker_history.clone(), snap.tracker_seen.clone());
        self.eval_cache = LruCache::new(self.cfg.eval_cache_capacity);
        for (k, v) in &snap.eval_cache {
            self.eval_cache.insert(k.clone(), *v);
        }
        self.quarantine = LruCache::new(QUARANTINE_CAPACITY);
        for k in &snap.quarantine {
            self.quarantine.insert(k.clone(), ());
        }
        self.eval_history = snap.eval_history.clone();
        self.pred_history = snap.pred_history.clone();
        self.nov_history = snap.nov_history.clone();
        self.nov_count = snap.nov_count;
        self.nov_mean = snap.nov_mean;
        self.nov_m2 = snap.nov_m2;
        self.stats_baseline = snap.stats_baseline;
        self.telemetry = snap.telemetry;
        self.global_step = snap.global_step;
        Ok(())
    }

    fn store_and_learn(&mut self, mem: MemoryUnit) {
        let t_opt = Instant::now();
        let delta = self.agents.td_error(&mem);
        self.memory.push(mem, delta);
        // Alg. 1 line 9 / Alg. 2 line 17: sample from the priority
        // distribution and optimise the cascading agents.
        if self.memory.len() >= 2 {
            if let Some(sampled) = self.memory.sample(&mut self.rng) {
                let sampled = sampled.clone();
                self.agents.learn(&sampled);
            }
        }
        self.telemetry.optimization_secs += t_opt.elapsed().as_secs_f64();
    }

    /// Train the components on `items` in order: one Adam step per sample
    /// when `cfg.minibatch == 0` (the paper's schedule), averaged-gradient
    /// steps over `cfg.minibatch`-sized chunks otherwise.
    fn train_components_on(&mut self, items: &[(Vec<usize>, f64)], train_novelty: bool) {
        if self.cfg.minibatch > 0 {
            for chunk in items.chunks(self.cfg.minibatch) {
                let batch: Vec<(&[usize], f64)> =
                    chunk.iter().map(|(s, v)| (s.as_slice(), *v)).collect();
                if self.cfg.use_predictor {
                    self.predictor.train_minibatch(&batch, &self.runtime);
                }
                if train_novelty && self.cfg.use_novelty {
                    let seqs: Vec<&[usize]> = batch.iter().map(|&(s, _)| s).collect();
                    self.novelty.train_minibatch(&seqs, &self.runtime);
                }
            }
        } else {
            for (seq, v) in items {
                if self.cfg.use_predictor {
                    self.predictor.train_step(seq, *v);
                }
                if train_novelty && self.cfg.use_novelty {
                    self.novelty.train_step(seq);
                }
            }
        }
    }

    /// Run a component-training round under a fault guard: the predictor
    /// and estimator weights are snapshotted first, and a round that
    /// panics or leaves non-finite parameters is rolled back to the
    /// snapshot (one `weight_rollbacks` count per restored component)
    /// instead of poisoning every score after it.
    fn train_guarded(&mut self, round: impl FnOnce(&mut Self)) {
        let pred_backup = self.cfg.use_predictor.then(|| self.predictor.save_state());
        let nov_backup = self.cfg.use_novelty.then(|| self.novelty.save_state());
        let panicked = catch_unwind(AssertUnwindSafe(|| round(self))).is_err();
        if let Some(b) = pred_backup {
            if panicked || !self.predictor.params_finite() {
                let _ = self.predictor.load_state(&b);
                self.telemetry.weight_rollbacks += 1;
            }
        }
        if let Some(b) = nov_backup {
            if panicked || !self.novelty.params_finite() {
                let _ = self.novelty.load_state(&b);
                self.telemetry.weight_rollbacks += 1;
            }
        }
    }

    /// Alg. 1 lines 14–19: initial training of both components from the
    /// cold-start collection.
    fn train_components_cold_start(&mut self) {
        let t_est = Instant::now();
        let passes = self.cfg.retrain_epochs.max(1);
        let history = self.eval_history.clone();
        self.train_guarded(move |run| {
            for _ in 0..passes {
                run.train_components_on(&history, true);
            }
        });
        self.telemetry.estimation_secs += t_est.elapsed().as_secs_f64();
    }

    /// Alg. 2 lines 19–24: periodic fine-tuning from the memory buffer
    /// (uniform samples).
    fn finetune_components(&mut self) {
        let t_est = Instant::now();
        // Draw every uniform sample before training: sampling consumes the
        // run RNG identically whether the steps below are per-sample or
        // minibatched, so `cfg.minibatch` never shifts the decision stream.
        let mut sampled = Vec::with_capacity(self.cfg.retrain_epochs);
        for _ in 0..self.cfg.retrain_epochs {
            if let Some(mem) = self.memory.sample_uniform(&mut self.rng) {
                sampled.push((mem.seq.clone(), mem.perf));
            }
        }
        let use_predictor = self.cfg.use_predictor;
        let recent = self.eval_history.len().saturating_sub(self.cfg.retrain_epochs);
        let tail: Vec<(Vec<usize>, f64)> = self.eval_history[recent..].to_vec();
        self.train_guarded(move |run| {
            run.train_components_on(&sampled, true);
            // Anchor the predictor on real downstream results as well, so
            // estimated rewards cannot drift from evaluated ones.
            if use_predictor {
                run.train_components_on(&tail, false);
            }
        });
        self.telemetry.estimation_secs += t_est.elapsed().as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_ml::Evaluator;
    use fastft_tabular::datagen;

    fn small_data(name: &str, rows: usize, seed: u64) -> Dataset {
        let spec = datagen::by_name(name).unwrap();
        let mut d = datagen::generate_capped(spec, rows, seed);
        d.sanitize();
        d
    }

    fn tiny_cfg() -> FastFtConfig {
        FastFtConfig {
            episodes: 4,
            steps_per_episode: 4,
            cold_start_episodes: 2,
            retrain_every: 1,
            retrain_epochs: 8,
            evaluator: Evaluator { folds: 3, ..Evaluator::default() },
            ..FastFtConfig::default()
        }
    }

    #[test]
    fn fit_improves_or_matches_base_score() {
        let data = small_data("pima_indian", 200, 0);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(result.best_score >= result.base_score);
        assert!(result.best_score <= 1.0);
        assert_eq!(result.episode_best.len(), 4);
        assert_eq!(result.records.len(), 16);
        assert_eq!(result.stop_reason, StopReason::Completed);
        assert_eq!(result.telemetry.eval_faults, 0);
        assert_eq!(result.telemetry.quarantined, 0);
        assert_eq!(result.telemetry.weight_rollbacks, 0);
    }

    #[test]
    fn eval_budget_stops_cleanly_with_best_so_far() {
        let data = small_data("pima_indian", 120, 20);
        let mut cfg = tiny_cfg();
        cfg.max_downstream_evals = 4;
        let r = FastFt::new(cfg.clone()).fit(&data).unwrap();
        assert_eq!(r.stop_reason, StopReason::EvalBudget);
        // Checked at step boundaries, so the budget is exact: the base
        // evaluation plus three cold-start steps.
        assert_eq!(r.telemetry.downstream_evals, 4);
        assert!(r.best_score >= r.base_score);
        assert!(r.records.len() < cfg.episodes * cfg.steps_per_episode);
    }

    #[test]
    fn wall_clock_budget_stops_before_first_step() {
        let data = small_data("pima_indian", 120, 21);
        let mut cfg = tiny_cfg();
        cfg.max_wall_secs = 1e-9;
        let r = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(r.stop_reason, StopReason::WallClock);
        // The base evaluation already exceeds the budget, so the run stops
        // at the very first step boundary with the original features.
        assert!(r.records.is_empty());
        assert_eq!(r.best_score, r.base_score);
        assert_eq!(r.best_dataset.n_features(), data.n_features());
    }

    #[test]
    fn budget_stop_prefix_matches_unbudgeted_run() {
        // Budget checks must consume no RNG: the records produced before
        // the stop are bitwise identical to the full run's prefix.
        let data = small_data("pima_indian", 120, 22);
        let full = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.max_downstream_evals = 6;
        let stopped = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(stopped.stop_reason, StopReason::EvalBudget);
        assert!(stopped.records.len() < full.records.len());
        for (a, b) in stopped.records.iter().zip(&full.records) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn best_dataset_matches_best_exprs() {
        let data = small_data("pima_indian", 150, 1);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert_eq!(result.best_dataset.n_features(), result.best_exprs.len());
        for (c, e) in result.best_dataset.features.iter().zip(&result.best_exprs) {
            assert_eq!(c.name, e.to_string());
        }
    }

    #[test]
    fn cold_start_steps_are_all_evaluated() {
        let data = small_data("pima_indian", 150, 2);
        let cfg = tiny_cfg();
        let cold_steps = cfg.cold_start_episodes * cfg.steps_per_episode;
        let result = FastFt::new(cfg).fit(&data).unwrap();
        for r in &result.records[..cold_steps] {
            assert!(!r.predicted, "cold-start step {}.{} was predicted", r.episode, r.step);
        }
    }

    #[test]
    fn predictor_reduces_downstream_evals() {
        let data = small_data("pima_indian", 150, 3);
        let mut cfg = tiny_cfg();
        cfg.episodes = 6;
        let with = FastFt::new(cfg.clone()).fit(&data).unwrap();
        let without = FastFt::new(cfg.without_predictor()).fit(&data).unwrap();
        assert!(
            with.telemetry.downstream_evals < without.telemetry.downstream_evals,
            "with: {}, without: {}",
            with.telemetry.downstream_evals,
            without.telemetry.downstream_evals
        );
        // −PP scores every step downstream (+1 for the base score); repeat
        // feature sets are answered by the memo cache instead of re-running
        // cross-validation.
        assert_eq!(without.telemetry.downstream_evals + without.telemetry.cache_hits, 6 * 4 + 1);
    }

    #[test]
    fn memo_cache_returns_cached_score_without_reeval() {
        let data = small_data("pima_indian", 120, 13);
        let cfg = tiny_cfg();
        let mut run = Run::new(&cfg, &data);
        let s1 = run.evaluate_downstream(&data, Some("k")).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 1);
        assert_eq!(run.telemetry.cache_hits, 0);
        let s2 = run.evaluate_downstream(&data, Some("k")).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(run.telemetry.downstream_evals, 1);
        assert_eq!(run.telemetry.cache_hits, 1);
        // A distinct key is a miss.
        run.evaluate_downstream(&data, Some("other")).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 2);
        assert_eq!(run.telemetry.cache_hits, 1);
        // `None` bypasses the cache entirely.
        run.evaluate_downstream(&data, None).unwrap();
        run.evaluate_downstream(&data, None).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 4);
        assert_eq!(run.telemetry.cache_hits, 1);
    }

    #[test]
    fn memo_cache_capacity_evicts_and_counts() {
        let data = small_data("pima_indian", 120, 17);
        let mut cfg = tiny_cfg();
        cfg.eval_cache_capacity = 2;
        let mut run = Run::new(&cfg, &data);
        run.evaluate_downstream(&data, Some("a")).unwrap();
        run.evaluate_downstream(&data, Some("b")).unwrap();
        assert_eq!(run.telemetry.cache_evictions, 0);
        // Third distinct key exceeds the capacity of 2: "a" is evicted.
        run.evaluate_downstream(&data, Some("c")).unwrap();
        assert_eq!(run.telemetry.cache_evictions, 1);
        // "b" survived (was more recent than "a") and hits.
        run.evaluate_downstream(&data, Some("b")).unwrap();
        assert_eq!(run.telemetry.cache_hits, 1);
        // "a" was evicted, so it re-evaluates (and evicts "c").
        run.evaluate_downstream(&data, Some("a")).unwrap();
        assert_eq!(run.telemetry.downstream_evals, 4);
        assert_eq!(run.telemetry.cache_evictions, 2);
    }

    #[test]
    fn fit_rejects_invalid_config() {
        let data = small_data("pima_indian", 120, 14);
        let mut cfg = tiny_cfg();
        cfg.alpha = -3.0;
        let err = FastFt::new(cfg).fit(&data).unwrap_err();
        assert!(matches!(err, FastFtError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fit_rejects_empty_dataset() {
        use fastft_tabular::TaskType;
        let data =
            Dataset::new("empty", Vec::new(), vec![0.0, 1.0], TaskType::Classification, 2).unwrap();
        let err = FastFt::new(tiny_cfg()).fit(&data).unwrap_err();
        assert!(matches!(err, FastFtError::InvalidData(_)), "{err}");
    }

    #[test]
    fn fit_identical_across_thread_counts() {
        let data = small_data("pima_indian", 120, 15);
        let serial = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.threads = 4;
        let pooled = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(serial.base_score, pooled.base_score);
        assert_eq!(serial.best_score, pooled.best_score);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
        assert_eq!(serial.telemetry.downstream_evals, pooled.telemetry.downstream_evals);
        assert_eq!(serial.telemetry.cache_hits, pooled.telemetry.cache_hits);
    }

    #[test]
    fn batched_scoring_matches_unbatched() {
        let data = small_data("pima_indian", 120, 18);
        let batched = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let mut cfg = tiny_cfg();
        cfg.batched_scoring = false;
        cfg.prefix_cache_capacity = 0;
        let plain = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(batched.best_score, plain.best_score);
        assert_eq!(batched.records.len(), plain.records.len());
        for (a, b) in batched.records.iter().zip(&plain.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.novelty, b.novelty);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
        assert_eq!(batched.telemetry.downstream_evals, plain.telemetry.downstream_evals);
        let t = batched.telemetry;
        assert!(t.score_batches > 0, "warm steps should batch");
        assert!(t.prefix_hits + t.prefix_misses > 0, "cached scoring should run");
        assert_eq!(t.batch_size_hist.iter().sum::<u64>(), t.score_batches);
        let p = plain.telemetry;
        assert_eq!(p.score_batches, 0);
        assert_eq!(p.prefix_hits + p.prefix_misses, 0);
    }

    #[test]
    fn minibatch_run_identical_across_thread_counts() {
        let data = small_data("pima_indian", 120, 19);
        let mut cfg = tiny_cfg();
        cfg.minibatch = 4;
        let serial = FastFt::new(cfg.clone()).fit(&data).unwrap();
        cfg.threads = 4;
        let pooled = FastFt::new(cfg).fit(&data).unwrap();
        assert_eq!(serial.best_score, pooled.best_score);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.new_exprs, b.new_exprs);
        }
    }

    #[test]
    fn telemetry_times_are_consistent() {
        let data = small_data("pima_indian", 120, 4);
        let result = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let t = result.telemetry;
        assert!(t.evaluation_secs > 0.0);
        assert!(t.optimization_secs > 0.0);
        assert!(t.total_secs >= t.evaluation_secs);
        assert!(t.downstream_evals >= 1);
    }

    #[test]
    fn ablations_run() {
        let data = small_data("pima_indian", 120, 5);
        for cfg in [
            tiny_cfg().without_novelty(),
            tiny_cfg().without_critical_replay(),
            tiny_cfg().without_predictor(),
        ] {
            let r = FastFt::new(cfg).fit(&data).unwrap();
            assert!(r.best_score >= r.base_score);
        }
    }

    #[test]
    fn q_framework_runs() {
        use crate::agents::RlKind;
        use fastft_rl::QKind;
        let data = small_data("pima_indian", 120, 6);
        let mut cfg = tiny_cfg();
        cfg.rl = RlKind::Q(QKind::DuelingDqn);
        let r = FastFt::new(cfg).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
    }

    #[test]
    fn regression_task_runs() {
        let data = small_data("openml_620", 150, 7);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn detection_task_runs() {
        let data = small_data("thyroid", 400, 8);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert!(r.best_score >= r.base_score);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data("pima_indian", 120, 9);
        let a = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        let b = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.score, rb.score);
            assert_eq!(ra.new_exprs, rb.new_exprs);
        }
    }

    #[test]
    fn episode_best_is_monotone() {
        let data = small_data("pima_indian", 120, 10);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        for w in r.episode_best.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn feature_cap_respected() {
        let data = small_data("pima_indian", 120, 11);
        let cfg = tiny_cfg();
        let cap = cfg.max_features(data.n_features());
        let r = FastFt::new(cfg).fit(&data).unwrap();
        for rec in &r.records {
            assert!(rec.n_features <= cap, "step has {} features > cap {cap}", rec.n_features);
        }
        assert!(r.best_dataset.n_features() <= cap);
    }

    #[test]
    fn novelty_distances_recorded() {
        let data = small_data("pima_indian", 120, 12);
        let r = FastFt::new(tiny_cfg()).fit(&data).unwrap();
        // First step of the run is maximally novel.
        assert_eq!(r.records[0].novelty_distance, 1.0);
        assert!(r.records.iter().all(|rec| rec.novelty_distance >= 0.0));
        assert!(r.records.iter().any(|rec| rec.new_combination));
    }

    #[test]
    fn percentile_helper() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }
}
