//! Incremental MI-based feature clustering (Eq. 2).
//!
//! Agglomerative merging: every feature starts as its own cluster, the two
//! closest clusters merge each step, and merging stops once the minimum
//! pairwise distance exceeds a threshold. The distance between clusters is
//! the mean over cross-pairs of `|MI(F_i,y) − MI(F_j,y)| / (MI(F_i,F_j) + ς)`
//! — features with similar label-relevance and high mutual redundancy are
//! close.

use fastft_runtime::Runtime;
use fastft_tabular::mi;
use fastft_tabular::Dataset;

/// Small constant `ς` guarding the zero division in Eq. 2.
pub const SIGMA: f64 = 1e-6;

/// Pairwise feature statistics backing the cluster distance.
#[derive(Debug, Clone)]
pub struct MiCache {
    /// `MI(F_j, y)` per feature.
    pub relevance: Vec<f64>,
    /// Dense symmetric `MI(F_i, F_j)` matrix (row-major `d × d`).
    pub redundancy: Vec<f64>,
    d: usize,
}

impl MiCache {
    /// Compute all pairwise MI statistics for a dataset (single-threaded).
    pub fn compute(data: &Dataset, n_bins: usize) -> Self {
        Self::compute_with(&Runtime::new(1), data, n_bins)
    }

    /// Compute all pairwise MI statistics with the upper-triangle rows of
    /// the `d × d` matrix distributed over `rt`. MI estimation is
    /// deterministic, so the cache is identical for any thread count.
    pub fn compute_with(rt: &Runtime, data: &Dataset, n_bins: usize) -> Self {
        let d = data.n_features();
        let relevance = mi::relevance_scores(data, n_bins);
        // Pre-bin every column once, then all pairs are discrete-MI lookups.
        let binned: Vec<Vec<usize>> =
            data.features.iter().map(|c| mi::quantile_bins(&c.values, n_bins)).collect();
        // Row i computes its strict upper triangle (i, i+1..d) plus the
        // diagonal entropy — rows are independent work items.
        let rows: Vec<Vec<f64>> = rt.par_map_indexed((0..d).collect(), |_, i| {
            let mut row = vec![0.0; d];
            for j in (i + 1)..d {
                row[j] = mi::mi_discrete(&binned[i], &binned[j]);
            }
            row[i] = mi::entropy_discrete(&binned[i]);
            row
        });
        let mut redundancy = vec![0.0; d * d];
        for (i, row) in rows.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate().skip(i) {
                redundancy[i * d + j] = v;
                redundancy[j * d + i] = v;
            }
        }
        MiCache { relevance, redundancy, d }
    }

    /// `MI(F_i, F_j)`.
    pub fn red(&self, i: usize, j: usize) -> f64 {
        self.redundancy[i * self.d + j]
    }
}

/// Eq. 2 distance between two clusters of feature indices.
pub fn cluster_distance(a: &[usize], b: &[usize], cache: &MiCache) -> f64 {
    let mut sum = 0.0;
    for &i in a {
        for &j in b {
            sum += (cache.relevance[i] - cache.relevance[j]).abs() / (cache.red(i, j) + SIGMA);
        }
    }
    sum / (a.len() * b.len()) as f64
}

/// Agglomeratively cluster features until the closest pair is farther than
/// `threshold` (or until `min_clusters` remain). Returns clusters as sorted
/// index lists, themselves sorted by first member.
pub fn cluster_features(
    data: &Dataset,
    cache: &MiCache,
    threshold: f64,
    min_clusters: usize,
) -> Vec<Vec<usize>> {
    let d = data.n_features();
    let min_clusters = min_clusters.max(1);
    let mut clusters: Vec<Vec<usize>> = (0..d).map(|i| vec![i]).collect();
    while clusters.len() > min_clusters {
        // Find the closest pair.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let dist = cluster_distance(&clusters[a], &clusters[b], cache);
                if dist < best.2 {
                    best = (a, b, dist);
                }
            }
        }
        if best.2 > threshold {
            break;
        }
        let merged = clusters.swap_remove(best.1);
        clusters[best.0].extend(merged);
        clusters[best.0].sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;
    use fastft_tabular::{Column, TaskType};

    /// Two redundant copies of a signal plus one independent noise column.
    fn toy() -> Dataset {
        let mut rng = rngx::rng(1);
        let n = 800;
        let signal = rngx::normal_vec(&mut rng, n);
        let copy: Vec<f64> = signal.iter().map(|&s| s + 0.01 * rngx::normal(&mut rng)).collect();
        let noise = rngx::normal_vec(&mut rng, n);
        let y: Vec<f64> = signal.iter().map(|&s| f64::from(u8::from(s > 0.0))).collect();
        Dataset::new(
            "toy",
            vec![
                Column::new("sig", signal),
                Column::new("copy", copy),
                Column::new("noise", noise),
            ],
            y,
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn redundant_features_cluster_together() {
        let d = toy();
        let cache = MiCache::compute(&d, 8);
        let clusters = cluster_features(&d, &cache, 1.0, 2);
        // sig and copy (indices 0,1) merge; noise stays separate.
        assert!(clusters.contains(&vec![0, 1]), "{clusters:?}");
        assert!(clusters.contains(&vec![2]), "{clusters:?}");
    }

    #[test]
    fn zero_threshold_keeps_singletons() {
        let d = toy();
        let cache = MiCache::compute(&d, 8);
        let clusters = cluster_features(&d, &cache, -1.0, 1);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn min_clusters_floor() {
        let d = toy();
        let cache = MiCache::compute(&d, 8);
        let clusters = cluster_features(&d, &cache, f64::INFINITY, 2);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn clusters_partition_features() {
        let d = toy();
        let cache = MiCache::compute(&d, 8);
        let clusters = cluster_features(&d, &cache, 0.5, 1);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn mi_cache_identical_across_thread_counts() {
        let d = toy();
        let serial = MiCache::compute(&d, 8);
        let pooled = MiCache::compute_with(&Runtime::new(4), &d, 8);
        assert_eq!(serial.relevance, pooled.relevance);
        assert_eq!(serial.redundancy, pooled.redundancy);
    }

    #[test]
    fn distance_symmetry() {
        let d = toy();
        let cache = MiCache::compute(&d, 8);
        let a = vec![0];
        let b = vec![1, 2];
        let ab = cluster_distance(&a, &b, &cache);
        let ba = cluster_distance(&b, &a, &cache);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab >= 0.0);
    }

    #[test]
    fn redundant_pair_is_closer_than_independent_pair() {
        let d = toy();
        let cache = MiCache::compute(&d, 8);
        let sig_copy = cluster_distance(&[0], &[1], &cache);
        let sig_noise = cluster_distance(&[0], &[2], &cache);
        assert!(sig_copy < sig_noise, "sig-copy {sig_copy} vs sig-noise {sig_noise}");
    }
}
