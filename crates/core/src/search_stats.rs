//! Aggregate statistics over a search run: which operations the agents
//! favoured, how complex the surviving expressions are, and how exploration
//! evolved — the quantitative backing for case studies like §VII.

use crate::engine::RunResult;
use crate::expr::Expr;
use crate::ops::Op;

/// Histogram of operation usage across a set of expressions.
pub fn op_usage(exprs: &[Expr]) -> Vec<(Op, usize)> {
    let mut counts = vec![0usize; Op::COUNT];
    for e in exprs {
        count_ops(e, &mut counts);
    }
    let mut out: Vec<(Op, usize)> =
        Op::ALL.iter().copied().zip(counts).filter(|&(_, c)| c > 0).collect();
    out.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    out
}

fn count_ops(e: &Expr, counts: &mut [usize]) {
    match e {
        Expr::Base(_) => {}
        Expr::Unary(op, inner) => {
            counts[op.index()] += 1;
            count_ops(inner, counts);
        }
        Expr::Binary(op, l, r) => {
            counts[op.index()] += 1;
            count_ops(l, counts);
            count_ops(r, counts);
        }
    }
}

/// Depth and size distribution of a feature set:
/// `(max_depth, mean_depth, max_size, mean_size, generated_fraction)`.
pub fn complexity(exprs: &[Expr]) -> (usize, f64, usize, f64, f64) {
    if exprs.is_empty() {
        return (0, 0.0, 0, 0.0, 0.0);
    }
    let depths: Vec<usize> = exprs.iter().map(Expr::depth).collect();
    let sizes: Vec<usize> = exprs.iter().map(Expr::size).collect();
    let generated = exprs.iter().filter(|e| !e.is_base()).count();
    let n = exprs.len() as f64;
    (
        *depths.iter().max().unwrap(),
        depths.iter().sum::<usize>() as f64 / n,
        *sizes.iter().max().unwrap(),
        sizes.iter().sum::<usize>() as f64 / n,
        generated as f64 / n,
    )
}

/// Per-episode exploration summary from a run's step records:
/// `(episode, mean_reward, new_combinations, downstream_evals)`.
pub fn episode_summary(result: &RunResult) -> Vec<(usize, f64, usize, usize)> {
    let mut out: Vec<(usize, f64, usize, usize)> = Vec::new();
    for r in &result.records {
        if out.last().map(|l| l.0) != Some(r.episode) {
            out.push((r.episode, 0.0, 0, 0));
        }
        let last = out.last_mut().unwrap();
        last.1 += r.reward;
        last.2 += usize::from(r.new_combination);
        last.3 += usize::from(!r.predicted);
    }
    // Mean rewards.
    let per: std::collections::HashMap<usize, usize> =
        result.records.iter().fold(std::collections::HashMap::new(), |mut m, r| {
            *m.entry(r.episode).or_insert(0) += 1;
            m
        });
    for row in &mut out {
        if let Some(&n) = per.get(&row.0) {
            row.1 /= n.max(1) as f64;
        }
    }
    out
}

/// The base features most often read by the generated expressions —
/// Fig. 15-style "which raw signals drive the discovered features".
pub fn base_feature_usage(exprs: &[Expr], n_base: usize) -> Vec<(usize, usize)> {
    let mut counts = vec![0usize; n_base];
    for e in exprs {
        if e.is_base() {
            continue;
        }
        for i in e.base_features() {
            if i < n_base {
                counts[i] += 1;
            }
        }
    }
    let mut out: Vec<(usize, usize)> =
        counts.into_iter().enumerate().filter(|&(_, c)| c > 0).collect();
    out.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Expr> {
        vec![
            Expr::base(0),
            Expr::binary(Op::Multiply, Expr::base(0), Expr::base(1)),
            Expr::binary(
                Op::Plus,
                Expr::binary(Op::Multiply, Expr::base(1), Expr::base(2)),
                Expr::unary(Op::Log, Expr::base(0)),
            ),
        ]
    }

    #[test]
    fn op_usage_counts_and_orders() {
        let usage = op_usage(&sample());
        assert_eq!(usage[0], (Op::Multiply, 2));
        assert!(usage.contains(&(Op::Plus, 1)));
        assert!(usage.contains(&(Op::Log, 1)));
        assert_eq!(usage.len(), 3);
    }

    #[test]
    fn complexity_statistics() {
        let (max_d, mean_d, max_s, mean_s, gen_frac) = complexity(&sample());
        assert_eq!(max_d, 3);
        assert_eq!(max_s, 6);
        assert!(mean_d > 1.0 && mean_d < 3.0);
        assert!(mean_s > 1.0 && mean_s < 6.0);
        assert!((gen_frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complexity_of_empty_set() {
        assert_eq!(complexity(&[]), (0, 0.0, 0, 0.0, 0.0));
    }

    #[test]
    fn base_usage_ignores_plain_bases() {
        let usage = base_feature_usage(&sample(), 4);
        // f0 read by 2 generated exprs, f1 by 2, f2 by 1; plain `f0` row
        // ignored.
        assert_eq!(usage.iter().find(|&&(i, _)| i == 0).unwrap().1, 2);
        assert_eq!(usage.iter().find(|&&(i, _)| i == 2).unwrap().1, 1);
        assert!(usage.iter().all(|&(i, _)| i < 3));
    }

    #[test]
    fn episode_summary_groups_by_episode() {
        use crate::config::FastFtConfig;
        use crate::engine::FastFt;
        use fastft_ml::Evaluator;
        let cfg = FastFtConfig {
            episodes: 2,
            steps_per_episode: 3,
            cold_start_episodes: 1,
            evaluator: Evaluator { folds: 3, ..Evaluator::default() },
            ..FastFtConfig::default()
        };
        let spec = fastft_tabular::datagen::by_name("pima_indian").unwrap();
        let mut d = fastft_tabular::datagen::generate_capped(spec, 80, 0);
        d.sanitize();
        let result = FastFt::new(cfg).fit(&d).unwrap();
        let summary = episode_summary(&result);
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].0, 0);
        assert_eq!(summary[1].0, 1);
        // Episode 0 is cold start: all 3 steps evaluated downstream.
        assert_eq!(summary[0].3, 3);
    }
}
