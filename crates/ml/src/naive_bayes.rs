//! Gaussian naive Bayes — a fast probabilistic classifier rounding out the
//! downstream-model zoo (useful as a cheap evaluator and as an extra
//! robustness-check model beyond the paper's six).

use crate::tree::argmax;

/// Gaussian naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    // per class: prior, per-feature (mean, var)
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianNb {
    /// Create an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit on column-major features and integer labels.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let d = columns.len();
        let n = y.len();
        let mut counts = vec![0usize; n_classes];
        let mut means = vec![vec![0.0; d]; n_classes];
        for (i, &yi) in y.iter().enumerate() {
            counts[yi] += 1;
            for (j, col) in columns.iter().enumerate() {
                means[yi][j] += col[i];
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f64;
            }
        }
        let mut vars = vec![vec![0.0; d]; n_classes];
        for (i, &yi) in y.iter().enumerate() {
            for (j, col) in columns.iter().enumerate() {
                let diff = col[i] - means[yi][j];
                vars[yi][j] += diff * diff;
            }
        }
        // Variance smoothing (sklearn-style epsilon) keeps degenerate
        // columns from producing infinite densities.
        let global_var: f64 = columns
            .iter()
            .map(|col| {
                let mean = col.iter().sum::<f64>() / n.max(1) as f64;
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n.max(1) as f64
            })
            .sum::<f64>()
            / d.max(1) as f64;
        let eps = 1e-9 * global_var.max(1e-9);
        for (v, &c) in vars.iter_mut().zip(&counts) {
            for var in v.iter_mut() {
                *var = *var / c.max(1) as f64 + eps;
            }
        }
        self.priors = counts.iter().map(|&c| (c.max(1) as f64 / n as f64).ln()).collect();
        self.means = means;
        self.vars = vars;
    }

    /// Per-class log joint likelihoods for one row.
    pub fn log_joint(&self, row: &[f64]) -> Vec<f64> {
        self.priors
            .iter()
            .enumerate()
            .map(|(c, &prior)| {
                let mut ll = prior;
                for (j, &x) in row.iter().enumerate() {
                    let var = self.vars[c][j];
                    let diff = x - self.means[c][j];
                    ll += -0.5 * ((std::f64::consts::TAU * var).ln() + diff * diff / var);
                }
                ll
            })
            .collect()
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| argmax(&self.log_joint(r))).collect()
    }

    /// Positive-class posterior scores for AUC.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let c = 1.min(self.priors.len().saturating_sub(1));
        rows.iter()
            .map(|r| {
                let lj = self.log_joint(r);
                let max = lj.iter().cloned().fold(f64::MIN, f64::max);
                let exps: Vec<f64> = lj.iter().map(|&l| (l - max).exp()).collect();
                exps[c] / exps.iter().sum::<f64>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    #[test]
    fn separates_gaussian_blobs() {
        let mut rng = rngx::rng(1);
        let n = 300;
        let mut col = Vec::with_capacity(2 * n);
        let mut y = Vec::with_capacity(2 * n);
        for _ in 0..n {
            col.push(rngx::normal(&mut rng) - 2.0);
            y.push(0usize);
        }
        for _ in 0..n {
            col.push(rngx::normal(&mut rng) + 2.0);
            y.push(1usize);
        }
        let mut nb = GaussianNb::new();
        nb.fit(&[col.clone()], &y, 2);
        let rows: Vec<Vec<f64>> = col.iter().map(|&v| vec![v]).collect();
        let acc = fastft_tabular::metrics::accuracy(&y, &nb.predict(&rows));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn priors_influence_ties() {
        // Identical per-class feature distributions (mean 0, var 1), but
        // class 1 is three times more common -> the prior decides.
        let col = vec![-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0];
        let y = vec![0, 0, 1, 1, 1, 1, 1, 1];
        let mut nb = GaussianNb::new();
        nb.fit(&[col], &y, 2);
        assert_eq!(nb.predict(&[vec![0.0]]), vec![1]);
    }

    #[test]
    fn constant_feature_does_not_explode() {
        let cols = vec![vec![1.0; 10], (0..10).map(f64::from).collect()];
        let y: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let mut nb = GaussianNb::new();
        nb.fit(&cols, &y, 2);
        let lj = nb.log_joint(&[1.0, 7.0]);
        assert!(lj.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scores_in_unit_interval() {
        let cols = vec![(0..20).map(f64::from).collect::<Vec<_>>()];
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let mut nb = GaussianNb::new();
        nb.fit(&cols, &y, 2);
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        for s in nb.predict_scores(&rows) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
