//! The unified downstream-task evaluator `A(T(F), y)`.
//!
//! The paper evaluates every generated feature set with five-fold
//! cross-validation on a downstream model and reports F1 / 1-RAE / AUC
//! (§V). This module packages that into a single [`Evaluator`] so the core
//! framework, every baseline and every harness score feature sets the same
//! way — and so the "runtime bottleneck" the paper talks about is a single
//! well-defined code path we can time.

use crate::boosting::{BoostParams, GradientBoostingClassifier, GradientBoostingRegressor};
use crate::forest::{ForestParams, RandomForestClassifier, RandomForestRegressor};
use crate::knn::Knn;
use crate::linear::{LinearSvm, LogisticRegression, RidgeClassifier, RidgeRegressor};
use crate::tree::{CartParams, DecisionTreeClassifier, DecisionTreeRegressor, SplitMethod};
use fastft_runtime::Runtime;
use fastft_tabular::dataset::Dataset;
use fastft_tabular::metrics::{self, Metric};
use fastft_tabular::persist::{Persist, PersistResult, Reader, Writer};
use fastft_tabular::split::KFold;
use fastft_tabular::{FastFtError, FastFtResult, TaskType};

/// Downstream model family (Table III's model axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Random forest (`RFC` in Table III; the default evaluator).
    RandomForest,
    /// Gradient-boosted trees (`XGBC` stand-in).
    GradientBoosting,
    /// Single CART tree (`DT-C`).
    DecisionTree,
    /// Multinomial logistic regression (`LR`).
    Logistic,
    /// Ridge classifier / regressor (`Ridge-C`).
    Ridge,
    /// Linear SVM (`SVM-C`).
    LinearSvm,
    /// k-nearest neighbours.
    Knn,
}

impl ModelKind {
    /// All models exercised by the Table III robustness check.
    pub const TABLE3: [ModelKind; 6] = [
        ModelKind::RandomForest,
        ModelKind::GradientBoosting,
        ModelKind::Logistic,
        ModelKind::LinearSvm,
        ModelKind::Ridge,
        ModelKind::DecisionTree,
    ];

    /// Display label matching the paper's Table III headers.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::RandomForest => "RFC",
            ModelKind::GradientBoosting => "XGBC",
            ModelKind::DecisionTree => "DT-C",
            ModelKind::Logistic => "LR",
            ModelKind::Ridge => "Ridge-C",
            ModelKind::LinearSvm => "SVM-C",
            ModelKind::Knn => "KNN",
        }
    }
}

/// K-fold cross-validation evaluator producing a single scalar score
/// (higher is better) for a dataset's current feature set.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Downstream model family.
    pub model: ModelKind,
    /// Reporting metric; `None` selects the paper default for the task.
    pub metric: Option<Metric>,
    /// Number of CV folds (paper: 5).
    pub folds: usize,
    /// Seed controlling folds and model randomness.
    pub seed: u64,
    /// Split-search backend of the tree-stack models (forest, boosting,
    /// single tree); ignored by the linear/kNN families.
    pub split_method: SplitMethod,
    /// Test-only fault-injection hook (see [`crate::fault`]); always `None`
    /// in production configs.
    pub fault_plan: Option<crate::fault::FaultPlan>,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator {
            model: ModelKind::RandomForest,
            metric: None,
            folds: 5,
            seed: 0,
            split_method: SplitMethod::default(),
            fault_plan: None,
        }
    }
}

impl Persist for ModelKind {
    fn persist(&self, w: &mut Writer) {
        w.u8(match self {
            ModelKind::RandomForest => 0,
            ModelKind::GradientBoosting => 1,
            ModelKind::DecisionTree => 2,
            ModelKind::Logistic => 3,
            ModelKind::Ridge => 4,
            ModelKind::LinearSvm => 5,
            ModelKind::Knn => 6,
        });
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(match r.u8()? {
            0 => ModelKind::RandomForest,
            1 => ModelKind::GradientBoosting,
            2 => ModelKind::DecisionTree,
            3 => ModelKind::Logistic,
            4 => ModelKind::Ridge,
            5 => ModelKind::LinearSvm,
            6 => ModelKind::Knn,
            t => return Err(format!("unknown model tag {t}")),
        })
    }
}

impl Persist for Evaluator {
    fn persist(&self, w: &mut Writer) {
        // Exhaustive destructure: adding an Evaluator field without
        // deciding how (or whether) to persist it is a compile error.
        let Evaluator { model, metric, folds, seed, split_method, fault_plan: _ } = self;
        model.persist(w);
        // Optional metric packed into one byte (255 = None), predating the
        // generic two-byte `Option` encoding.
        match metric {
            None => w.u8(255),
            Some(m) => w.u8(m.persist_tag()),
        }
        folds.persist(w);
        seed.persist(w);
        split_method.persist(w);
        // `fault_plan` is a test-only hook with process-local state; it is
        // never persisted. `FastFt::resume_with` can reattach one.
    }

    fn restore(r: &mut Reader) -> PersistResult<Self> {
        Ok(Evaluator {
            model: Persist::restore(r)?,
            metric: match r.u8()? {
                255 => None,
                tag => Some(Metric::from_persist_tag(tag)?),
            },
            folds: Persist::restore(r)?,
            seed: Persist::restore(r)?,
            split_method: Persist::restore(r)?,
            fault_plan: None,
        })
    }
}

impl Evaluator {
    /// Random-forest evaluator with the paper's 5-fold protocol.
    pub fn new(model: ModelKind) -> Self {
        Evaluator { model, ..Evaluator::default() }
    }

    /// The metric this evaluator reports for `task`.
    pub fn metric_for(&self, task: TaskType) -> Metric {
        self.metric.unwrap_or_else(|| Metric::default_for(task))
    }

    fn forest_params(&self) -> ForestParams {
        let mut p = ForestParams::default();
        p.cart.split_method = self.split_method;
        p
    }

    fn boost_params(&self) -> BoostParams {
        BoostParams { split_method: self.split_method, ..BoostParams::default() }
    }

    fn cart_params(&self) -> CartParams {
        CartParams { split_method: self.split_method, ..CartParams::default() }
    }

    /// Mean k-fold CV score of the dataset's feature set (single-threaded).
    pub fn evaluate(&self, data: &Dataset) -> FastFtResult<f64> {
        self.evaluate_with(&Runtime::new(1), data)
    }

    /// Mean k-fold CV score with the folds distributed over `rt`.
    ///
    /// Fold randomness comes entirely from `self.seed`, so the result is
    /// identical to [`Evaluator::evaluate`] for any thread count.
    pub fn evaluate_with(&self, rt: &Runtime, data: &Dataset) -> FastFtResult<f64> {
        if let Some(plan) = &self.fault_plan {
            // Test-only hook: may panic (injected evaluator crash), stall
            // (stuck fold) or substitute a corrupt score.
            if let Some(injected) = plan.before_eval() {
                return Ok(injected);
            }
        }
        if data.n_features() == 0 {
            return Err(FastFtError::Evaluation(format!(
                "dataset `{}` has no feature columns",
                data.name
            )));
        }
        if data.n_rows() < 2 {
            return Err(FastFtError::Evaluation(format!(
                "dataset `{}` has {} rows; cross-validation needs at least 2",
                data.name,
                data.n_rows()
            )));
        }
        let folds = self.folds.max(2);
        let kf = if data.task.is_discrete() {
            KFold::stratified(&data.class_labels(), folds, self.seed)
        } else {
            KFold::new(data.n_rows(), folds, self.seed)
        };
        let splits: Vec<(Vec<usize>, Vec<usize>)> = kf.iter().collect();
        let scores: FastFtResult<Vec<f64>> = rt
            .par_map(splits, |(train_idx, test_idx)| {
                self.evaluate_fold(data, &train_idx, &test_idx)
            })
            .into_iter()
            .collect();
        Ok(scores?.iter().sum::<f64>() / folds as f64)
    }

    /// Score one train/test split (exposed for single-split workflows).
    pub fn evaluate_fold(
        &self,
        data: &Dataset,
        train_idx: &[usize],
        test_idx: &[usize],
    ) -> FastFtResult<f64> {
        let metric = self.metric_for(data.task);
        let train_cols: Vec<Vec<f64>> = data
            .features
            .iter()
            .map(|c| train_idx.iter().map(|&i| c.values[i]).collect())
            .collect();
        let test_rows: Vec<Vec<f64>> = test_idx.iter().map(|&i| data.row(i)).collect();
        match data.task {
            TaskType::Regression => {
                let y_train: Vec<f64> = train_idx.iter().map(|&i| data.targets[i]).collect();
                let y_test: Vec<f64> = test_idx.iter().map(|&i| data.targets[i]).collect();
                let pred = self.fit_predict_regression(&train_cols, &y_train, &test_rows);
                score_regression(metric, &y_test, &pred)
            }
            TaskType::Classification | TaskType::Detection => {
                let y_train: Vec<usize> =
                    train_idx.iter().map(|&i| data.targets[i] as usize).collect();
                let y_test: Vec<usize> =
                    test_idx.iter().map(|&i| data.targets[i] as usize).collect();
                let (pred, scores) = self.fit_predict_classification(
                    &train_cols,
                    &y_train,
                    data.n_classes,
                    &test_rows,
                );
                score_classification(metric, &y_test, &pred, &scores, data.n_classes)
            }
        }
    }

    fn fit_predict_regression(
        &self,
        train_cols: &[Vec<f64>],
        y: &[f64],
        test_rows: &[Vec<f64>],
    ) -> Vec<f64> {
        match self.model {
            ModelKind::RandomForest => {
                let mut m = RandomForestRegressor::new(self.forest_params(), self.seed);
                m.fit(train_cols, y);
                m.predict(test_rows)
            }
            ModelKind::GradientBoosting => {
                let mut m = GradientBoostingRegressor::new(self.boost_params(), self.seed);
                m.fit(train_cols, y);
                m.predict(test_rows)
            }
            ModelKind::DecisionTree => {
                let mut m = DecisionTreeRegressor::new(self.cart_params(), self.seed);
                m.fit(train_cols, y);
                m.predict(test_rows)
            }
            // Logistic / SVM have no regression form; Ridge is the linear
            // regression model in this workspace.
            ModelKind::Logistic | ModelKind::Ridge | ModelKind::LinearSvm => {
                let mut m = RidgeRegressor::new(1.0);
                m.fit(train_cols, y);
                m.predict(test_rows)
            }
            ModelKind::Knn => {
                let mut m = Knn::new(5);
                m.fit(train_cols, y, 0);
                m.predict_value(test_rows)
            }
        }
    }

    fn fit_predict_classification(
        &self,
        train_cols: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        test_rows: &[Vec<f64>],
    ) -> (Vec<usize>, Vec<f64>) {
        match self.model {
            ModelKind::RandomForest => {
                let mut m = RandomForestClassifier::new(self.forest_params(), self.seed);
                m.fit(train_cols, y, n_classes);
                (m.predict(test_rows), m.predict_scores(test_rows))
            }
            ModelKind::GradientBoosting => {
                let mut m = GradientBoostingClassifier::new(self.boost_params(), self.seed);
                m.fit(train_cols, y, n_classes);
                (m.predict(test_rows), m.predict_scores(test_rows))
            }
            ModelKind::DecisionTree => {
                let mut m = DecisionTreeClassifier::new(self.cart_params(), self.seed);
                m.fit(train_cols, y, n_classes);
                let pred = m.predict(test_rows);
                let scores = test_rows
                    .iter()
                    .map(|r| m.predict_proba_row(r)[1.min(n_classes - 1)])
                    .collect();
                (pred, scores)
            }
            ModelKind::Logistic => {
                let mut m = LogisticRegression::new(self.seed);
                m.fit(train_cols, y, n_classes);
                (m.predict(test_rows), m.predict_scores(test_rows))
            }
            ModelKind::Ridge => {
                let mut m = RidgeClassifier::new(1.0);
                m.fit(train_cols, y, n_classes);
                (m.predict(test_rows), m.predict_scores(test_rows))
            }
            ModelKind::LinearSvm => {
                let mut m = LinearSvm::new(self.seed);
                m.fit(train_cols, y, n_classes);
                (m.predict(test_rows), m.predict_scores(test_rows))
            }
            ModelKind::Knn => {
                let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
                let mut m = Knn::new(5);
                m.fit(train_cols, &yf, n_classes);
                (m.predict_class(test_rows), m.predict_scores(test_rows))
            }
        }
    }
}

fn score_regression(metric: Metric, y: &[f64], pred: &[f64]) -> FastFtResult<f64> {
    match metric {
        Metric::OneMinusRae => Ok(metrics::one_minus_rae(y, pred)),
        Metric::OneMinusMae => Ok(metrics::one_minus_mae(y, pred)),
        Metric::OneMinusMse => Ok(metrics::one_minus_mse(y, pred)),
        other => {
            Err(FastFtError::Evaluation(format!("metric {other:?} is not a regression metric")))
        }
    }
}

fn score_classification(
    metric: Metric,
    y: &[usize],
    pred: &[usize],
    scores: &[f64],
    n_classes: usize,
) -> FastFtResult<f64> {
    match metric {
        Metric::F1 => Ok(metrics::f1_macro(y, pred, n_classes)),
        Metric::Precision => Ok(metrics::precision_macro(y, pred, n_classes)),
        Metric::Recall => Ok(metrics::recall_macro(y, pred, n_classes)),
        Metric::Accuracy => Ok(metrics::accuracy(y, pred)),
        Metric::Auc => Ok(metrics::auc(y, scores)),
        other => {
            Err(FastFtError::Evaluation(format!("metric {other:?} is not a classification metric")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::datagen;

    fn small(name: &str, rows: usize) -> Dataset {
        let spec = datagen::by_name(name).unwrap();
        let mut d = datagen::generate_capped(spec, rows, 0);
        d.sanitize();
        d
    }

    #[test]
    fn rf_beats_chance_on_classification() {
        let d = small("pima_indian", 300);
        let score = Evaluator::default().evaluate(&d).unwrap();
        // Binary F1 at chance level with balanced-ish classes is ~0.5.
        assert!(score > 0.55, "score {score}");
        assert!(score <= 1.0);
    }

    #[test]
    fn regression_evaluator_positive() {
        let d = small("openml_589", 300);
        let score = Evaluator::default().evaluate(&d).unwrap();
        assert!(score > 0.0 && score <= 1.0, "1-RAE {score}");
    }

    #[test]
    fn detection_auc_above_half() {
        let d = small("thyroid", 500);
        let score = Evaluator::default().evaluate(&d).unwrap();
        assert!(score > 0.5, "auc {score}");
    }

    #[test]
    fn evaluator_is_deterministic() {
        let d = small("svmguide3", 200);
        let e = Evaluator::default();
        assert_eq!(e.evaluate(&d).unwrap(), e.evaluate(&d).unwrap());
    }

    #[test]
    fn all_models_run_on_classification() {
        let d = small("pima_indian", 150);
        for model in ModelKind::TABLE3 {
            let e = Evaluator { model, folds: 3, ..Evaluator::default() };
            let s = e.evaluate(&d).unwrap();
            assert!((0.0..=1.0).contains(&s), "{model:?} -> {s}");
        }
    }

    #[test]
    fn all_models_run_on_regression() {
        let d = small("openml_620", 150);
        for model in ModelKind::TABLE3 {
            let e = Evaluator { model, folds: 3, ..Evaluator::default() };
            let s = e.evaluate(&d).unwrap();
            assert!(s.is_finite(), "{model:?} -> {s}");
        }
    }

    #[test]
    fn knn_model_runs() {
        let d = small("pima_indian", 120);
        let e = Evaluator { model: ModelKind::Knn, folds: 3, ..Evaluator::default() };
        let s = e.evaluate(&d).unwrap();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn metric_override_is_used() {
        let d = small("pima_indian", 150);
        let acc = Evaluator { metric: Some(Metric::Accuracy), folds: 3, ..Evaluator::default() }
            .evaluate(&d)
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn informative_feature_raises_score() {
        // Appending the (hidden) score-like crossing should not hurt and
        // typically helps: check it at least runs and stays in range.
        let mut d = small("pima_indian", 300);
        let base = Evaluator::default().evaluate(&d).unwrap();
        let cross: Vec<f64> =
            d.features[0].values.iter().zip(&d.features[1].values).map(|(a, b)| a * b).collect();
        d.push_feature(fastft_tabular::Column::new("f0*f1", cross));
        let with = Evaluator::default().evaluate(&d).unwrap();
        assert!(with >= base - 0.1, "base {base}, with {with}");
    }
}
