//! From-scratch downstream machine-learning models.
//!
//! These models are the paper's "downstream task": the expensive evaluation
//! `A(T(F), y)` whose runtime FASTFT works to avoid. Implemented here:
//!
//! - [`tree`]: CART decision trees (gini / variance criteria) with impurity
//!   feature importances and two split backends — exact sorted search and
//!   LightGBM-style histogram search over the quantile bins of
//!   [`binning`].
//! - [`binning`]: once-per-fit quantile discretisation of feature columns
//!   into `u8` bin codes (plus a missing bin for NaN).
//! - [`forest`]: bagged random forests, the default evaluator model used in
//!   the paper's main tables.
//! - [`boosting`]: gradient-boosted trees (the XGBoost stand-in of
//!   Table III).
//! - [`linear`]: logistic regression, ridge regression/classifier, linear
//!   SVM.
//! - [`knn`]: brute-force k-nearest-neighbours.
//! - [`evaluator`]: the unified k-fold cross-validation evaluator producing
//!   the paper's metrics.

pub mod binning;
pub mod boosting;
pub mod evaluator;
pub mod fault;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod naive_bayes;
pub mod preprocess;
pub mod tree;

pub use binning::BinnedMatrix;
pub use evaluator::{Evaluator, ModelKind};
pub use fault::{FaultKind, FaultPlan};
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use tree::{CartParams, DecisionTreeClassifier, DecisionTreeRegressor, SplitMethod};
