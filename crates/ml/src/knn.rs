//! Brute-force k-nearest-neighbours (standardised Euclidean metric).

use crate::preprocess::Standardizer;
use crate::tree::argmax;

/// kNN classifier / regressor over standardised features.
#[derive(Debug, Clone)]
pub struct Knn {
    /// Number of neighbours.
    pub k: usize,
    train: Vec<Vec<f64>>,
    targets: Vec<f64>,
    scaler: Option<Standardizer>,
    n_classes: usize,
}

impl Knn {
    /// Create with neighbour count `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self { k, train: Vec::new(), targets: Vec::new(), scaler: None, n_classes: 0 }
    }

    /// Fit = memorise the (standardised) training set. For classification
    /// pass labels as `f64` class indices and the class count; for
    /// regression pass `n_classes = 0`.
    pub fn fit(&mut self, columns: &[Vec<f64>], targets: &[f64], n_classes: usize) {
        let n = targets.len();
        let scaler = Standardizer::fit(columns);
        self.train = (0..n)
            .map(|i| {
                let mut r: Vec<f64> = columns.iter().map(|c| c[i]).collect();
                scaler.transform_row(&mut r);
                r
            })
            .collect();
        self.targets = targets.to_vec();
        self.scaler = Some(scaler);
        self.n_classes = n_classes;
    }

    fn neighbours(&self, row: &[f64]) -> Vec<usize> {
        let scaler = self.scaler.as_ref().expect("fit first");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        let mut dist: Vec<(f64, usize)> = self
            .train
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let d: f64 = t.iter().zip(&r).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, i)
            })
            .collect();
        let k = self.k.min(dist.len());
        dist.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        dist[..k].iter().map(|&(_, i)| i).collect()
    }

    /// Class-vote distribution for one row (classification fit required).
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(self.n_classes >= 2, "classification fit required");
        let nb = self.neighbours(row);
        let mut votes = vec![0.0; self.n_classes];
        for &i in &nb {
            votes[self.targets[i] as usize] += 1.0;
        }
        let inv = 1.0 / nb.len() as f64;
        for v in &mut votes {
            *v *= inv;
        }
        votes
    }

    /// Hard labels for a row-major batch (classification).
    pub fn predict_class(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| argmax(&self.predict_proba_row(r))).collect()
    }

    /// Mean-of-neighbours predictions (regression).
    pub fn predict_value(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter()
            .map(|r| {
                let nb = self.neighbours(r);
                nb.iter().map(|&i| self.targets[i]).sum::<f64>() / nb.len() as f64
            })
            .collect()
    }

    /// Positive-class vote fractions for AUC.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let c = 1.min(self.n_classes.saturating_sub(1));
        rows.iter().map(|r| self.predict_proba_row(r)[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_classifies_clusters() {
        let cols = vec![vec![0.0, 0.1, 0.2, 5.0, 5.1, 5.2]];
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut m = Knn::new(3);
        m.fit(&cols, &y, 2);
        assert_eq!(m.predict_class(&[vec![0.05], vec![5.05]]), vec![0, 1]);
    }

    #[test]
    fn knn_regression_averages() {
        let cols = vec![vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]];
        let y = vec![1.0, 1.0, 1.0, 7.0, 7.0, 7.0];
        let mut m = Knn::new(3);
        m.fit(&cols, &y, 0);
        let pred = m.predict_value(&[vec![1.0], vec![11.0]]);
        assert!((pred[0] - 1.0).abs() < 1e-9);
        assert!((pred[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn knn_k_larger_than_train_is_clamped() {
        let cols = vec![vec![0.0, 1.0]];
        let y = vec![0.0, 1.0];
        let mut m = Knn::new(10);
        m.fit(&cols, &y, 2);
        let p = m.predict_proba_row(&[0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn knn_proba_reflects_votes() {
        let cols = vec![vec![0.0, 0.0, 0.0, 0.1]];
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let mut m = Knn::new(4);
        m.fit(&cols, &y, 2);
        let p = m.predict_proba_row(&[0.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
        assert!((p[1] - 0.5).abs() < 1e-9);
    }
}
