//! Linear downstream models: multinomial logistic regression, ridge
//! regression / ridge classifier (closed form via Cholesky), and a linear
//! SVM trained with hinge-loss SGD (one-vs-rest).
//!
//! All models standardise their inputs internally; see
//! [`crate::preprocess::Standardizer`].

use crate::preprocess::Standardizer;
use crate::tree::argmax;

/// Multinomial (softmax) logistic regression trained with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub lr: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// L2 penalty.
    pub l2: f64,
    seed: u64,
    // weights[c] has dim d+1 (bias last)
    weights: Vec<Vec<f64>>,
    scaler: Option<Standardizer>,
}

impl LogisticRegression {
    /// Create with the workspace-default hyperparameters.
    pub fn new(seed: u64) -> Self {
        Self { lr: 0.1, epochs: 40, l2: 1e-4, seed, weights: Vec::new(), scaler: None }
    }

    /// Fit on column-major features and integer labels.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let n = y.len();
        let d = columns.len();
        let scaler = Standardizer::fit(columns);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut r: Vec<f64> = columns.iter().map(|c| c[i]).collect();
                scaler.transform_row(&mut r);
                r
            })
            .collect();
        let mut w = vec![vec![0.0; d + 1]; n_classes];
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        for _ in 0..self.epochs {
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let p = softmax_logits(&w, &rows[i]);
                for (c, wc) in w.iter_mut().enumerate() {
                    let err = p[c] - f64::from(u8::from(y[i] == c));
                    for (j, &x) in rows[i].iter().enumerate() {
                        wc[j] -= self.lr * (err * x + self.l2 * wc[j]);
                    }
                    let db = wc[d];
                    wc[d] = db - self.lr * err;
                }
            }
        }
        self.weights = w;
        self.scaler = Some(scaler);
    }

    /// Class-probability vector for one (raw, unscaled) row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("fit first");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        softmax_logits(&self.weights, &r)
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| argmax(&self.predict_proba_row(r))).collect()
    }

    /// Positive-class scores for a row-major batch.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let c = 1.min(self.weights.len().saturating_sub(1));
        rows.iter().map(|r| self.predict_proba_row(r)[c]).collect()
    }
}

fn softmax_logits(w: &[Vec<f64>], row: &[f64]) -> Vec<f64> {
    let d = row.len();
    let logits: Vec<f64> = w
        .iter()
        .map(|wc| wc[..d].iter().zip(row).map(|(a, b)| a * b).sum::<f64>() + wc[d])
        .collect();
    softmax(&logits)
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::MIN, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Ridge regression solved in closed form: `(XᵀX + λI) w = Xᵀy` by Cholesky.
#[derive(Debug, Clone)]
pub struct RidgeRegressor {
    /// L2 penalty λ.
    pub lambda: f64,
    weights: Vec<f64>, // dim d+1, bias last
    scaler: Option<Standardizer>,
}

impl RidgeRegressor {
    /// Create with penalty λ.
    pub fn new(lambda: f64) -> Self {
        Self { lambda, weights: Vec::new(), scaler: None }
    }

    /// Fit on column-major features and real targets.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[f64]) {
        let n = y.len();
        let d = columns.len();
        let scaler = Standardizer::fit(columns);
        // Augmented design matrix rows with trailing 1 for the intercept.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut r: Vec<f64> = columns.iter().map(|c| c[i]).collect();
                scaler.transform_row(&mut r);
                r.push(1.0);
                r
            })
            .collect();
        let dim = d + 1;
        let mut xtx = vec![0.0; dim * dim];
        let mut xty = vec![0.0; dim];
        for (r, &t) in rows.iter().zip(y) {
            for i in 0..dim {
                xty[i] += r[i] * t;
                for j in i..dim {
                    xtx[i * dim + j] += r[i] * r[j];
                }
            }
        }
        for i in 0..dim {
            for j in 0..i {
                xtx[i * dim + j] = xtx[j * dim + i];
            }
            // Do not penalise the intercept.
            if i < d {
                xtx[i * dim + i] += self.lambda;
            } else {
                xtx[i * dim + i] += 1e-9;
            }
        }
        self.weights = cholesky_solve(&xtx, &xty, dim).unwrap_or_else(|| vec![0.0; dim]);
        self.scaler = Some(scaler);
    }

    /// Prediction for one raw row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("fit first");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        let d = r.len();
        self.weights[..d].iter().zip(&r).map(|(a, b)| a * b).sum::<f64>() + self.weights[d]
    }

    /// Predictions for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }
}

/// Solve `A x = b` for symmetric positive-definite `A` (row-major, `n×n`).
/// Returns `None` if the factorisation fails (matrix not SPD).
pub fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L z = b
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }
    // Back solve Lᵀ x = z
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

/// Ridge classifier: one-vs-rest ridge regression on ±1 targets, predict by
/// the largest margin (sklearn's `RidgeClassifier` construction).
#[derive(Debug, Clone)]
pub struct RidgeClassifier {
    /// L2 penalty λ.
    pub lambda: f64,
    heads: Vec<RidgeRegressor>,
}

impl RidgeClassifier {
    /// Create with penalty λ.
    pub fn new(lambda: f64) -> Self {
        Self { lambda, heads: Vec::new() }
    }

    /// Fit on column-major features and integer labels.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.heads = (0..n_classes)
            .map(|c| {
                let targets: Vec<f64> =
                    y.iter().map(|&yi| if yi == c { 1.0 } else { -1.0 }).collect();
                let mut head = RidgeRegressor::new(self.lambda);
                head.fit(columns, &targets);
                head
            })
            .collect();
    }

    /// Per-class margins for one row.
    pub fn decision_row(&self, row: &[f64]) -> Vec<f64> {
        self.heads.iter().map(|h| h.predict_row(row)).collect()
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| argmax(&self.decision_row(r))).collect()
    }

    /// Positive-class margins for AUC.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let c = 1.min(self.heads.len().saturating_sub(1));
        rows.iter().map(|r| self.decision_row(r)[c]).collect()
    }
}

/// Linear SVM trained with hinge-loss SGD, one-vs-rest for multiclass.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularisation strength (weight of the L2 term).
    pub lambda: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
    seed: u64,
    weights: Vec<Vec<f64>>, // per class, dim d+1 (bias last)
    scaler: Option<Standardizer>,
}

impl LinearSvm {
    /// Create with the workspace-default hyperparameters.
    pub fn new(seed: u64) -> Self {
        Self { lambda: 1e-4, epochs: 40, seed, weights: Vec::new(), scaler: None }
    }

    /// Fit on column-major features and integer labels.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let n = y.len();
        let d = columns.len();
        let scaler = Standardizer::fit(columns);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut r: Vec<f64> = columns.iter().map(|c| c[i]).collect();
                scaler.transform_row(&mut r);
                r
            })
            .collect();
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let mut w = vec![vec![0.0; d + 1]; n_classes];
        let mut step = 0usize;
        for _ in 0..self.epochs {
            for _ in 0..n {
                step += 1;
                let lr = 1.0 / (self.lambda * step as f64 + 100.0); // Pegasos-style decay
                let i = rng.gen_range(0..n);
                for (c, wc) in w.iter_mut().enumerate() {
                    let t = if y[i] == c { 1.0 } else { -1.0 };
                    let margin =
                        t * (wc[..d].iter().zip(&rows[i]).map(|(a, b)| a * b).sum::<f64>() + wc[d]);
                    for j in 0..d {
                        let grad =
                            self.lambda * wc[j] - if margin < 1.0 { t * rows[i][j] } else { 0.0 };
                        wc[j] -= lr * grad;
                    }
                    if margin < 1.0 {
                        wc[d] += lr * t;
                    }
                }
            }
        }
        self.weights = w;
        self.scaler = Some(scaler);
    }

    /// Per-class margins for one raw row.
    pub fn decision_row(&self, row: &[f64]) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("fit first");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        let d = r.len();
        self.weights
            .iter()
            .map(|wc| wc[..d].iter().zip(&r).map(|(a, b)| a * b).sum::<f64>() + wc[d])
            .collect()
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| argmax(&self.decision_row(r))).collect()
    }

    /// Positive-class margins for AUC.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let c = 1.min(self.weights.len().saturating_sub(1));
        rows.iter().map(|r| self.decision_row(r)[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    fn linear_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = rngx::rng(seed);
        let a = rngx::normal_vec(&mut rng, n);
        let b = rngx::normal_vec(&mut rng, n);
        let y: Vec<usize> =
            a.iter().zip(&b).map(|(&x, &z)| usize::from(x + 0.5 * z > 0.0)).collect();
        (vec![a, b], y)
    }

    fn rows_of(cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        (0..cols[0].len()).map(|i| cols.iter().map(|c| c[i]).collect()).collect()
    }

    #[test]
    fn logistic_separates_linear_data() {
        let (cols, y) = linear_data(500, 1);
        let mut m = LogisticRegression::new(0);
        m.fit(&cols, &y, 2);
        let acc = fastft_tabular::metrics::accuracy(&y, &m.predict(&rows_of(&cols)));
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn logistic_multiclass_probabilities() {
        let mut rng = rngx::rng(2);
        let x = rngx::normal_vec(&mut rng, 300);
        let y: Vec<usize> = x
            .iter()
            .map(|&v| {
                if v < -0.5 {
                    0
                } else if v < 0.5 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let cols = vec![x];
        let mut m = LogisticRegression::new(0);
        m.fit(&cols, &y, 3);
        let p = m.predict_proba_row(&[2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&p), 2);
        let p = m.predict_proba_row(&[-2.0]);
        assert_eq!(argmax(&p), 0);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[1] > p[0]);
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![2.0, 1.0];
        let x = cholesky_solve(&a, &b, 2).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![0.0, 1.0, 1.0, 0.0];
        assert!(cholesky_solve(&a, &[1.0, 1.0], 2).is_none());
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        let mut rng = rngx::rng(3);
        let a = rngx::normal_vec(&mut rng, 400);
        let b = rngx::normal_vec(&mut rng, 400);
        let y: Vec<f64> = a.iter().zip(&b).map(|(&x, &z)| 3.0 * x - 2.0 * z + 1.0).collect();
        let cols = vec![a.clone(), b.clone()];
        let mut m = RidgeRegressor::new(1e-6);
        m.fit(&cols, &y);
        let pred = m.predict(&rows_of(&cols));
        let score = fastft_tabular::metrics::one_minus_rae(&y, &pred);
        assert!(score > 0.99, "1-RAE {score}");
    }

    #[test]
    fn ridge_classifier_works() {
        let (cols, y) = linear_data(400, 4);
        let mut m = RidgeClassifier::new(1.0);
        m.fit(&cols, &y, 2);
        let acc = fastft_tabular::metrics::accuracy(&y, &m.predict(&rows_of(&cols)));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn svm_separates_linear_data() {
        let (cols, y) = linear_data(400, 5);
        let mut m = LinearSvm::new(0);
        m.fit(&cols, &y, 2);
        let acc = fastft_tabular::metrics::accuracy(&y, &m.predict(&rows_of(&cols)));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn svm_scores_rank_positives() {
        let (cols, y) = linear_data(400, 6);
        let mut m = LinearSvm::new(0);
        m.fit(&cols, &y, 2);
        let auc = fastft_tabular::metrics::auc(&y, &m.predict_scores(&rows_of(&cols)));
        assert!(auc > 0.95, "auc {auc}");
    }
}
