//! Bagged random forests (the paper's default downstream model).
//!
//! Bootstrap row sampling plus per-split feature subsampling over the CART
//! trees of [`crate::tree`]. Probabilities are averaged leaf distributions,
//! which also provide the ranking scores needed for detection-task AUC.
//!
//! Trees are independent given their seeds, so fitting and prediction
//! parallelise over a [`Runtime`]: every tree draws its bootstrap sample
//! from its own `StdRng::stream(seed, tree_index)`, which makes the fitted
//! forest byte-identical for a given seed regardless of worker count.

use crate::binning::BinnedMatrix;
use crate::tree::{self, CartParams, DecisionTreeClassifier, DecisionTreeRegressor, SplitMethod};
use fastft_runtime::Runtime;
use fastft_tabular::rngx::StdRng;

/// In histogram mode, bin the training matrix once so every tree of the
/// ensemble shares the same [`BinnedMatrix`] instead of re-binning.
fn shared_binning(cart: &CartParams, columns: &[Vec<f64>]) -> Option<BinnedMatrix> {
    match cart.split_method {
        SplitMethod::Histogram { max_bins } => Some(BinnedMatrix::build(columns, max_bins)),
        SplitMethod::Exact => None,
    }
}

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree CART parameters; `max_features = None` here means "use the
    /// √d (classification) / d/3 (regression) heuristic".
    pub cart: CartParams,
    /// Bootstrap sample fraction of the training rows.
    pub sample_frac: f64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 12,
            cart: CartParams { max_depth: 10, ..CartParams::default() },
            sample_frac: 1.0,
        }
    }
}

fn default_max_features(d: usize, classification: bool) -> usize {
    if classification { (d as f64).sqrt().ceil() as usize } else { (d / 3).max(1) }.clamp(1, d)
}

/// Random forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    params: ForestParams,
    seed: u64,
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
    importances: Vec<f64>,
}

impl RandomForestClassifier {
    /// Create an unfitted forest.
    pub fn new(params: ForestParams, seed: u64) -> Self {
        Self { params, seed, trees: Vec::new(), n_classes: 0, importances: Vec::new() }
    }

    /// Fit on column-major features and integer labels (single-threaded).
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.fit_with(&Runtime::new(1), columns, y, n_classes);
    }

    /// Fit with trees distributed over `rt`. The result is identical to
    /// [`RandomForestClassifier::fit`] for any thread count: each tree's
    /// bootstrap rows come from its own seed stream.
    pub fn fit_with(&mut self, rt: &Runtime, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let n = y.len();
        let d = columns.len();
        let mut cart = self.params.cart;
        if cart.max_features.is_none() {
            cart.max_features = Some(default_max_features(d, true));
        }
        let n_boot = ((n as f64) * self.params.sample_frac).round().max(1.0) as usize;
        let seed = self.seed;
        let binned = shared_binning(&cart, columns);
        let binned = binned.as_ref();
        self.trees = rt.par_map_indexed((0..self.params.n_trees).collect(), |_, t| {
            let mut rng = StdRng::stream(seed, t as u64);
            let rows: Vec<usize> = (0..n_boot).map(|_| rng.gen_range(0..n)).collect();
            let tree_seed = seed.wrapping_add(t as u64 + 1);
            match binned {
                Some(b) => tree::fit_classifier_prebinned(b, y, n_classes, &cart, rows, tree_seed),
                None => tree::fit_classifier_rows(columns, y, n_classes, &cart, rows, tree_seed),
            }
        });
        self.importances = vec![0.0; d];
        for tree in &self.trees {
            for (acc, imp) in self.importances.iter_mut().zip(tree.feature_importances()) {
                *acc += imp / self.params.n_trees as f64;
            }
        }
        self.n_classes = n_classes;
    }

    /// Averaged class-probability vector for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit first");
        let mut acc = vec![0.0; self.n_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_proba_row(row)) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| tree::argmax(&self.predict_proba_row(r))).collect()
    }

    /// [`RandomForestClassifier::predict`] with rows chunked over `rt`.
    pub fn predict_with(&self, rt: &Runtime, rows: &[Vec<f64>]) -> Vec<usize> {
        par_rows(rt, rows, |r| tree::argmax(&self.predict_proba_row(r)))
    }

    /// Positive-class scores (class 1) for a row-major batch — AUC input.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba_row(r)[1.min(self.n_classes - 1)]).collect()
    }

    /// Mean impurity-decrease feature importances across trees.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }
}

/// Random forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    params: ForestParams,
    seed: u64,
    trees: Vec<DecisionTreeRegressor>,
    importances: Vec<f64>,
}

impl RandomForestRegressor {
    /// Create an unfitted forest.
    pub fn new(params: ForestParams, seed: u64) -> Self {
        Self { params, seed, trees: Vec::new(), importances: Vec::new() }
    }

    /// Fit on column-major features and real targets (single-threaded).
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[f64]) {
        self.fit_with(&Runtime::new(1), columns, y);
    }

    /// Fit with trees distributed over `rt`; identical output to
    /// [`RandomForestRegressor::fit`] for any thread count.
    pub fn fit_with(&mut self, rt: &Runtime, columns: &[Vec<f64>], y: &[f64]) {
        let n = y.len();
        let d = columns.len();
        let mut cart = self.params.cart;
        if cart.max_features.is_none() {
            cart.max_features = Some(default_max_features(d, false));
        }
        let n_boot = ((n as f64) * self.params.sample_frac).round().max(1.0) as usize;
        let seed = self.seed;
        let binned = shared_binning(&cart, columns);
        let binned = binned.as_ref();
        self.trees = rt.par_map_indexed((0..self.params.n_trees).collect(), |_, t| {
            let mut rng = StdRng::stream(seed, t as u64);
            let rows: Vec<usize> = (0..n_boot).map(|_| rng.gen_range(0..n)).collect();
            let mut tree = DecisionTreeRegressor::new(cart, seed.wrapping_add(t as u64 + 1));
            match binned {
                Some(b) => tree.fit_rows_prebinned(b, y, rows),
                None => tree.fit_rows(columns, y, rows),
            }
            tree
        });
        self.importances = vec![0.0; d];
        for tree in &self.trees {
            for (acc, imp) in self.importances.iter_mut().zip(tree.feature_importances()) {
                *acc += imp / self.params.n_trees as f64;
            }
        }
    }

    /// Mean prediction for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "fit first");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predictions for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// [`RandomForestRegressor::predict`] with rows chunked over `rt`.
    pub fn predict_with(&self, rt: &Runtime, rows: &[Vec<f64>]) -> Vec<f64> {
        par_rows(rt, rows, |r| self.predict_row(r))
    }

    /// Mean impurity-decrease feature importances across trees.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }
}

/// Map `f` over rows in contiguous chunks, one chunk per runtime lane,
/// preserving row order. Prediction has no RNG, so chunking is free to vary
/// with the thread count without affecting the output.
pub(crate) fn par_rows<T, U, F>(rt: &Runtime, rows: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if rt.threads() == 1 || rows.len() <= 1 {
        return rows.iter().map(&f).collect();
    }
    let chunk = rows.len().div_ceil(rt.threads());
    let parts: Vec<&[T]> = rows.chunks(chunk).collect();
    rt.par_map(parts, |part| part.iter().map(&f).collect::<Vec<U>>())
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    #[test]
    fn forest_learns_xor_better_than_chance() {
        let mut rng = rngx::rng(1);
        let n = 600;
        let a = rngx::normal_vec(&mut rng, n);
        let b = rngx::normal_vec(&mut rng, n);
        let y: Vec<usize> =
            a.iter().zip(&b).map(|(&x, &z)| usize::from((x > 0.0) != (z > 0.0))).collect();
        let cols = vec![a.clone(), b.clone()];
        let mut f = RandomForestClassifier::new(ForestParams::default(), 7);
        f.fit(&cols, &y, 2);
        // Fresh test sample from the same distribution.
        let ta = rngx::normal_vec(&mut rng, 200);
        let tb = rngx::normal_vec(&mut rng, 200);
        let ty: Vec<usize> =
            ta.iter().zip(&tb).map(|(&x, &z)| usize::from((x > 0.0) != (z > 0.0))).collect();
        let rows: Vec<Vec<f64>> = ta.iter().zip(&tb).map(|(&x, &z)| vec![x, z]).collect();
        let acc = fastft_tabular::metrics::accuracy(&ty, &f.predict(&rows));
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn forest_proba_is_distribution() {
        let cols = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]];
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut f = RandomForestClassifier::new(ForestParams::default(), 1);
        f.fit(&cols, &y, 2);
        let p = f.predict_proba_row(&[2.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forest_deterministic_per_seed() {
        let cols = vec![(0..50).map(|i| (i % 7) as f64).collect::<Vec<_>>()];
        let y: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 7) as f64]).collect();
        let mut a = RandomForestClassifier::new(ForestParams::default(), 42);
        a.fit(&cols, &y, 2);
        let mut b = RandomForestClassifier::new(ForestParams::default(), 42);
        b.fit(&cols, &y, 2);
        assert_eq!(a.predict(&rows), b.predict(&rows));
    }

    #[test]
    fn fit_identical_across_thread_counts() {
        let mut rng = rngx::rng(9);
        let a = rngx::normal_vec(&mut rng, 200);
        let b = rngx::normal_vec(&mut rng, 200);
        let y: Vec<usize> = a.iter().map(|&v| usize::from(v > 0.0)).collect();
        let cols = vec![a.clone(), b.clone()];
        let rows: Vec<Vec<f64>> = a.iter().zip(&b).map(|(&x, &z)| vec![x, z]).collect();
        let rt1 = Runtime::new(1);
        let rt4 = Runtime::new(4);
        // Both split backends must honour the PR-1 contract: the fitted
        // ensemble is byte-identical for a given seed at any worker count.
        for split_method in
            [SplitMethod::Exact, SplitMethod::Histogram { max_bins: 255 }, SplitMethod::default()]
        {
            let params = ForestParams {
                cart: CartParams { split_method, ..ForestParams::default().cart },
                ..ForestParams::default()
            };
            let mut f1 = RandomForestClassifier::new(params, 11);
            f1.fit_with(&rt1, &cols, &y, 2);
            let mut f4 = RandomForestClassifier::new(params, 11);
            f4.fit_with(&rt4, &cols, &y, 2);
            assert_eq!(f1.predict(&rows), f4.predict_with(&rt4, &rows), "{split_method:?}");
            assert_eq!(f1.feature_importances(), f4.feature_importances(), "{split_method:?}");
            let yr: Vec<f64> = a.iter().map(|v| v * v).collect();
            let mut r1 = RandomForestRegressor::new(params, 11);
            r1.fit_with(&rt1, &cols, &yr);
            let mut r4 = RandomForestRegressor::new(params, 11);
            r4.fit_with(&rt4, &cols, &yr);
            assert_eq!(r1.predict(&rows), r4.predict_with(&rt4, &rows), "{split_method:?}");
        }
    }

    #[test]
    fn regressor_forest_fits_quadratic() {
        let mut rng = rngx::rng(2);
        let x = rngx::normal_vec(&mut rng, 500);
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let cols = vec![x.clone()];
        let mut f = RandomForestRegressor::new(ForestParams::default(), 3);
        f.fit(&cols, &y);
        // Check a few in-range points.
        for v in [-1.5, -0.5, 0.5, 1.5] {
            let p = f.predict_row(&[v]);
            assert!((p - v * v).abs() < 0.5, "f({v}) = {p}");
        }
    }

    #[test]
    fn importances_normalised() {
        let mut rng = rngx::rng(4);
        let a = rngx::normal_vec(&mut rng, 200);
        let b = rngx::normal_vec(&mut rng, 200);
        let y: Vec<usize> = a.iter().map(|&v| usize::from(v > 0.0)).collect();
        let cols = vec![a, b];
        let mut f = RandomForestClassifier::new(ForestParams::default(), 5);
        f.fit(&cols, &y, 2);
        let s: f64 = f.feature_importances().iter().sum();
        assert!((s - 1.0).abs() < 1e-6, "sum {s}");
        assert!(f.feature_importances()[0] > f.feature_importances()[1]);
    }

    #[test]
    fn scores_order_matches_labels() {
        let cols = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<usize> = (0..100).map(|i| usize::from(i >= 90)).collect();
        let mut f = RandomForestClassifier::new(ForestParams::default(), 6);
        f.fit(&cols, &y, 2);
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let scores = f.predict_scores(&rows);
        let auc = fastft_tabular::metrics::auc(&y, &scores);
        assert!(auc > 0.95, "auc {auc}");
    }
}
