//! Feature standardisation fit on training data and applied to held-out
//! data, used by the linear models and kNN.

/// Per-feature mean/std scaler.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on column-major features.
    pub fn fit(columns: &[Vec<f64>]) -> Self {
        let mut means = Vec::with_capacity(columns.len());
        let mut stds = Vec::with_capacity(columns.len());
        for col in columns {
            let n = col.len().max(1) as f64;
            let mean = col.iter().sum::<f64>() / n;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            means.push(mean);
            // Constant columns scale to zero rather than exploding.
            stds.push(if var > 1e-24 { var.sqrt() } else { 1.0 });
        }
        Standardizer { means, stds }
    }

    /// Transform a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a row-major batch, returning a new matrix.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut r = r.clone();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }

    /// Number of features the scaler was fit on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_train_has_zero_mean_unit_std() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 20.0, 20.0]];
        let s = Standardizer::fit(&cols);
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![cols[0][i], cols[1][i]]).collect();
        let t = s.transform(&rows);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / 4.0;
            let var: f64 = t.iter().map(|r| r[j] * r[j]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let cols = vec![vec![7.0; 5]];
        let s = Standardizer::fit(&cols);
        let mut row = vec![7.0];
        s.transform_row(&mut row);
        assert_eq!(row[0], 0.0);
    }
}
