//! CART decision trees over column-major data.
//!
//! One generic builder serves both classification (gini impurity, class
//! distribution leaves) and regression (variance impurity, mean leaves).
//! Split search sorts the node's rows per candidate feature and scans all
//! boundaries with prefix statistics — `O(rows · log rows · features)` per
//! node, which is the textbook exact CART procedure.

use fastft_tabular::rngx::StdRng;

/// Tree growth hyperparameters shared by every tree-based model here.
#[derive(Debug, Clone, Copy)]
pub struct CartParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child after a split.
    pub min_samples_leaf: usize,
    /// Candidate features per split: `None` = all, `Some(k)` = random k
    /// (random-forest style column subsampling).
    pub max_features: Option<usize>,
}

impl Default for CartParams {
    fn default() -> Self {
        CartParams { max_depth: 8, min_samples_split: 4, min_samples_leaf: 2, max_features: None }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf payload: class distribution (classification) or `[mean]`
    /// (regression).
    Leaf {
        value: Vec<f64>,
    },
}

/// Internal target abstraction so one builder serves both task families.
trait Criterion {
    /// Aggregated sufficient statistics of a sample subset.
    type Stats: Clone;
    fn stats(&self, rows: &[usize]) -> Self::Stats;
    fn impurity(&self, s: &Self::Stats, n: usize) -> f64;
    fn add(&self, s: &mut Self::Stats, row: usize);
    fn sub(&self, s: &mut Self::Stats, row: usize);
    fn leaf_value(&self, s: &Self::Stats, n: usize) -> Vec<f64>;
}

struct GiniCriterion<'a> {
    y: &'a [usize],
    n_classes: usize,
}

impl Criterion for GiniCriterion<'_> {
    type Stats = Vec<f64>;

    fn stats(&self, rows: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &r in rows {
            counts[self.y[r]] += 1.0;
        }
        counts
    }

    fn impurity(&self, counts: &Vec<f64>, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>()
    }

    fn add(&self, s: &mut Vec<f64>, row: usize) {
        s[self.y[row]] += 1.0;
    }

    fn sub(&self, s: &mut Vec<f64>, row: usize) {
        s[self.y[row]] -= 1.0;
    }

    fn leaf_value(&self, counts: &Vec<f64>, n: usize) -> Vec<f64> {
        if n == 0 {
            return vec![1.0 / self.n_classes as f64; self.n_classes];
        }
        counts.iter().map(|c| c / n as f64).collect()
    }
}

struct VarCriterion<'a> {
    y: &'a [f64],
}

impl Criterion for VarCriterion<'_> {
    /// `(sum, sum_sq)`
    type Stats = (f64, f64);

    fn stats(&self, rows: &[usize]) -> (f64, f64) {
        let mut s = (0.0, 0.0);
        for &r in rows {
            s.0 += self.y[r];
            s.1 += self.y[r] * self.y[r];
        }
        s
    }

    fn impurity(&self, &(sum, sq): &(f64, f64), n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        (sq / n - (sum / n) * (sum / n)).max(0.0)
    }

    fn add(&self, s: &mut (f64, f64), row: usize) {
        s.0 += self.y[row];
        s.1 += self.y[row] * self.y[row];
    }

    fn sub(&self, s: &mut (f64, f64), row: usize) {
        s.0 -= self.y[row];
        s.1 -= self.y[row] * self.y[row];
    }

    fn leaf_value(&self, &(sum, _): &(f64, f64), n: usize) -> Vec<f64> {
        vec![if n == 0 { 0.0 } else { sum / n as f64 }]
    }
}

#[derive(Debug, Clone)]
struct Cart {
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

impl Cart {
    fn fit<C: Criterion>(
        columns: &[Vec<f64>],
        crit: &C,
        params: &CartParams,
        rows: Vec<usize>,
        rng: &mut StdRng,
    ) -> Cart {
        let n_features = columns.len();
        let n_total = rows.len();
        let mut tree = Cart { nodes: Vec::new(), importances: vec![0.0; n_features] };
        tree.grow(columns, crit, params, rows, 0, n_total, rng);
        // Normalise importances to sum to 1 when any split happened.
        let total: f64 = tree.importances.iter().sum();
        if total > 0.0 {
            for imp in &mut tree.importances {
                *imp /= total;
            }
        }
        tree
    }

    /// Recursively grow a subtree; returns its root node index.
    #[allow(clippy::too_many_arguments)]
    fn grow<C: Criterion>(
        &mut self,
        columns: &[Vec<f64>],
        crit: &C,
        params: &CartParams,
        rows: Vec<usize>,
        depth: usize,
        n_total: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = rows.len();
        let stats = crit.stats(&rows);
        let impurity = crit.impurity(&stats, n);

        let make_leaf =
            depth >= params.max_depth || n < params.min_samples_split || impurity <= 1e-12;
        if !make_leaf {
            if let Some((feature, threshold, gain, left_rows, right_rows)) =
                best_split(columns, crit, params, &rows, impurity, rng)
            {
                self.importances[feature] += gain * n as f64 / n_total as f64;
                let idx = self.nodes.len();
                self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
                let left = self.grow(columns, crit, params, left_rows, depth + 1, n_total, rng);
                let right = self.grow(columns, crit, params, right_rows, depth + 1, n_total, rng);
                if let Node::Split { left: l, right: r, .. } = &mut self.nodes[idx] {
                    *l = left;
                    *r = right;
                }
                return idx;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: crit.leaf_value(&stats, n) });
        idx
    }

    fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left } else { *right };
                }
                Node::Leaf { value } => return value,
            }
        }
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Exhaustive best split over (subsampled) features.
///
/// Returns `(feature, threshold, impurity_decrease, left_rows, right_rows)`.
#[allow(clippy::type_complexity)]
fn best_split<C: Criterion>(
    columns: &[Vec<f64>],
    crit: &C,
    params: &CartParams,
    rows: &[usize],
    parent_impurity: f64,
    rng: &mut StdRng,
) -> Option<(usize, f64, f64, Vec<usize>, Vec<usize>)> {
    let n = rows.len();
    let n_features = columns.len();
    let feature_idx: Vec<usize> = match params.max_features {
        Some(k) if k < n_features => {
            // Partial Fisher–Yates over feature indices.
            let mut idx: Vec<usize> = (0..n_features).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n_features);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
        _ => (0..n_features).collect(),
    };

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut sorted = rows.to_vec();
    for &f in &feature_idx {
        let col = &columns[f];
        sorted.sort_by(|&a, &b| col[a].partial_cmp(&col[b]).unwrap_or(std::cmp::Ordering::Equal));
        let mut left = crit.stats(&[]);
        let mut right = crit.stats(&sorted);
        for (i, &r) in sorted.iter().enumerate().take(n - 1) {
            crit.add(&mut left, r);
            crit.sub(&mut right, r);
            let n_left = i + 1;
            let n_right = n - n_left;
            // Can't split between equal values.
            if col[sorted[i]] == col[sorted[i + 1]] {
                continue;
            }
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            let child = (n_left as f64 * crit.impurity(&left, n_left)
                + n_right as f64 * crit.impurity(&right, n_right))
                / n as f64;
            let gain = parent_impurity - child;
            if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                let threshold = 0.5 * (col[sorted[i]] + col[sorted[i + 1]]);
                best = Some((f, threshold, gain));
            }
        }
    }
    best.map(|(feature, threshold, gain)| {
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| columns[feature][r] <= threshold);
        (feature, threshold, gain, left_rows, right_rows)
    })
}

/// A CART classifier. Fit on column-major features and integer labels.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    params: CartParams,
    seed: u64,
    tree: Option<Cart>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Create an unfitted tree.
    pub fn new(params: CartParams, seed: u64) -> Self {
        Self { params, seed, tree: None, n_classes: 0 }
    }

    /// Fit on column-major features.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let crit = GiniCriterion { y, n_classes };
        let rows: Vec<usize> = (0..y.len()).collect();
        self.tree = Some(Cart::fit(columns, &crit, &self.params, rows, &mut rng));
        self.n_classes = n_classes;
    }

    /// Class-probability vector for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        self.tree.as_ref().expect("fit first").predict_row(row).to_vec()
    }

    /// Hard label for one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        argmax(self.tree.as_ref().expect("fit first").predict_row(row))
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Normalised impurity-decrease feature importances.
    pub fn feature_importances(&self) -> &[f64] {
        &self.tree.as_ref().expect("fit first").importances
    }

    /// Total node count (for complexity reporting).
    pub fn n_nodes(&self) -> usize {
        self.tree.as_ref().map_or(0, Cart::n_nodes)
    }
}

/// A CART regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    params: CartParams,
    seed: u64,
    tree: Option<Cart>,
}

impl DecisionTreeRegressor {
    /// Create an unfitted tree.
    pub fn new(params: CartParams, seed: u64) -> Self {
        Self { params, seed, tree: None }
    }

    /// Fit on column-major features.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[f64]) {
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let crit = VarCriterion { y };
        let rows: Vec<usize> = (0..y.len()).collect();
        self.tree = Some(Cart::fit(columns, &crit, &self.params, rows, &mut rng));
    }

    /// Fit restricted to a row subset (used by bagging and boosting).
    pub fn fit_rows(&mut self, columns: &[Vec<f64>], y: &[f64], rows: Vec<usize>) {
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let crit = VarCriterion { y };
        self.tree = Some(Cart::fit(columns, &crit, &self.params, rows, &mut rng));
    }

    /// Predicted value for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.tree.as_ref().expect("fit first").predict_row(row)[0]
    }

    /// Predicted values for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Normalised impurity-decrease feature importances.
    pub fn feature_importances(&self) -> &[f64] {
        &self.tree.as_ref().expect("fit first").importances
    }
}

/// Classification tree with a row subset and bootstrap weighting support,
/// used internally by the random forest.
pub(crate) fn fit_classifier_rows(
    columns: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    params: &CartParams,
    rows: Vec<usize>,
    seed: u64,
) -> DecisionTreeClassifier {
    let mut rng = fastft_tabular::rngx::rng(seed);
    let crit = GiniCriterion { y, n_classes };
    let tree = Cart::fit(columns, &crit, params, rows, &mut rng);
    DecisionTreeClassifier { params: *params, seed, tree: Some(tree), n_classes }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = rngx::rng(seed);
        let a = rngx::normal_vec(&mut rng, n);
        let b = rngx::normal_vec(&mut rng, n);
        let y: Vec<usize> =
            a.iter().zip(&b).map(|(&x, &z)| usize::from((x > 0.0) != (z > 0.0))).collect();
        (vec![a, b], y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (cols, y) = xor_data(400, 1);
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        let rows: Vec<Vec<f64>> = (0..y.len()).map(|i| vec![cols[0][i], cols[1][i]]).collect();
        let pred = t.predict(&rows);
        let acc = fastft_tabular::metrics::accuracy(&y, &pred);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn classifier_pure_node_is_leaf() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let y = vec![1, 1, 1, 1];
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_row(&[10.0]), 1);
    }

    #[test]
    fn depth_zero_predicts_majority() {
        let cols = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0]];
        let y = vec![0, 0, 0, 1, 1];
        let params = CartParams { max_depth: 0, ..CartParams::default() };
        let mut t = DecisionTreeClassifier::new(params, 0);
        t.fit(&cols, &y, 2);
        assert_eq!(t.predict_row(&[4.0]), 0);
    }

    #[test]
    fn proba_sums_to_one() {
        let (cols, y) = xor_data(200, 2);
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        let p = t.predict_proba_row(&[0.3, -0.2]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn regressor_fits_step_function() {
        let cols = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new(CartParams::default(), 0);
        t.fit(&cols, &y);
        assert!((t.predict_row(&[10.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[90.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_reduces_variance_vs_mean() {
        let mut rng = rngx::rng(3);
        let x = rngx::normal_vec(&mut rng, 300);
        let y: Vec<f64> = x.iter().map(|v| v * v + 0.1 * rngx::normal(&mut rng)).collect();
        let cols = vec![x.clone()];
        let mut t = DecisionTreeRegressor::new(CartParams::default(), 0);
        t.fit(&cols, &y);
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let pred = t.predict(&rows);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let mse_tree: f64 =
            y.iter().zip(&pred).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / y.len() as f64;
        let mse_mean: f64 = y.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / y.len() as f64;
        assert!(mse_tree < 0.3 * mse_mean, "tree {mse_tree} vs mean {mse_mean}");
    }

    #[test]
    fn importances_identify_informative_feature() {
        let mut rng = rngx::rng(4);
        let signal = rngx::normal_vec(&mut rng, 300);
        let noise = rngx::normal_vec(&mut rng, 300);
        let y: Vec<usize> = signal.iter().map(|&s| usize::from(s > 0.0)).collect();
        let cols = vec![noise, signal];
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        let imp = t.feature_importances();
        assert!(imp[1] > imp[0], "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let cols = vec![(0..10).map(|i| i as f64).collect::<Vec<_>>()];
        let y = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let params = CartParams { min_samples_leaf: 6, ..CartParams::default() };
        let mut t = DecisionTreeClassifier::new(params, 0);
        t.fit(&cols, &y, 2);
        // No split can give both children >= 6 of 10 samples.
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
