//! CART decision trees over column-major data.
//!
//! One generic builder serves both classification (gini impurity, class
//! distribution leaves) and regression (variance impurity, mean leaves).
//! Two split-search backends share it, selected by
//! [`CartParams::split_method`]:
//!
//! - [`SplitMethod::Exact`] sorts the node's rows per candidate feature
//!   and scans all boundaries with prefix statistics —
//!   `O(rows · log rows · features)` per node, the textbook procedure.
//! - [`SplitMethod::Histogram`] (the default) quantile-bins every feature
//!   once per fit into `u8` codes ([`crate::binning::BinnedMatrix`]),
//!   builds per-node gradient/count histograms in one `O(rows)` pass,
//!   scans bin boundaries instead of row boundaries, and derives the
//!   larger child's histogram by subtracting the smaller child from the
//!   parent, so only the smaller child is ever re-scanned. Histogram and
//!   row-index buffers are pooled across the whole fit, eliminating the
//!   per-node allocation churn of the exact path.
//!
//! NaN feature values are deterministic in both backends: prediction
//! routes NaN right (any `NaN <= t` is false), the histogram path bins
//! NaN into a dedicated missing bin with the highest code, and the exact
//! path sorts NaN to the end of every column scan.

use crate::binning::BinnedMatrix;
use fastft_tabular::rngx::StdRng;

/// Split-search backend used when growing a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMethod {
    /// Sort-based exhaustive search over every boundary between distinct
    /// values.
    Exact,
    /// Histogram search over at most `max_bins` quantile bins per feature
    /// (clamped to 1..=255), plus a missing bin for NaN.
    Histogram {
        /// Maximum finite-value bins per feature.
        max_bins: u16,
    },
}

impl fastft_tabular::persist::Persist for SplitMethod {
    // Fixed-width layout: tag byte + a u32 bin-count slot for both variants.
    fn persist(&self, w: &mut fastft_tabular::persist::Writer) {
        match self {
            SplitMethod::Exact => {
                w.u8(0);
                w.u32(0);
            }
            SplitMethod::Histogram { max_bins } => {
                w.u8(1);
                w.u32(u32::from(*max_bins));
            }
        }
    }

    fn restore(
        r: &mut fastft_tabular::persist::Reader,
    ) -> fastft_tabular::persist::PersistResult<Self> {
        Ok(match (r.u8()?, r.u32()?) {
            (0, _) => SplitMethod::Exact,
            (1, bins) => SplitMethod::Histogram {
                max_bins: u16::try_from(bins)
                    .map_err(|_| format!("max_bins {bins} out of range"))?,
            },
            (t, _) => return Err(format!("unknown split-method tag {t}")),
        })
    }
}

impl Default for SplitMethod {
    fn default() -> Self {
        SplitMethod::Histogram { max_bins: 255 }
    }
}

/// Tree growth hyperparameters shared by every tree-based model here.
#[derive(Debug, Clone, Copy)]
pub struct CartParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child after a split.
    pub min_samples_leaf: usize,
    /// Candidate features per split: `None` = all, `Some(k)` = random k
    /// (random-forest style column subsampling).
    pub max_features: Option<usize>,
    /// Split-search backend.
    pub split_method: SplitMethod,
}

impl Default for CartParams {
    fn default() -> Self {
        CartParams {
            max_depth: 8,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            split_method: SplitMethod::default(),
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf payload: class distribution (classification) or `[mean]`
    /// (regression).
    Leaf {
        value: Vec<f64>,
    },
}

/// Internal target abstraction so one builder serves both task families.
///
/// The `hist_*` methods are the flat-slice view used by the histogram
/// backend: a bin accumulator is `hist_width()` consecutive `f64` slots
/// whose slot 0 is the sample count, so child histograms can be derived
/// by element-wise subtraction (sibling trick).
trait Criterion {
    /// Aggregated sufficient statistics of a sample subset.
    type Stats: Clone;
    fn stats(&self, rows: &[usize]) -> Self::Stats;
    fn impurity(&self, s: &Self::Stats, n: usize) -> f64;
    fn add(&self, s: &mut Self::Stats, row: usize);
    fn sub(&self, s: &mut Self::Stats, row: usize);
    fn leaf_value(&self, s: &Self::Stats, n: usize) -> Vec<f64>;
    /// `f64` slots per histogram bin; slot 0 holds the count.
    fn hist_width(&self) -> usize;
    /// Accumulate one row into a bin accumulator.
    fn hist_add(&self, acc: &mut [f64], row: usize);
    /// Impurity of an accumulator (`acc[0]` = count).
    fn hist_impurity(&self, acc: &[f64]) -> f64;
    /// Leaf payload of an accumulator.
    fn hist_leaf(&self, acc: &[f64]) -> Vec<f64>;
}

struct GiniCriterion<'a> {
    y: &'a [usize],
    n_classes: usize,
}

impl Criterion for GiniCriterion<'_> {
    type Stats = Vec<f64>;

    fn stats(&self, rows: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &r in rows {
            counts[self.y[r]] += 1.0;
        }
        counts
    }

    fn impurity(&self, counts: &Vec<f64>, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>()
    }

    fn add(&self, s: &mut Vec<f64>, row: usize) {
        s[self.y[row]] += 1.0;
    }

    fn sub(&self, s: &mut Vec<f64>, row: usize) {
        s[self.y[row]] -= 1.0;
    }

    fn leaf_value(&self, counts: &Vec<f64>, n: usize) -> Vec<f64> {
        if n == 0 {
            return vec![1.0 / self.n_classes as f64; self.n_classes];
        }
        counts.iter().map(|c| c / n as f64).collect()
    }

    fn hist_width(&self) -> usize {
        1 + self.n_classes
    }

    fn hist_add(&self, acc: &mut [f64], row: usize) {
        acc[0] += 1.0;
        acc[1 + self.y[row]] += 1.0;
    }

    fn hist_impurity(&self, acc: &[f64]) -> f64 {
        let n = acc[0];
        if n <= 0.0 {
            return 0.0;
        }
        1.0 - acc[1..].iter().map(|c| (c / n) * (c / n)).sum::<f64>()
    }

    fn hist_leaf(&self, acc: &[f64]) -> Vec<f64> {
        let n = acc[0];
        if n <= 0.0 {
            return vec![1.0 / self.n_classes as f64; self.n_classes];
        }
        acc[1..].iter().map(|c| c / n).collect()
    }
}

struct VarCriterion<'a> {
    y: &'a [f64],
}

impl Criterion for VarCriterion<'_> {
    /// `(sum, sum_sq)`
    type Stats = (f64, f64);

    fn stats(&self, rows: &[usize]) -> (f64, f64) {
        let mut s = (0.0, 0.0);
        for &r in rows {
            s.0 += self.y[r];
            s.1 += self.y[r] * self.y[r];
        }
        s
    }

    fn impurity(&self, &(sum, sq): &(f64, f64), n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        (sq / n - (sum / n) * (sum / n)).max(0.0)
    }

    fn add(&self, s: &mut (f64, f64), row: usize) {
        s.0 += self.y[row];
        s.1 += self.y[row] * self.y[row];
    }

    fn sub(&self, s: &mut (f64, f64), row: usize) {
        s.0 -= self.y[row];
        s.1 -= self.y[row] * self.y[row];
    }

    fn leaf_value(&self, &(sum, _): &(f64, f64), n: usize) -> Vec<f64> {
        vec![if n == 0 { 0.0 } else { sum / n as f64 }]
    }

    fn hist_width(&self) -> usize {
        3 // count, sum, sum of squares
    }

    fn hist_add(&self, acc: &mut [f64], row: usize) {
        let v = self.y[row];
        acc[0] += 1.0;
        acc[1] += v;
        acc[2] += v * v;
    }

    fn hist_impurity(&self, acc: &[f64]) -> f64 {
        let n = acc[0];
        if n <= 0.0 {
            return 0.0;
        }
        (acc[2] / n - (acc[1] / n) * (acc[1] / n)).max(0.0)
    }

    fn hist_leaf(&self, acc: &[f64]) -> Vec<f64> {
        vec![if acc[0] <= 0.0 { 0.0 } else { acc[1] / acc[0] }]
    }
}

#[derive(Debug, Clone)]
struct Cart {
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

/// Pooled buffers for one histogram-mode fit: histogram buffers are
/// recycled through a free list (peak ≈ tree depth + 1 alive at once) and
/// one scratch vector serves every stable row partition, so growing a node
/// allocates nothing once the pools are warm.
struct HistWorkspace {
    /// Recycled histogram buffers, each `n_features * stride * width`.
    free: Vec<Vec<f64>>,
    /// Histogram buffer length.
    size: usize,
    /// Right-side rows staging area for in-place stable partition.
    scratch: Vec<usize>,
}

impl HistWorkspace {
    fn new(size: usize, n_rows: usize) -> Self {
        HistWorkspace { free: Vec::new(), size, scratch: Vec::with_capacity(n_rows) }
    }

    fn alloc(&mut self) -> Vec<f64> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; self.size],
        }
    }

    fn release(&mut self, buf: Vec<f64>) {
        self.free.push(buf);
    }
}

/// Accumulate the histogram of `rows` over every feature into `hist`
/// (assumed zeroed), laid out `[feature][bin][slot]` with uniform
/// `stride` bins per feature.
fn build_hist<C: Criterion>(binned: &BinnedMatrix, crit: &C, rows: &[usize], hist: &mut [f64]) {
    let width = crit.hist_width();
    let stride = binned.stride();
    for f in 0..binned.n_features() {
        let codes = binned.codes(f);
        let base = f * stride * width;
        for &r in rows {
            let off = base + codes[r] as usize * width;
            crit.hist_add(&mut hist[off..off + width], r);
        }
    }
}

impl Cart {
    fn fit<C: Criterion>(
        columns: &[Vec<f64>],
        crit: &C,
        params: &CartParams,
        rows: Vec<usize>,
        rng: &mut StdRng,
    ) -> Cart {
        let n_features = columns.len();
        let n_total = rows.len();
        let mut tree = Cart { nodes: Vec::new(), importances: vec![0.0; n_features] };
        tree.grow(columns, crit, params, rows, 0, n_total, rng);
        tree.normalise_importances();
        tree
    }

    /// Histogram-mode fit over a prebuilt [`BinnedMatrix`].
    fn fit_hist<C: Criterion>(
        binned: &BinnedMatrix,
        crit: &C,
        params: &CartParams,
        mut rows: Vec<usize>,
        rng: &mut StdRng,
    ) -> Cart {
        let n_features = binned.n_features();
        let n_total = rows.len();
        let mut tree = Cart { nodes: Vec::new(), importances: vec![0.0; n_features] };
        let width = crit.hist_width();
        let mut ws = HistWorkspace::new(n_features * binned.stride() * width, n_total);
        let mut root = ws.alloc();
        build_hist(binned, crit, &rows, &mut root);
        tree.grow_hist(binned, crit, params, &mut ws, &mut rows, root, 0, n_total, rng);
        tree.normalise_importances();
        tree
    }

    /// Normalise importances to sum to 1 when any split happened.
    fn normalise_importances(&mut self) {
        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for imp in &mut self.importances {
                *imp /= total;
            }
        }
    }

    /// Recursively grow a histogram-mode subtree; returns its root node
    /// index. `hist` is this node's histogram (ownership transfers in:
    /// it is either recycled into `ws` or reused for the larger child).
    #[allow(clippy::too_many_arguments)]
    fn grow_hist<C: Criterion>(
        &mut self,
        binned: &BinnedMatrix,
        crit: &C,
        params: &CartParams,
        ws: &mut HistWorkspace,
        rows: &mut [usize],
        hist: Vec<f64>,
        depth: usize,
        n_total: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = rows.len();
        let width = crit.hist_width();
        // Node-level stats: every row lands in exactly one bin of feature
        // 0 (including its missing bin), so summing that feature's bins
        // recovers the node totals.
        let mut node = vec![0.0; width];
        if binned.n_features() > 0 {
            for b in 0..=binned.n_bins(0) {
                let off = b * width;
                for (k, slot) in node.iter_mut().enumerate() {
                    *slot += hist[off + k];
                }
            }
        }
        let impurity = crit.hist_impurity(&node);

        let make_leaf =
            depth >= params.max_depth || n < params.min_samples_split || impurity <= 1e-12;
        if !make_leaf {
            if let Some((feature, bin, gain)) =
                best_split_hist(binned, crit, params, &hist, &node, impurity, rng)
            {
                let threshold = binned.threshold(feature, bin);
                self.importances[feature] += gain * n as f64 / n_total as f64;
                // Stable in-place partition on bin codes keeps rows in
                // ascending order inside each child (cache-friendly
                // histogram scans) and is deterministic.
                let codes = binned.codes(feature);
                ws.scratch.clear();
                let mut w = 0;
                for i in 0..n {
                    let r = rows[i];
                    if (codes[r] as usize) <= bin {
                        rows[w] = r;
                        w += 1;
                    } else {
                        ws.scratch.push(r);
                    }
                }
                rows[w..].copy_from_slice(&ws.scratch);
                let (left_rows, right_rows) = rows.split_at_mut(w);
                // Sibling subtraction: scan only the smaller child; the
                // larger child's histogram is parent − smaller, reusing
                // the parent's buffer.
                let left_smaller = left_rows.len() <= right_rows.len();
                let mut small = ws.alloc();
                build_hist(
                    binned,
                    crit,
                    if left_smaller { &*left_rows } else { &*right_rows },
                    &mut small,
                );
                let mut large = hist;
                for (l, s) in large.iter_mut().zip(&small) {
                    *l -= *s;
                }
                let (left_hist, right_hist) =
                    if left_smaller { (small, large) } else { (large, small) };
                let idx = self.nodes.len();
                self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
                let left = self.grow_hist(
                    binned,
                    crit,
                    params,
                    ws,
                    left_rows,
                    left_hist,
                    depth + 1,
                    n_total,
                    rng,
                );
                let right = self.grow_hist(
                    binned,
                    crit,
                    params,
                    ws,
                    right_rows,
                    right_hist,
                    depth + 1,
                    n_total,
                    rng,
                );
                if let Node::Split { left: l, right: r, .. } = &mut self.nodes[idx] {
                    *l = left;
                    *r = right;
                }
                return idx;
            }
        }
        ws.release(hist);
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: crit.hist_leaf(&node) });
        idx
    }

    /// Recursively grow a subtree; returns its root node index.
    #[allow(clippy::too_many_arguments)]
    fn grow<C: Criterion>(
        &mut self,
        columns: &[Vec<f64>],
        crit: &C,
        params: &CartParams,
        rows: Vec<usize>,
        depth: usize,
        n_total: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = rows.len();
        let stats = crit.stats(&rows);
        let impurity = crit.impurity(&stats, n);

        let make_leaf =
            depth >= params.max_depth || n < params.min_samples_split || impurity <= 1e-12;
        if !make_leaf {
            if let Some((feature, threshold, gain, left_rows, right_rows)) =
                best_split(columns, crit, params, &rows, impurity, rng)
            {
                self.importances[feature] += gain * n as f64 / n_total as f64;
                let idx = self.nodes.len();
                self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
                let left = self.grow(columns, crit, params, left_rows, depth + 1, n_total, rng);
                let right = self.grow(columns, crit, params, right_rows, depth + 1, n_total, rng);
                if let Node::Split { left: l, right: r, .. } = &mut self.nodes[idx] {
                    *l = left;
                    *r = right;
                }
                return idx;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: crit.leaf_value(&stats, n) });
        idx
    }

    fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left } else { *right };
                }
                Node::Leaf { value } => return value,
            }
        }
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Candidate feature indices for one node: all features, or a partial
/// Fisher–Yates sample of `k`. Shared by both split backends so they
/// consume the per-tree RNG identically.
fn sample_features(params: &CartParams, n_features: usize, rng: &mut StdRng) -> Vec<usize> {
    match params.max_features {
        Some(k) if k < n_features => {
            let mut idx: Vec<usize> = (0..n_features).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n_features);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
        _ => (0..n_features).collect(),
    }
}

/// Total order on split values: NaN compares equal to NaN and greater
/// than everything else, so every column scan places NaN rows in one
/// deterministic block at the end regardless of input order.
fn split_value_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("both finite or infinite"),
    }
}

/// Exhaustive best split over (subsampled) features.
///
/// Returns `(feature, threshold, impurity_decrease, left_rows, right_rows)`.
#[allow(clippy::type_complexity)]
fn best_split<C: Criterion>(
    columns: &[Vec<f64>],
    crit: &C,
    params: &CartParams,
    rows: &[usize],
    parent_impurity: f64,
    rng: &mut StdRng,
) -> Option<(usize, f64, f64, Vec<usize>, Vec<usize>)> {
    let n = rows.len();
    let feature_idx = sample_features(params, columns.len(), rng);

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut sorted = rows.to_vec();
    for &f in &feature_idx {
        let col = &columns[f];
        sorted.sort_by(|&a, &b| split_value_cmp(col[a], col[b]));
        let mut left = crit.stats(&[]);
        let mut right = crit.stats(&sorted);
        for (i, &r) in sorted.iter().enumerate().take(n - 1) {
            crit.add(&mut left, r);
            crit.sub(&mut right, r);
            let n_left = i + 1;
            let n_right = n - n_left;
            let (lo, hi) = (col[sorted[i]], col[sorted[i + 1]]);
            // Can't split between equal values (NaN counts as equal to
            // NaN: the missing block at the end is never split up).
            if lo == hi || (lo.is_nan() && hi.is_nan()) {
                continue;
            }
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            let child = (n_left as f64 * crit.impurity(&left, n_left)
                + n_right as f64 * crit.impurity(&right, n_right))
                / n as f64;
            let gain = parent_impurity - child;
            if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                // Between two finite values the threshold is their
                // midpoint; at the finite|missing boundary it is the last
                // finite value itself, which sends every NaN right.
                let threshold = if hi.is_nan() { lo } else { 0.5 * (lo + hi) };
                best = Some((f, threshold, gain));
            }
        }
    }
    best.map(|(feature, threshold, gain)| {
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| columns[feature][r] <= threshold);
        (feature, threshold, gain, left_rows, right_rows)
    })
}

/// Histogram best split over (subsampled) features: scan bin boundaries
/// with cumulative statistics; the missing bin (highest code) always
/// stays on the right.
///
/// Returns `(feature, bin, impurity_decrease)` realising "code <= bin".
fn best_split_hist<C: Criterion>(
    binned: &BinnedMatrix,
    crit: &C,
    params: &CartParams,
    hist: &[f64],
    node: &[f64],
    parent_impurity: f64,
    rng: &mut StdRng,
) -> Option<(usize, usize, f64)> {
    let n = node[0] as usize;
    let feature_idx = sample_features(params, binned.n_features(), rng);
    let width = crit.hist_width();
    let stride = binned.stride();
    let mut best: Option<(usize, usize, f64)> = None;
    let mut left = vec![0.0; width];
    let mut right = vec![0.0; width];
    for &f in &feature_idx {
        let nb = binned.n_bins(f);
        if nb == 0 {
            continue; // all-NaN column: nothing to split on
        }
        left.fill(0.0);
        right.copy_from_slice(node);
        let base = f * stride * width;
        for b in 0..nb {
            let off = base + b * width;
            if hist[off] == 0.0 {
                // Empty bin: identical partition to the previous boundary.
                continue;
            }
            for k in 0..width {
                left[k] += hist[off + k];
                right[k] -= hist[off + k];
            }
            let n_left = left[0] as usize;
            let n_right = n - n_left;
            if n_left == 0 || n_right == 0 {
                continue;
            }
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            let child = (n_left as f64 * crit.hist_impurity(&left)
                + n_right as f64 * crit.hist_impurity(&right))
                / n as f64;
            let gain = parent_impurity - child;
            if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f, b, gain));
            }
        }
    }
    best
}

/// Grow a tree with the backend selected by `params.split_method`,
/// building a fresh [`BinnedMatrix`] in histogram mode.
fn fit_cart<C: Criterion>(
    columns: &[Vec<f64>],
    crit: &C,
    params: &CartParams,
    rows: Vec<usize>,
    rng: &mut StdRng,
) -> Cart {
    match params.split_method {
        SplitMethod::Exact => Cart::fit(columns, crit, params, rows, rng),
        SplitMethod::Histogram { max_bins } => {
            let binned = BinnedMatrix::build(columns, max_bins);
            Cart::fit_hist(&binned, crit, params, rows, rng)
        }
    }
}

/// A CART classifier. Fit on column-major features and integer labels.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    params: CartParams,
    seed: u64,
    tree: Option<Cart>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Create an unfitted tree.
    pub fn new(params: CartParams, seed: u64) -> Self {
        Self { params, seed, tree: None, n_classes: 0 }
    }

    /// Fit on column-major features.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let crit = GiniCriterion { y, n_classes };
        let rows: Vec<usize> = (0..y.len()).collect();
        self.tree = Some(fit_cart(columns, &crit, &self.params, rows, &mut rng));
        self.n_classes = n_classes;
    }

    /// Class-probability vector for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        self.tree.as_ref().expect("fit first").predict_row(row).to_vec()
    }

    /// Hard label for one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        argmax(self.tree.as_ref().expect("fit first").predict_row(row))
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Normalised impurity-decrease feature importances.
    pub fn feature_importances(&self) -> &[f64] {
        &self.tree.as_ref().expect("fit first").importances
    }

    /// Total node count (for complexity reporting).
    pub fn n_nodes(&self) -> usize {
        self.tree.as_ref().map_or(0, Cart::n_nodes)
    }
}

/// A CART regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    params: CartParams,
    seed: u64,
    tree: Option<Cart>,
}

impl DecisionTreeRegressor {
    /// Create an unfitted tree.
    pub fn new(params: CartParams, seed: u64) -> Self {
        Self { params, seed, tree: None }
    }

    /// Fit on column-major features.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[f64]) {
        let rows: Vec<usize> = (0..y.len()).collect();
        self.fit_rows(columns, y, rows);
    }

    /// Fit restricted to a row subset (used by bagging and boosting).
    pub fn fit_rows(&mut self, columns: &[Vec<f64>], y: &[f64], rows: Vec<usize>) {
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let crit = VarCriterion { y };
        self.tree = Some(fit_cart(columns, &crit, &self.params, rows, &mut rng));
    }

    /// Histogram-mode fit over a prebuilt [`BinnedMatrix`] — bagging and
    /// boosting bin the training matrix once and share it across trees,
    /// rounds and classes.
    ///
    /// # Panics
    ///
    /// Panics if `self` was built with [`SplitMethod::Exact`]: exact
    /// search needs raw columns, not bins.
    pub fn fit_rows_prebinned(&mut self, binned: &BinnedMatrix, y: &[f64], rows: Vec<usize>) {
        assert!(
            matches!(self.params.split_method, SplitMethod::Histogram { .. }),
            "fit_rows_prebinned requires SplitMethod::Histogram"
        );
        let mut rng = fastft_tabular::rngx::rng(self.seed);
        let crit = VarCriterion { y };
        self.tree = Some(Cart::fit_hist(binned, &crit, &self.params, rows, &mut rng));
    }

    /// Predicted value for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.tree.as_ref().expect("fit first").predict_row(row)[0]
    }

    /// Predicted values for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Normalised impurity-decrease feature importances.
    pub fn feature_importances(&self) -> &[f64] {
        &self.tree.as_ref().expect("fit first").importances
    }
}

/// Classification tree with a row subset and bootstrap weighting support,
/// used internally by the random forest.
pub(crate) fn fit_classifier_rows(
    columns: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    params: &CartParams,
    rows: Vec<usize>,
    seed: u64,
) -> DecisionTreeClassifier {
    let mut rng = fastft_tabular::rngx::rng(seed);
    let crit = GiniCriterion { y, n_classes };
    let tree = fit_cart(columns, &crit, params, rows, &mut rng);
    DecisionTreeClassifier { params: *params, seed, tree: Some(tree), n_classes }
}

/// Histogram-mode classification tree over a prebuilt [`BinnedMatrix`]
/// shared across a forest's trees.
pub(crate) fn fit_classifier_prebinned(
    binned: &BinnedMatrix,
    y: &[usize],
    n_classes: usize,
    params: &CartParams,
    rows: Vec<usize>,
    seed: u64,
) -> DecisionTreeClassifier {
    let mut rng = fastft_tabular::rngx::rng(seed);
    let crit = GiniCriterion { y, n_classes };
    let tree = Cart::fit_hist(binned, &crit, params, rows, &mut rng);
    DecisionTreeClassifier { params: *params, seed, tree: Some(tree), n_classes }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = rngx::rng(seed);
        let a = rngx::normal_vec(&mut rng, n);
        let b = rngx::normal_vec(&mut rng, n);
        let y: Vec<usize> =
            a.iter().zip(&b).map(|(&x, &z)| usize::from((x > 0.0) != (z > 0.0))).collect();
        (vec![a, b], y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (cols, y) = xor_data(400, 1);
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        let rows: Vec<Vec<f64>> = (0..y.len()).map(|i| vec![cols[0][i], cols[1][i]]).collect();
        let pred = t.predict(&rows);
        let acc = fastft_tabular::metrics::accuracy(&y, &pred);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn classifier_pure_node_is_leaf() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let y = vec![1, 1, 1, 1];
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_row(&[10.0]), 1);
    }

    #[test]
    fn depth_zero_predicts_majority() {
        let cols = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0]];
        let y = vec![0, 0, 0, 1, 1];
        let params = CartParams { max_depth: 0, ..CartParams::default() };
        let mut t = DecisionTreeClassifier::new(params, 0);
        t.fit(&cols, &y, 2);
        assert_eq!(t.predict_row(&[4.0]), 0);
    }

    #[test]
    fn proba_sums_to_one() {
        let (cols, y) = xor_data(200, 2);
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        let p = t.predict_proba_row(&[0.3, -0.2]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn regressor_fits_step_function() {
        let cols = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new(CartParams::default(), 0);
        t.fit(&cols, &y);
        assert!((t.predict_row(&[10.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[90.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_reduces_variance_vs_mean() {
        let mut rng = rngx::rng(3);
        let x = rngx::normal_vec(&mut rng, 300);
        let y: Vec<f64> = x.iter().map(|v| v * v + 0.1 * rngx::normal(&mut rng)).collect();
        let cols = vec![x.clone()];
        let mut t = DecisionTreeRegressor::new(CartParams::default(), 0);
        t.fit(&cols, &y);
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let pred = t.predict(&rows);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let mse_tree: f64 =
            y.iter().zip(&pred).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / y.len() as f64;
        let mse_mean: f64 = y.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / y.len() as f64;
        assert!(mse_tree < 0.3 * mse_mean, "tree {mse_tree} vs mean {mse_mean}");
    }

    #[test]
    fn importances_identify_informative_feature() {
        let mut rng = rngx::rng(4);
        let signal = rngx::normal_vec(&mut rng, 300);
        let noise = rngx::normal_vec(&mut rng, 300);
        let y: Vec<usize> = signal.iter().map(|&s| usize::from(s > 0.0)).collect();
        let cols = vec![noise, signal];
        let mut t = DecisionTreeClassifier::new(CartParams::default(), 0);
        t.fit(&cols, &y, 2);
        let imp = t.feature_importances();
        assert!(imp[1] > imp[0], "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let cols = vec![(0..10).map(|i| i as f64).collect::<Vec<_>>()];
        let y = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let params = CartParams { min_samples_leaf: 6, ..CartParams::default() };
        let mut t = DecisionTreeClassifier::new(params, 0);
        t.fit(&cols, &y, 2);
        // No split can give both children >= 6 of 10 samples.
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    fn exact_params() -> CartParams {
        CartParams { split_method: SplitMethod::Exact, ..CartParams::default() }
    }

    #[test]
    fn exact_split_is_row_order_independent_with_nans() {
        // Regression test: the old exact path compared values with
        // `partial_cmp(..).unwrap_or(Equal)`, so the sort placed NaNs
        // wherever the incoming row order happened to leave them and the
        // fitted tree depended on row *order*, not just the row *set*.
        let x = vec![f64::NAN, 1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0, 5.0, 6.0, 7.0];
        let y = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0];
        let cols = vec![x];
        let params = CartParams { min_samples_leaf: 1, ..exact_params() };

        let mut forward = DecisionTreeRegressor::new(params, 0);
        forward.fit_rows(&cols, &y, (0..y.len()).collect());
        let mut reversed = DecisionTreeRegressor::new(params, 0);
        reversed.fit_rows(&cols, &y, (0..y.len()).rev().collect());

        for probe in [f64::NAN, 0.5, 1.5, 3.5, 4.5, 6.5] {
            let a = forward.predict_row(&[probe]);
            let b = reversed.predict_row(&[probe]);
            assert_eq!(a.to_bits(), b.to_bits(), "probe {probe} differs: {a} vs {b}");
        }
    }

    #[test]
    fn nan_rows_route_right_in_both_modes() {
        // Feature is informative except for NaN rows, which all carry the
        // high label; both backends must learn "missing -> right branch".
        let mut x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        for _ in 0..10 {
            x.push(f64::NAN);
            y.push(1);
        }
        for params in [exact_params(), CartParams::default()] {
            let mut t = DecisionTreeClassifier::new(params, 0);
            t.fit(&[x.clone()], &y, 2);
            assert_eq!(t.predict_row(&[f64::NAN]), 1, "{:?}", params.split_method);
            assert_eq!(t.predict_row(&[3.0]), 0, "{:?}", params.split_method);
        }
    }

    #[test]
    fn histogram_matches_exact_when_bins_cover_all_values() {
        // With distinct values <= max_bins every bin holds one distinct
        // value, so the histogram scans the same candidate partitions as
        // the exact search with the same feature-sampling RNG and the same
        // ascending / first-strictly-greater tie-breaking. The two trees
        // partition the training set identically (interior thresholds may
        // sit at different points of the same value gap, so only training
        // rows — never off-grid probes — are compared).
        let (cols, y) = xor_data(200, 7);
        let mut exact = DecisionTreeClassifier::new(exact_params(), 0);
        exact.fit(&cols, &y, 2);
        let mut hist = DecisionTreeClassifier::new(CartParams::default(), 0);
        hist.fit(&cols, &y, 2);

        assert_eq!(exact.n_nodes(), hist.n_nodes());
        for (i, row) in cols[0].iter().zip(&cols[1]).map(|(&a, &b)| [a, b]).enumerate() {
            assert_eq!(exact.predict_proba_row(&row), hist.predict_proba_row(&row), "row {i}");
        }
    }

    #[test]
    fn histogram_regressor_learns_step_with_coarse_bins() {
        let cols = vec![(0..2000).map(|i| (i % 500) as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = cols[0].iter().map(|&v| if v < 250.0 { 1.0 } else { 5.0 }).collect();
        let params = CartParams {
            split_method: SplitMethod::Histogram { max_bins: 16 },
            ..CartParams::default()
        };
        let mut t = DecisionTreeRegressor::new(params, 0);
        t.fit(&cols, &y);
        assert!((t.predict_row(&[10.0]) - 1.0).abs() < 0.2);
        assert!((t.predict_row(&[400.0]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn prebinned_fit_matches_per_tree_binning() {
        let (cols, y_cls) = xor_data(150, 9);
        let y: Vec<f64> = y_cls.iter().map(|&c| c as f64).collect();
        let params = CartParams::default();
        let SplitMethod::Histogram { max_bins } = params.split_method else {
            panic!("default must be histogram")
        };
        let binned = BinnedMatrix::build(&cols, max_bins);

        let mut auto = DecisionTreeRegressor::new(params, 42);
        auto.fit(&cols, &y);
        let mut pre = DecisionTreeRegressor::new(params, 42);
        pre.fit_rows_prebinned(&binned, &y, (0..y.len()).collect());

        for row in cols[0].iter().zip(&cols[1]).map(|(&a, &b)| [a, b]) {
            assert_eq!(auto.predict_row(&row).to_bits(), pre.predict_row(&row).to_bits());
        }
    }
}
