//! Gradient-boosted trees — the XGBoost stand-in used for Table III's
//! robustness check.
//!
//! Regression boosts squared loss on residuals; classification boosts
//! logistic loss with one score function per class (multinomial "one tree
//! per class per round" scheme) over shallow CART regressors.

use crate::binning::BinnedMatrix;
use crate::linear::softmax;
use crate::tree::{argmax, CartParams, DecisionTreeRegressor, SplitMethod};
use fastft_runtime::Runtime;

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BoostParams {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage / learning rate.
    pub learning_rate: f64,
    /// Base-learner tree depth.
    pub max_depth: usize,
    /// Split-search backend of the base learners. In histogram mode the
    /// training matrix is binned once and shared across every round and
    /// class (targets change between rounds, features never do).
    pub split_method: SplitMethod,
}

impl Default for BoostParams {
    fn default() -> Self {
        BoostParams {
            n_rounds: 30,
            learning_rate: 0.15,
            max_depth: 3,
            split_method: SplitMethod::default(),
        }
    }
}

fn base_cart(p: &BoostParams) -> CartParams {
    CartParams { max_depth: p.max_depth, split_method: p.split_method, ..CartParams::default() }
}

/// Bin once for the whole boosting run when in histogram mode.
fn shared_binning(p: &BoostParams, columns: &[Vec<f64>]) -> Option<BinnedMatrix> {
    match p.split_method {
        SplitMethod::Histogram { max_bins } => Some(BinnedMatrix::build(columns, max_bins)),
        SplitMethod::Exact => None,
    }
}

/// Fit one base learner against `targets`, using the shared bins when
/// available.
fn fit_base(
    params: &BoostParams,
    columns: &[Vec<f64>],
    binned: Option<&BinnedMatrix>,
    targets: &[f64],
    seed: u64,
) -> DecisionTreeRegressor {
    let mut tree = DecisionTreeRegressor::new(base_cart(params), seed);
    let rows: Vec<usize> = (0..targets.len()).collect();
    match binned {
        Some(b) => tree.fit_rows_prebinned(b, targets, rows),
        None => tree.fit_rows(columns, targets, rows),
    }
    tree
}

/// Gradient-boosted regression trees (squared loss).
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    params: BoostParams,
    seed: u64,
    base: f64,
    trees: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Create an unfitted booster.
    pub fn new(params: BoostParams, seed: u64) -> Self {
        Self { params, seed, base: 0.0, trees: Vec::new() }
    }

    /// Fit on column-major features and real targets.
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[f64]) {
        let n = y.len();
        self.base = y.iter().sum::<f64>() / n.max(1) as f64;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| columns.iter().map(|c| c[i]).collect()).collect();
        let mut pred = vec![self.base; n];
        self.trees.clear();
        let binned = shared_binning(&self.params, columns);
        for r in 0..self.params.n_rounds {
            let resid: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let tree =
                fit_base(&self.params, columns, binned.as_ref(), &resid, self.seed + r as u64);
            for (p, row) in pred.iter_mut().zip(&rows) {
                *p += self.params.learning_rate * tree.predict_row(row);
            }
            self.trees.push(tree);
        }
    }

    /// Prediction for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predictions for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// [`GradientBoostingRegressor::predict`] with rows chunked over `rt`.
    /// (Fitting itself is stagewise-sequential and does not parallelise.)
    pub fn predict_with(&self, rt: &Runtime, rows: &[Vec<f64>]) -> Vec<f64> {
        crate::forest::par_rows(rt, rows, |r| self.predict_row(r))
    }
}

/// Gradient-boosted classification trees (multinomial logistic loss).
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    params: BoostParams,
    seed: u64,
    n_classes: usize,
    // trees[round][class]
    trees: Vec<Vec<DecisionTreeRegressor>>,
    priors: Vec<f64>,
}

impl GradientBoostingClassifier {
    /// Create an unfitted booster.
    pub fn new(params: BoostParams, seed: u64) -> Self {
        Self { params, seed, n_classes: 0, trees: Vec::new(), priors: Vec::new() }
    }

    /// Fit on column-major features and integer labels (single-threaded).
    pub fn fit(&mut self, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.fit_with(&Runtime::new(1), columns, y, n_classes);
    }

    /// Fit with the per-class trees of each round distributed over `rt`.
    ///
    /// Within a round every class tree is fitted against the *round-start*
    /// softmax probabilities and each tree updates only its own class's
    /// score column, so the per-class fits are independent and the result
    /// is identical to [`GradientBoostingClassifier::fit`] for any thread
    /// count. Rounds remain sequential (boosting is stagewise).
    pub fn fit_with(&mut self, rt: &Runtime, columns: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let n = y.len();
        self.n_classes = n_classes;
        // Log-prior initial scores.
        let mut counts = vec![1e-9; n_classes];
        for &yi in y {
            counts[yi] += 1.0;
        }
        self.priors = counts.iter().map(|c| (c / n as f64).ln()).collect();
        let rows: Vec<Vec<f64>> = (0..n).map(|i| columns.iter().map(|c| c[i]).collect()).collect();
        let mut scores: Vec<Vec<f64>> = (0..n).map(|_| self.priors.clone()).collect();
        self.trees.clear();
        let binned = shared_binning(&self.params, columns);
        let binned = binned.as_ref();
        for r in 0..self.params.n_rounds {
            // Gradients of the multinomial log-loss: y_onehot - softmax.
            let probs: Vec<Vec<f64>> = scores.iter().map(|s| softmax(s)).collect();
            let round: Vec<(DecisionTreeRegressor, Vec<f64>)> =
                rt.par_map((0..n_classes).collect(), |c| {
                    let grad: Vec<f64> =
                        (0..n).map(|i| f64::from(u8::from(y[i] == c)) - probs[i][c]).collect();
                    let tree = fit_base(
                        &self.params,
                        columns,
                        binned,
                        &grad,
                        self.seed + (r * n_classes + c) as u64,
                    );
                    let updates: Vec<f64> = rows.iter().map(|row| tree.predict_row(row)).collect();
                    (tree, updates)
                });
            let mut trees = Vec::with_capacity(n_classes);
            for (c, (tree, updates)) in round.into_iter().enumerate() {
                for (s, u) in scores.iter_mut().zip(updates) {
                    s[c] += self.params.learning_rate * u;
                }
                trees.push(tree);
            }
            self.trees.push(trees);
        }
    }

    /// Class-probability vector for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let mut s = self.priors.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                s[c] += self.params.learning_rate * tree.predict_row(row);
            }
        }
        softmax(&s)
    }

    /// Hard labels for a row-major batch.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| argmax(&self.predict_proba_row(r))).collect()
    }

    /// Positive-class scores for AUC.
    pub fn predict_scores(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let c = 1.min(self.n_classes.saturating_sub(1));
        rows.iter().map(|r| self.predict_proba_row(r)[c]).collect()
    }

    /// [`GradientBoostingClassifier::predict`] with rows chunked over `rt`.
    pub fn predict_with(&self, rt: &Runtime, rows: &[Vec<f64>]) -> Vec<usize> {
        crate::forest::par_rows(rt, rows, |r| argmax(&self.predict_proba_row(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastft_tabular::rngx;

    #[test]
    fn regressor_beats_constant_baseline() {
        let mut rng = rngx::rng(1);
        let x = rngx::normal_vec(&mut rng, 400);
        let y: Vec<f64> = x.iter().map(|v| v.sin() * 3.0).collect();
        let cols = vec![x.clone()];
        let mut m = GradientBoostingRegressor::new(BoostParams::default(), 0);
        m.fit(&cols, &y);
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let pred = m.predict(&rows);
        let score = fastft_tabular::metrics::one_minus_rae(&y, &pred);
        assert!(score > 0.8, "1-RAE {score}");
    }

    #[test]
    fn classifier_learns_xor() {
        let mut rng = rngx::rng(2);
        let n = 500;
        let a = rngx::normal_vec(&mut rng, n);
        let b = rngx::normal_vec(&mut rng, n);
        let y: Vec<usize> =
            a.iter().zip(&b).map(|(&x, &z)| usize::from((x > 0.0) != (z > 0.0))).collect();
        let cols = vec![a.clone(), b.clone()];
        let mut m = GradientBoostingClassifier::new(BoostParams::default(), 0);
        m.fit(&cols, &y, 2);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![cols[0][i], cols[1][i]]).collect();
        let acc = fastft_tabular::metrics::accuracy(&y, &m.predict(&rows));
        assert!(acc > 0.88, "accuracy {acc}");
    }

    #[test]
    fn classifier_proba_is_distribution() {
        let cols = vec![vec![0.0, 1.0, 2.0, 3.0]];
        let y = vec![0, 0, 1, 1];
        let mut m = GradientBoostingClassifier::new(BoostParams::default(), 0);
        m.fit(&cols, &y, 2);
        let p = m.predict_proba_row(&[1.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_boosting() {
        let mut rng = rngx::rng(3);
        let x = rngx::normal_vec(&mut rng, 300);
        let y: Vec<usize> = x
            .iter()
            .map(|&v| {
                if v < -0.5 {
                    0
                } else if v < 0.5 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let cols = vec![x.clone()];
        let mut m = GradientBoostingClassifier::new(BoostParams::default(), 0);
        m.fit(&cols, &y, 3);
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let acc = fastft_tabular::metrics::accuracy(&y, &m.predict(&rows));
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
