//! Quantile binning of feature columns for histogram split finding.
//!
//! A [`BinnedMatrix`] discretises every feature column once per fit into
//! `u8` bin codes: up to `max_bins` (≤ 255) finite-value bins plus one
//! dedicated missing bin per feature that collects NaN. Split search then
//! runs over bin histograms instead of sorted rows (see
//! [`crate::tree`]), which turns the per-node cost from
//! `O(rows · log rows)` per feature into one `O(rows)` histogram pass.
//!
//! Bin thresholds are midpoints between adjacent occupied value ranges, so
//! a tree trained on bins predicts on raw `f64` rows with the usual
//! `value <= threshold` test. NaN compares false against any threshold and
//! therefore always routes right at prediction time; binning mirrors that
//! by giving the missing bin the highest code, so NaN rows sit on the
//! right of every candidate split during training too.

/// A column-major matrix of per-feature bin codes plus the split
/// thresholds that map bin boundaries back to raw feature values.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    n_rows: usize,
    n_features: usize,
    /// Bin codes, column-major: feature `f`, row `i` at `f * n_rows + i`.
    codes: Vec<u8>,
    /// Finite-value bins per feature (`<= max_bins`); the missing bin has
    /// code `n_finite_bins[f]`.
    n_finite_bins: Vec<usize>,
    /// Per feature: `thresholds[b]` realises the split "bin <= b" as
    /// `value <= thresholds[b]`. The last entry (`b = n_finite_bins - 1`)
    /// is the column's maximum finite value, so the final boundary
    /// separates all finite values from the missing bin.
    thresholds: Vec<Vec<f64>>,
}

/// Largest number of finite bins a `u8` code space can hold while
/// reserving one code for the missing bin.
pub const MAX_BINS_LIMIT: u16 = 255;

impl BinnedMatrix {
    /// Bin `columns` into at most `max_bins` finite bins per feature
    /// (clamped to 1..=255). Each feature additionally gets a missing bin
    /// for NaN values.
    pub fn build(columns: &[Vec<f64>], max_bins: u16) -> BinnedMatrix {
        let max_bins = max_bins.clamp(1, MAX_BINS_LIMIT) as usize;
        let n_rows = columns.first().map_or(0, Vec::len);
        let n_features = columns.len();
        let mut codes = vec![0u8; n_features * n_rows];
        let mut n_finite_bins = Vec::with_capacity(n_features);
        let mut thresholds = Vec::with_capacity(n_features);
        let mut sorted: Vec<f64> = Vec::new();
        for (f, col) in columns.iter().enumerate() {
            sorted.clear();
            sorted.extend(col.iter().copied().filter(|v| !v.is_nan()));
            sorted.sort_by(f64::total_cmp);
            let cuts = column_thresholds(&sorted, max_bins);
            let nb = if cuts.is_empty() { 0 } else { cuts.len() };
            let dst = &mut codes[f * n_rows..(f + 1) * n_rows];
            for (c, &v) in dst.iter_mut().zip(col) {
                *c = if v.is_nan() {
                    nb as u8
                } else {
                    // Internal boundaries only: the final threshold is the
                    // column maximum and every finite value lies at or
                    // below it.
                    cuts[..nb.saturating_sub(1)].partition_point(|&t| t < v) as u8
                };
            }
            n_finite_bins.push(nb);
            thresholds.push(cuts);
        }
        BinnedMatrix { n_rows, n_features, codes, n_finite_bins, thresholds }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Finite-value bins of feature `f` (the missing bin is extra).
    pub fn n_bins(&self, f: usize) -> usize {
        self.n_finite_bins[f]
    }

    /// Raw-value threshold realising the split "bin <= b" of feature `f`.
    pub fn threshold(&self, f: usize, b: usize) -> f64 {
        self.thresholds[f][b]
    }

    /// Bin codes of feature `f`, one per row.
    pub fn codes(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Uniform per-feature histogram stride: bins including the missing
    /// bin, maximised over features.
    pub fn stride(&self) -> usize {
        self.n_finite_bins.iter().map(|&nb| nb + 1).max().unwrap_or(1)
    }
}

/// Split thresholds for one sorted (finite, ascending) column: at most
/// `max_bins - 1` internal midpoint boundaries plus the column maximum as
/// the final finite/missing boundary. Empty when the column has no finite
/// values.
fn column_thresholds(sorted: &[f64], max_bins: usize) -> Vec<f64> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    let mut cuts = Vec::new();
    // Distinct adjacent pairs, subsampled at quantile ranks when the
    // column has more distinct values than bins.
    let mut distinct = 0usize;
    for i in 1..n {
        if sorted[i] != sorted[i - 1] {
            distinct += 1;
        }
    }
    let distinct = distinct + 1;
    if distinct <= max_bins {
        // One bin per distinct value: boundaries are exact-midpoints, so a
        // histogram search sees the same candidate set as sorted search.
        for i in 1..n {
            if sorted[i] != sorted[i - 1] {
                cuts.push(0.5 * (sorted[i - 1] + sorted[i]));
            }
        }
    } else {
        // Quantile cuts: boundary at every n/max_bins rank, snapped to the
        // nearest change in value so bins never split a tied run.
        let mut prev_cut = f64::NEG_INFINITY;
        for b in 1..max_bins {
            let rank = b * n / max_bins;
            if rank == 0 || rank >= n {
                continue;
            }
            let (lo, hi) = (sorted[rank - 1], sorted[rank]);
            if lo == hi {
                continue;
            }
            let cut = 0.5 * (lo + hi);
            if cut > prev_cut {
                cuts.push(cut);
                prev_cut = cut;
            }
        }
    }
    // Final boundary: the column maximum, separating every finite value
    // from the missing bin.
    cuts.push(sorted[n - 1]);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values_get_own_bins() {
        let cols = vec![vec![3.0, 1.0, 2.0, 1.0, 3.0]];
        let b = BinnedMatrix::build(&cols, 255);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.codes(0), &[2, 0, 1, 0, 2]);
        assert_eq!(b.threshold(0, 0), 1.5);
        assert_eq!(b.threshold(0, 1), 2.5);
        // Final boundary is the column max (finite | missing split).
        assert_eq!(b.threshold(0, 2), 3.0);
    }

    #[test]
    fn nan_routes_to_missing_bin() {
        let cols = vec![vec![1.0, f64::NAN, 2.0, f64::NAN]];
        let b = BinnedMatrix::build(&cols, 255);
        assert_eq!(b.n_bins(0), 2);
        assert_eq!(b.codes(0), &[0, 2, 1, 2]);
    }

    #[test]
    fn all_nan_column_has_no_bins() {
        let cols = vec![vec![f64::NAN, f64::NAN]];
        let b = BinnedMatrix::build(&cols, 255);
        assert_eq!(b.n_bins(0), 0);
        assert_eq!(b.codes(0), &[0, 0]);
    }

    #[test]
    fn quantile_binning_caps_bin_count() {
        let col: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let b = BinnedMatrix::build(std::slice::from_ref(&col), 16);
        assert!(b.n_bins(0) <= 16, "bins {}", b.n_bins(0));
        assert!(b.n_bins(0) >= 15);
        // Codes are monotone in the raw values.
        let codes = b.codes(0);
        for i in 1..codes.len() {
            assert!(codes[i] >= codes[i - 1]);
        }
        // Threshold consistency: v <= threshold(b) iff code(v) <= b.
        for (i, &v) in col.iter().enumerate() {
            for bb in 0..b.n_bins(0) {
                assert_eq!(v <= b.threshold(0, bb), (codes[i] as usize) <= bb, "v={v} b={bb}");
            }
        }
    }

    #[test]
    fn constant_column_single_bin() {
        let b = BinnedMatrix::build(&[vec![7.0; 10]], 255);
        assert_eq!(b.n_bins(0), 1);
        assert!(b.codes(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn tied_runs_never_split() {
        // More distinct values than bins, with heavy ties: every tied run
        // must land in a single bin.
        let mut col = Vec::new();
        for i in 0..40 {
            for _ in 0..5 {
                col.push((i / 2) as f64);
            }
        }
        let b = BinnedMatrix::build(std::slice::from_ref(&col), 8);
        let codes = b.codes(0);
        for i in 0..col.len() {
            for j in 0..col.len() {
                if col[i] == col[j] {
                    assert_eq!(codes[i], codes[j]);
                }
            }
        }
    }

    #[test]
    fn stride_covers_missing_bin() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![1.0, 1.0, 1.0]];
        let b = BinnedMatrix::build(&cols, 255);
        assert_eq!(b.stride(), 4); // 3 finite bins + missing
    }
}
