//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] is attached to an [`Evaluator`](crate::Evaluator) by
//! tests (and only tests — production configs leave it `None`). The plan
//! watches a process-wide-free, plan-local eval counter: every call to
//! `Evaluator::evaluate_with` consults the plan *before* doing any work, so
//! fault N fires on the N-th downstream evaluation regardless of thread
//! count. Faults are one-shot: an injected panic on eval N does not repeat
//! on the retry (which is eval N+1), letting tests exercise both the retry
//! and the quarantine paths.
//!
//! Clones of a plan share the same counter (it sits behind an `Arc`), so
//! the engine cloning its config does not reset the schedule.

use fastft_tabular::rngx::StdRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One scheduled fault, keyed by the 0-based downstream-eval index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the evaluator on eval `N` (a poisoned tree fit, a
    /// singular fold — anything that unwinds).
    PanicOnEval(usize),
    /// Return a `NaN` score from eval `N` (degenerate metric).
    NanScore(usize),
    /// Sleep `millis` before eval `N` completes (stuck fold; exercises the
    /// wall-clock budget path).
    SlowEval {
        /// Eval index the stall fires on.
        eval: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Simulate an OOM-sized candidate on eval `N`: the evaluator aborts
    /// the attempt by unwinding, as an allocation-failure guard would.
    OomCandidate(usize),
}

impl FaultKind {
    fn eval_index(self) -> usize {
        match self {
            FaultKind::PanicOnEval(n) | FaultKind::NanScore(n) | FaultKind::OomCandidate(n) => n,
            FaultKind::SlowEval { eval, .. } => eval,
        }
    }
}

/// A deterministic schedule of evaluator faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed the plan was derived from (bookkeeping; see
    /// [`FaultPlan::seeded`]).
    pub seed: u64,
    faults: Vec<FaultKind>,
    evals: Arc<AtomicUsize>,
}

impl FaultPlan {
    /// A plan firing the given faults, in eval-index order.
    pub fn new(faults: Vec<FaultKind>) -> Self {
        FaultPlan { seed: 0, faults, evals: Arc::new(AtomicUsize::new(0)) }
    }

    /// A pseudo-random plan: `n_faults` faults of mixed kinds spread over
    /// the first `max_eval` evaluations, fully determined by `seed`.
    pub fn seeded(seed: u64, n_faults: usize, max_eval: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let faults = (0..n_faults)
            .map(|_| {
                let eval = rng.gen_range(0..max_eval.max(1));
                match rng.gen_range(0..4u32) {
                    0 => FaultKind::PanicOnEval(eval),
                    1 => FaultKind::NanScore(eval),
                    2 => FaultKind::SlowEval { eval, millis: rng.gen_range(1..5u64) },
                    _ => FaultKind::OomCandidate(eval),
                }
            })
            .collect();
        FaultPlan { seed, faults, evals: Arc::new(AtomicUsize::new(0)) }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// How many evaluations the plan has observed so far.
    pub fn evals_seen(&self) -> usize {
        self.evals.load(Ordering::SeqCst)
    }

    /// Number of scheduled faults that unwind or corrupt a score (panics,
    /// OOMs and NaNs — everything except pure stalls) at an eval index
    /// `< max_eval`. Tests use this to predict the engine's fault counter.
    pub fn scoring_faults_before(&self, max_eval: usize) -> usize {
        self.faults
            .iter()
            .filter(|f| !matches!(f, FaultKind::SlowEval { .. }) && f.eval_index() < max_eval)
            .count()
    }

    /// Called by the evaluator at the top of each evaluation. Applies any
    /// fault scheduled for this eval index: panics, stalls, or returns
    /// `Some(NaN)` for the caller to report as the (corrupt) score.
    pub fn before_eval(&self) -> Option<f64> {
        let idx = self.evals.fetch_add(1, Ordering::SeqCst);
        let mut injected = None;
        for fault in &self.faults {
            match *fault {
                FaultKind::SlowEval { eval, millis } if eval == idx => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                FaultKind::PanicOnEval(n) if n == idx => {
                    panic!("injected fault: panic on eval {n}");
                }
                FaultKind::OomCandidate(n) if n == idx => {
                    panic!("injected fault: oom-sized candidate rejected on eval {n}");
                }
                FaultKind::NanScore(n) if n == idx => {
                    injected = Some(f64::NAN);
                }
                _ => {}
            }
        }
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_on_their_eval_index() {
        let plan = FaultPlan::new(vec![
            FaultKind::NanScore(1),
            FaultKind::SlowEval { eval: 0, millis: 1 },
        ]);
        assert_eq!(plan.before_eval(), None); // eval 0: stall only
        assert!(plan.before_eval().unwrap().is_nan()); // eval 1
        assert_eq!(plan.before_eval(), None); // eval 2: past the plan
        assert_eq!(plan.evals_seen(), 3);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic on eval 0")]
    fn panic_fault_unwinds() {
        FaultPlan::new(vec![FaultKind::PanicOnEval(0)]).before_eval();
    }

    #[test]
    fn clones_share_the_counter() {
        let plan = FaultPlan::new(vec![FaultKind::NanScore(1)]);
        let clone = plan.clone();
        assert_eq!(plan.before_eval(), None);
        assert!(clone.before_eval().unwrap().is_nan(), "clone sees eval index 1");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(7, 5, 20);
        let b = FaultPlan::seeded(7, 5, 20);
        assert_eq!(a.faults(), b.faults());
        assert_eq!(a.faults().len(), 5);
        assert!(a.faults().iter().all(|f| f.eval_index() < 20));
    }

    #[test]
    fn scoring_fault_count_excludes_stalls() {
        let plan = FaultPlan::new(vec![
            FaultKind::PanicOnEval(0),
            FaultKind::SlowEval { eval: 1, millis: 1 },
            FaultKind::NanScore(2),
            FaultKind::OomCandidate(9),
        ]);
        assert_eq!(plan.scoring_faults_before(5), 2);
        assert_eq!(plan.scoring_faults_before(100), 3);
    }
}
