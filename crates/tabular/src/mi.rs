//! Binned mutual-information estimation.
//!
//! The feature-clustering distance of Eq. 2 and MI-based feature selection
//! both need `MI(F_i, y)` and `MI(F_i, F_j)` on continuous columns. We use
//! the standard equal-frequency ("quantile") binning estimator: discretise
//! each continuous variable into `n_bins` roughly equal-population bins, then
//! compute discrete MI from the joint histogram.

/// Default number of quantile bins for continuous variables.
pub const DEFAULT_BINS: usize = 16;

/// Discretise a continuous column into equal-frequency bins.
///
/// Ties at bin boundaries are kept in the lower bin; constant columns map to
/// a single bin. Returns bin indices in `0..n_bins` (fewer distinct values
/// than bins yields fewer populated bins).
pub fn quantile_bins(values: &[f64], n_bins: usize) -> Vec<usize> {
    assert!(n_bins >= 1);
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut bins = vec![0usize; n];
    let per = (n as f64 / n_bins as f64).max(1.0);
    let mut i = 0;
    while i < n {
        // All entries with the same value must land in the same bin so the
        // estimator is invariant to sort tie order.
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let bin = ((i as f64 / per) as usize).min(n_bins - 1);
        for &k in &order[i..=j] {
            bins[k] = bin;
        }
        i = j + 1;
    }
    bins
}

/// Discrete mutual information (in nats) between two label vectors.
pub fn mi_discrete(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = a.iter().copied().max().unwrap_or(0) + 1;
    let kb = b.iter().copied().max().unwrap_or(0) + 1;
    let mut joint = vec![0.0f64; ka * kb];
    let mut pa = vec![0.0f64; ka];
    let mut pb = vec![0.0f64; kb];
    let inv_n = 1.0 / n as f64;
    for (&x, &y) in a.iter().zip(b) {
        joint[x * kb + y] += inv_n;
        pa[x] += inv_n;
        pb[y] += inv_n;
    }
    let mut mi = 0.0;
    for x in 0..ka {
        if pa[x] == 0.0 {
            continue;
        }
        for y in 0..kb {
            let pxy = joint[x * kb + y];
            if pxy > 0.0 {
                mi += pxy * (pxy / (pa[x] * pb[y])).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Shannon entropy (nats) of a discrete label vector.
pub fn entropy_discrete(a: &[usize]) -> f64 {
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let k = a.iter().copied().max().unwrap_or(0) + 1;
    let mut p = vec![0.0f64; k];
    let inv_n = 1.0 / n as f64;
    for &x in a {
        p[x] += inv_n;
    }
    -p.iter().filter(|&&px| px > 0.0).map(|&px| px * px.ln()).sum::<f64>()
}

/// MI between two continuous columns (binned estimator).
pub fn mi_continuous(a: &[f64], b: &[f64], n_bins: usize) -> f64 {
    mi_discrete(&quantile_bins(a, n_bins), &quantile_bins(b, n_bins))
}

/// MI between a continuous feature and a task target.
///
/// Discrete targets (classification/detection) are used as-is; regression
/// targets are quantile-binned like the feature.
pub fn mi_feature_target(
    feature: &[f64],
    targets: &[f64],
    discrete_target: bool,
    n_bins: usize,
) -> f64 {
    let fb = quantile_bins(feature, n_bins);
    if discrete_target {
        let tb: Vec<usize> = targets.iter().map(|&y| y as usize).collect();
        mi_discrete(&fb, &tb)
    } else {
        mi_discrete(&fb, &quantile_bins(targets, n_bins))
    }
}

/// Relevance scores `MI(F_j, y)` for every feature of a dataset.
pub fn relevance_scores(data: &crate::Dataset, n_bins: usize) -> Vec<f64> {
    let discrete = data.task.is_discrete();
    data.features
        .iter()
        .map(|c| mi_feature_target(&c.values, &data.targets, discrete, n_bins))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngx;

    #[test]
    fn bins_are_balanced() {
        let values: Vec<f64> = (0..160).map(|i| i as f64).collect();
        let bins = quantile_bins(&values, 16);
        let mut counts = vec![0usize; 16];
        for &b in &bins {
            counts[b] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn constant_column_single_bin() {
        let bins = quantile_bins(&[3.0; 50], 8);
        assert!(bins.iter().all(|&b| b == bins[0]));
    }

    #[test]
    fn ties_share_bins() {
        // 50 zeros then 50 ones with 4 bins: each value group must be uniform.
        let mut v = vec![0.0; 50];
        v.extend(vec![1.0; 50]);
        let bins = quantile_bins(&v, 4);
        assert!(bins[..50].iter().all(|&b| b == bins[0]));
        assert!(bins[50..].iter().all(|&b| b == bins[50]));
        assert_ne!(bins[0], bins[50]);
    }

    #[test]
    fn mi_of_identical_equals_entropy() {
        let a = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let mi = mi_discrete(&a, &a);
        let h = entropy_discrete(&a);
        assert!((mi - h).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_near_zero() {
        let mut r = rngx::rng(11);
        let a = rngx::normal_vec(&mut r, 4000);
        let b = rngx::normal_vec(&mut r, 4000);
        let mi = mi_continuous(&a, &b, 8);
        // Finite-sample bias is positive but small.
        assert!(mi < 0.05, "mi = {mi}");
    }

    #[test]
    fn mi_detects_dependence() {
        let mut r = rngx::rng(12);
        let a = rngx::normal_vec(&mut r, 4000);
        let b: Vec<f64> = a.iter().map(|x| x * x).collect();
        let dep = mi_continuous(&a, &b, 8);
        let c = rngx::normal_vec(&mut r, 4000);
        let indep = mi_continuous(&a, &c, 8);
        assert!(dep > 5.0 * indep + 0.1, "dep={dep} indep={indep}");
    }

    #[test]
    fn mi_symmetry() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![1, 0, 1, 0, 1, 0, 1, 0];
        assert!((mi_discrete(&a, &b) - mi_discrete(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn mi_nonnegative_random() {
        let mut r = rngx::rng(13);
        for _ in 0..20 {
            let a = rngx::normal_vec(&mut r, 200);
            let b = rngx::normal_vec(&mut r, 200);
            assert!(mi_continuous(&a, &b, 6) >= 0.0);
        }
    }

    #[test]
    fn entropy_uniform_is_log_k() {
        let a = vec![0, 1, 2, 3, 0, 1, 2, 3];
        assert!((entropy_discrete(&a) - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn relevance_ranks_informative_feature_first() {
        use crate::{Column, Dataset, TaskType};
        let mut r = rngx::rng(21);
        let n = 1000;
        let signal = rngx::normal_vec(&mut r, n);
        let noise = rngx::normal_vec(&mut r, n);
        let y: Vec<f64> = signal.iter().map(|&s| if s > 0.0 { 1.0 } else { 0.0 }).collect();
        let d = Dataset::new(
            "rel",
            vec![Column::new("noise", noise), Column::new("signal", signal)],
            y,
            TaskType::Classification,
            2,
        )
        .unwrap();
        let scores = relevance_scores(&d, DEFAULT_BINS);
        assert!(scores[1] > scores[0] + 0.1, "{scores:?}");
    }
}
