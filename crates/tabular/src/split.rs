//! Train/test and k-fold splitting.
//!
//! The paper evaluates with five-fold cross-validation at a 4:1 train:test
//! ratio (§V "Hyperparameter and Reproducibility").

use crate::dataset::Dataset;
use crate::rngx;

/// A deterministic k-fold splitter over row indices.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Shuffle `n` rows with `seed` and slice them into `k` contiguous folds
    /// of near-equal size.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 2, "need at least 2 folds");
        assert!(n >= k, "need at least one row per fold (n={n}, k={k})");
        let mut rng = rngx::rng(seed);
        let idx = rngx::shuffled_indices(&mut rng, n);
        let mut folds = Vec::with_capacity(k);
        let base = n / k;
        let extra = n % k;
        let mut start = 0;
        for f in 0..k {
            let len = base + usize::from(f < extra);
            folds.push(idx[start..start + len].to_vec());
            start += len;
        }
        Self { folds }
    }

    /// Stratified variant: class proportions are preserved per fold. Only
    /// meaningful for discrete targets.
    pub fn stratified(labels: &[usize], k: usize, seed: u64) -> Self {
        assert!(k >= 2);
        let n = labels.len();
        assert!(n >= k);
        let mut rng = rngx::rng(seed);
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for (i, &y) in labels.iter().enumerate() {
            per_class[y].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for bucket in &mut per_class {
            // Shuffle within class, then deal round-robin across folds.
            for i in (1..bucket.len()).rev() {
                let j = rng.gen_range(0..=i);
                bucket.swap(i, j);
            }
            for (pos, &row) in bucket.iter().enumerate() {
                folds[pos % k].push(row);
            }
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// `(train_indices, test_indices)` for fold `f`.
    pub fn fold(&self, f: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(f < self.folds.len());
        let test = self.folds[f].clone();
        let train: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != f)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect();
        (train, test)
    }

    /// Iterate `(train, test)` index pairs over all folds.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        (0..self.k()).map(move |f| self.fold(f))
    }
}

/// Simple shuffled train/test split of a dataset at `train_frac`.
pub fn train_test_split(data: &Dataset, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!((0.0..1.0).contains(&train_frac) && train_frac > 0.0);
    let n = data.n_rows();
    let mut rng = rngx::rng(seed);
    let idx = rngx::shuffled_indices(&mut rng, n);
    let n_train = ((n as f64) * train_frac).round() as usize;
    let n_train = n_train.clamp(1, n - 1);
    (data.select_rows(&idx[..n_train]), data.select_rows(&idx[n_train..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Column, TaskType};

    #[test]
    fn folds_partition_rows() {
        let kf = KFold::new(103, 5, 1);
        let mut all: Vec<usize> = kf.iter().flat_map(|(_, test)| test).collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn train_and_test_disjoint() {
        let kf = KFold::new(50, 5, 2);
        for (train, test) in kf.iter() {
            assert_eq!(train.len() + test.len(), 50);
            for t in &test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn five_fold_matches_paper_ratio() {
        let kf = KFold::new(100, 5, 3);
        let (train, test) = kf.fold(0);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    fn stratified_preserves_proportions() {
        // 80 of class 0, 20 of class 1, 5 folds -> each fold has 16 + 4.
        let mut labels = vec![0usize; 80];
        labels.extend(vec![1usize; 20]);
        let kf = KFold::stratified(&labels, 5, 4);
        for (_, test) in kf.iter() {
            let pos = test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(test.len(), 20);
            assert_eq!(pos, 4);
        }
    }

    #[test]
    fn stratified_partitions_rows() {
        let labels: Vec<usize> = (0..97).map(|i| i % 3).collect();
        let kf = KFold::stratified(&labels, 4, 9);
        let mut all: Vec<usize> = kf.iter().flat_map(|(_, t)| t).collect();
        all.sort_unstable();
        assert_eq!(all, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn split_fractions() {
        let d = Dataset::new(
            "t",
            vec![Column::new("a", (0..100).map(|i| i as f64).collect())],
            (0..100).map(|i| (i % 2) as f64).collect(),
            TaskType::Classification,
            2,
        )
        .unwrap();
        let (tr, te) = train_test_split(&d, 0.8, 7);
        assert_eq!(tr.n_rows(), 80);
        assert_eq!(te.n_rows(), 20);
    }

    #[test]
    fn deterministic_folds() {
        let a = KFold::new(40, 4, 42);
        let b = KFold::new(40, 4, 42);
        for f in 0..4 {
            assert_eq!(a.fold(f), b.fold(f));
        }
    }
}
