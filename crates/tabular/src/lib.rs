//! Tabular-data substrate for the FASTFT reproduction.
//!
//! This crate provides everything the feature-transformation framework needs
//! to talk about data:
//!
//! - [`Dataset`]: a column-major table of `f64` features plus a task-typed
//!   target vector.
//! - [`metrics`]: the evaluation metrics used in the paper (F1 / precision /
//!   recall for classification, 1-RAE / 1-MAE / 1-MSE for regression, AUC for
//!   detection).
//! - [`mi`]: a binned mutual-information estimator used by the feature
//!   clustering of Eq. 2 and by MI-based feature selection.
//! - [`stats`]: descriptive column statistics that back the state
//!   representation of Fig. 4.
//! - [`datagen`]: seeded synthetic analogs of the paper's 23 public datasets
//!   with planted non-linear feature interactions (see DESIGN.md §1 for the
//!   substitution rationale).
//! - [`split`]: train/test and stratified k-fold splitting.
//! - [`csvio`]: minimal CSV import/export.

pub mod csvio;
pub mod datagen;
pub mod dataset;
pub mod error;
pub mod impute;
pub mod metrics;
pub mod mi;
pub mod noise;
pub mod persist;
pub mod profile;
pub mod rngx;
pub mod split;
pub mod stats;

pub use dataset::{Column, Dataset, TaskType};
pub use error::{FastFtError, FastFtResult};
pub use metrics::Metric;
pub use split::KFold;
