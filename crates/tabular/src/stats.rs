//! Descriptive statistics backing the Fig. 4 state representation.
//!
//! A feature cluster's state is the "stats of stats": compute seven
//! descriptive statistics per column, stack them into a `#features × 7`
//! matrix, then compute the same seven statistics over each of the 7 columns
//! of that matrix, producing a fixed 49-dimensional representation regardless
//! of how many features the cluster holds.

/// Number of descriptive statistics per vector.
pub const N_STATS: usize = 7;

/// Dimension of the fixed cluster / feature-set representation.
pub const REP_DIM: usize = N_STATS * N_STATS;

/// Seven descriptive statistics of a value vector:
/// `[mean, std, min, q1, median, q3, max]`.
pub fn describe(values: &[f64]) -> [f64; N_STATS] {
    if values.is_empty() {
        return [0.0; N_STATS];
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    [
        mean,
        var.sqrt(),
        sorted[0],
        percentile_sorted(&sorted, 0.25),
        percentile_sorted(&sorted, 0.5),
        percentile_sorted(&sorted, 0.75),
        sorted[sorted.len() - 1],
    ]
}

/// Linear-interpolated percentile of a pre-sorted slice, `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The Fig. 4 "stats of stats" representation of a set of columns.
///
/// Returns a fixed [`REP_DIM`]-length vector; an empty column set maps to all
/// zeros so the representation is total.
pub fn rep_of_columns<'a>(columns: impl IntoIterator<Item = &'a [f64]>) -> Vec<f64> {
    let per_col: Vec<[f64; N_STATS]> = columns.into_iter().map(describe).collect();
    if per_col.is_empty() {
        return vec![0.0; REP_DIM];
    }
    let mut rep = Vec::with_capacity(REP_DIM);
    for s in 0..N_STATS {
        let column_of_stats: Vec<f64> = per_col.iter().map(|row| row[s]).collect();
        rep.extend_from_slice(&describe(&column_of_stats));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_constant() {
        let d = describe(&[5.0; 10]);
        assert_eq!(d, [5.0, 0.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn describe_known_values() {
        let d = describe(&[1.0, 2.0, 3.0, 4.0]);
        assert!((d[0] - 2.5).abs() < 1e-12); // mean
        assert_eq!(d[2], 1.0); // min
        assert!((d[4] - 2.5).abs() < 1e-12); // median
        assert_eq!(d[6], 4.0); // max
        assert!((d[3] - 1.75).abs() < 1e-12); // q1
        assert!((d[5] - 3.25).abs() < 1e-12); // q3
    }

    #[test]
    fn describe_empty_is_zeros() {
        assert_eq!(describe(&[]), [0.0; N_STATS]);
    }

    #[test]
    fn percentile_endpoints() {
        let s = vec![1.0, 5.0, 9.0];
        assert_eq!(percentile_sorted(&s, 0.0), 1.0);
        assert_eq!(percentile_sorted(&s, 1.0), 9.0);
        assert_eq!(percentile_sorted(&s, 0.5), 5.0);
    }

    #[test]
    fn rep_dim_is_fixed() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        let one = rep_of_columns([a.as_slice()]);
        let two = rep_of_columns([a.as_slice(), b.as_slice()]);
        assert_eq!(one.len(), REP_DIM);
        assert_eq!(two.len(), REP_DIM);
    }

    #[test]
    fn rep_empty_set_is_zero() {
        let rep = rep_of_columns(std::iter::empty::<&[f64]>());
        assert!(rep.iter().all(|&v| v == 0.0));
        assert_eq!(rep.len(), REP_DIM);
    }

    #[test]
    fn rep_distinguishes_different_sets() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![100.0, 200.0, 300.0, 400.0];
        let ra = rep_of_columns([a.as_slice()]);
        let rb = rep_of_columns([b.as_slice()]);
        assert_ne!(ra, rb);
    }

    #[test]
    fn rep_order_invariant_in_stats_sense() {
        // Reordering rows of a column leaves its describe() unchanged, hence
        // the whole representation unchanged.
        let a = vec![3.0, 1.0, 2.0];
        let a2 = vec![1.0, 2.0, 3.0];
        assert_eq!(rep_of_columns([a.as_slice()]), rep_of_columns([a2.as_slice()]));
    }
}
