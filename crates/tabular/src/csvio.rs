//! Minimal CSV import/export for [`Dataset`].
//!
//! Format: a header row of feature names followed by a final `target`
//! column; all values numeric. This is enough to round-trip generated
//! datasets to disk and to load user-supplied numeric tables.

use crate::dataset::{Column, Dataset, TaskType};
use crate::error::{FastFtError, FastFtResult};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Write a dataset as CSV (`f0,f1,...,target`).
pub fn write_csv(data: &Dataset, path: &Path) -> FastFtResult<()> {
    let io_err = |e: &std::io::Error| FastFtError::io(path, e);
    let file = std::fs::File::create(path).map_err(|e| io_err(&e))?;
    let mut w = BufWriter::new(file);
    let header: Vec<&str> = data.features.iter().map(|c| c.name.as_str()).collect();
    writeln!(w, "{},target", header.join(",")).map_err(|e| io_err(&e))?;
    for i in 0..data.n_rows() {
        for c in &data.features {
            write!(w, "{},", c.values[i]).map_err(|e| io_err(&e))?;
        }
        writeln!(w, "{}", data.targets[i]).map_err(|e| io_err(&e))?;
    }
    w.flush().map_err(|e| io_err(&e))
}

/// Read a CSV written by [`write_csv`] (or any numeric CSV whose last column
/// is the target). Task metadata must be supplied by the caller because CSV
/// carries no task information.
pub fn read_csv(
    path: &Path,
    name: &str,
    task: TaskType,
    n_classes: usize,
) -> FastFtResult<Dataset> {
    let io_err = |e: &std::io::Error| FastFtError::io(path, e);
    let file = std::fs::File::open(path).map_err(|e| io_err(&e))?;
    let mut lines = std::io::BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| FastFtError::Parse(format!("{}: empty file", path.display())))?
        .map_err(|e| io_err(&e))?;
    let names: Vec<String> = header.split(',').map(str::to_owned).collect();
    if names.len() < 2 {
        return Err(FastFtError::Parse("need at least one feature column plus target".into()));
    }
    let n_feats = names.len() - 1;
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_feats];
    let mut targets = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| io_err(&e))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != names.len() {
            return Err(FastFtError::Parse(format!(
                "row {}: expected {} cells, got {}",
                lineno + 2,
                names.len(),
                cells.len()
            )));
        }
        for (j, cell) in cells[..n_feats].iter().enumerate() {
            let v: f64 = cell
                .trim()
                .parse()
                .map_err(|e| FastFtError::Parse(format!("row {}, col {j}: {e}", lineno + 2)))?;
            columns[j].push(v);
        }
        let y: f64 = cells[n_feats]
            .trim()
            .parse()
            .map_err(|e| FastFtError::Parse(format!("row {}, target: {e}", lineno + 2)))?;
        targets.push(y);
    }
    let features = names[..n_feats]
        .iter()
        .zip(columns)
        .map(|(n, values)| Column::new(n.clone(), values))
        .collect();
    Dataset::new(name, features, targets, task, n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen;

    #[test]
    fn csv_round_trip() {
        let spec = datagen::by_name("pima_indian").unwrap();
        let d = datagen::generate_capped(spec, 50, 0);
        let dir = std::env::temp_dir().join("fastft_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pima.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, "pima_indian", d.task, d.n_classes).unwrap();
        assert_eq!(back.n_rows(), d.n_rows());
        assert_eq!(back.n_features(), d.n_features());
        for (a, b) in d.features.iter().zip(&back.features) {
            assert_eq!(a.name, b.name);
            for (x, y) in a.values.iter().zip(&b.values) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        assert_eq!(d.targets, back.targets);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("fastft_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        std::fs::write(&path, "a,b,target\n1,2,0\n1,0\n").unwrap();
        let err = read_csv(&path, "x", TaskType::Classification, 2);
        assert!(err.is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_numeric() {
        let dir = std::env::temp_dir().join("fastft_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alpha.csv");
        std::fs::write(&path, "a,target\nhello,0\n").unwrap();
        assert!(read_csv(&path, "x", TaskType::Classification, 2).is_err());
        std::fs::remove_file(&path).ok();
    }
}
