//! Missing-value imputation.
//!
//! Real tabular files carry missing cells; loaders can mark them as `NaN`
//! and impute here before transformation (`Dataset::sanitize` would
//! otherwise zero them, which biases columns whose support excludes 0).

use crate::dataset::Dataset;
use crate::stats::percentile_sorted;

/// Statistic used to fill missing values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Column mean of the observed values.
    Mean,
    /// Column median of the observed values.
    Median,
}

/// Replace every non-finite feature value with the column statistic computed
/// over the finite values. Columns with no finite values become all-zero.
/// Returns the number of cells imputed.
pub fn impute(data: &mut Dataset, strategy: ImputeStrategy) -> usize {
    let mut filled = 0;
    for col in &mut data.features {
        let finite: Vec<f64> = col.values.iter().copied().filter(|v| v.is_finite()).collect();
        let fill = if finite.is_empty() {
            0.0
        } else {
            match strategy {
                ImputeStrategy::Mean => finite.iter().sum::<f64>() / finite.len() as f64,
                ImputeStrategy::Median => {
                    let mut sorted = finite;
                    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    percentile_sorted(&sorted, 0.5)
                }
            }
        };
        for v in &mut col.values {
            if !v.is_finite() {
                *v = fill;
                filled += 1;
            }
        }
    }
    filled
}

/// Fraction of missing (non-finite) cells per column.
pub fn missing_fractions(data: &Dataset) -> Vec<f64> {
    data.features
        .iter()
        .map(|c| {
            if c.values.is_empty() {
                0.0
            } else {
                c.values.iter().filter(|v| !v.is_finite()).count() as f64 / c.values.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Column, TaskType};

    fn with_gaps() -> Dataset {
        Dataset::new(
            "gaps",
            vec![
                Column::new("a", vec![1.0, f64::NAN, 3.0, f64::NAN, 10.0]),
                Column::new("b", vec![5.0, 5.0, 5.0, 5.0, 5.0]),
            ],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
            TaskType::Classification,
            2,
        )
        .unwrap()
    }

    #[test]
    fn median_impute_fills_with_median() {
        let mut d = with_gaps();
        let filled = impute(&mut d, ImputeStrategy::Median);
        assert_eq!(filled, 2);
        // Median of {1, 3, 10} = 3.
        assert_eq!(d.features[0].values[1], 3.0);
        assert_eq!(d.features[0].values[3], 3.0);
        assert!(d.features.iter().all(Column::is_finite));
    }

    #[test]
    fn mean_impute_fills_with_mean() {
        let mut d = with_gaps();
        impute(&mut d, ImputeStrategy::Mean);
        let mean = (1.0 + 3.0 + 10.0) / 3.0;
        assert!((d.features[0].values[1] - mean).abs() < 1e-12);
    }

    #[test]
    fn all_missing_column_becomes_zero() {
        let mut d = Dataset::new(
            "z",
            vec![Column::new("a", vec![f64::NAN, f64::INFINITY])],
            vec![0.0, 1.0],
            TaskType::Classification,
            2,
        )
        .unwrap();
        let filled = impute(&mut d, ImputeStrategy::Median);
        assert_eq!(filled, 2);
        assert_eq!(d.features[0].values, vec![0.0, 0.0]);
    }

    #[test]
    fn missing_fraction_reporting() {
        let d = with_gaps();
        let f = missing_fractions(&d);
        assert!((f[0] - 0.4).abs() < 1e-12);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn clean_data_untouched() {
        let mut d = with_gaps();
        impute(&mut d, ImputeStrategy::Median);
        let before = d.clone();
        let filled = impute(&mut d, ImputeStrategy::Median);
        assert_eq!(filled, 0);
        assert_eq!(d, before);
    }
}
